"""Synthetic crate generation: the substituted evaluation dataset.

The paper's dataset (Table 1) is ten real Rust crates totalling ~287k lines.
We cannot compile Rust, so each crate is replaced by a deterministic,
seed-driven MiniRust crate whose *code-style profile* mirrors what the
paper's qualitative analysis (Section 5.3) says drives precision differences:

* **Permission pass-through helpers** (like ``image::crop``): take ``&mut``
  but never write through it — the source of Modular vs Whole-program
  differences.
* **Partially-used inputs** (like nalgebra's
  ``solve_lower_triangular_with_diag_mut``): the return value depends on a
  strict subset of the arguments.
* **Immutable-reference-heavy APIs** (like hyper): many calls take ``&`` —
  the source of Mut-blind differences.
* **Disjoint ``&mut`` parameters** (like rg3d's
  ``link_child_with_parent_component``): distinct lifetimes, same type — the
  source of Ref-blind differences.
* **Crate-boundary calls**: most call chains hit an extern (signature-only)
  dependency, reproducing the 96% boundary-crossing rate of Section 5.4.2.

Each :class:`CrateSpec` controls the mix; :data:`PAPER_CRATE_SPECS` lists ten
profiles named after the paper's crates, scaled down so the whole evaluation
runs in minutes of pure Python rather than hours of rustc.
"""

from __future__ import annotations

import hashlib
import json
import random
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.lang.ast import Program
from repro.lang.parser import parse_program


# ---------------------------------------------------------------------------
# Crate specifications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrateSpec:
    """Generation parameters for one synthetic crate."""

    name: str
    seed: int
    # How many functions of each flavour to generate.
    n_structs: int = 4
    n_compute_helpers: int = 6
    n_getters: int = 4
    n_setters: int = 4
    n_passthrough: int = 2
    n_partial: int = 2
    n_disjoint: int = 2
    n_workers: int = 20
    # Worker-body shape.
    worker_statements: Tuple[int, int] = (8, 18)
    # Probability that a call inside a worker targets an extern (dependency
    # crate) function rather than a local helper.
    p_extern_call: float = 0.55
    # Probability that a worker reads data through shared references
    # (immutable-API-heavy crates like hyper set this high).
    p_shared_read: float = 0.5
    # Probability that a worker uses the pass-through/partial helpers
    # (drives Modular vs Whole-program differences).
    p_modularity_sensitive: float = 0.25
    # Probability that a worker manipulates two same-typed &mut references
    # (drives Ref-blind differences).
    p_aliasing_sensitive: float = 0.2
    # Paper-reported metadata used by Table 2 rendering.
    description: str = ""
    features: str = "none"
    commit: str = ""

    def scaled(self, scale: float) -> "CrateSpec":
        """A proportionally smaller/larger version of this spec."""

        def s(value: int, minimum: int = 1) -> int:
            return max(minimum, int(round(value * scale)))

        return replace(
            self,
            n_structs=s(self.n_structs, 2),
            n_compute_helpers=s(self.n_compute_helpers),
            n_getters=s(self.n_getters),
            n_setters=s(self.n_setters),
            n_passthrough=s(self.n_passthrough),
            n_partial=s(self.n_partial),
            n_disjoint=s(self.n_disjoint),
            n_workers=s(self.n_workers, 2),
        )

    def total_functions(self) -> int:
        return (
            self.n_compute_helpers
            + self.n_getters
            + self.n_setters
            + self.n_passthrough
            + self.n_partial
            + self.n_disjoint
            + self.n_workers
        )


#: Ten profiles named after the crates in Table 1.  The knobs are chosen so
#: the *relative* characteristics match the paper's qualitative discussion
#: (hyper is immutable-reference heavy, rg3d has many disjoint &mut pairs,
#: rav1e and RustPython are the largest, etc.).  Sizes are scaled down ~25x.
PAPER_CRATE_SPECS: Tuple[CrateSpec, ...] = (
    CrateSpec(
        name="rayon", seed=101, n_workers=26, n_compute_helpers=8,
        p_extern_call=0.5, p_shared_read=0.45, p_modularity_sensitive=0.2,
        p_aliasing_sensitive=0.15,
        description="Data parallelism library", features="all",
        commit="c571f8ffb4f74c8c09b4e1e6d9979b71b4414d07",
    ),
    CrateSpec(
        name="rocket", seed=102, n_workers=22, n_getters=6,
        p_extern_call=0.6, p_shared_read=0.55, p_modularity_sensitive=0.2,
        p_aliasing_sensitive=0.12,
        description="Web backend framework", features="none",
        commit="8d4d01106e2e10b08100805d40bfa19a7357e900",
    ),
    CrateSpec(
        name="rustls", seed=103, n_workers=28, n_setters=6,
        p_extern_call=0.55, p_shared_read=0.5, p_modularity_sensitive=0.22,
        p_aliasing_sensitive=0.15,
        description="TLS implementation", features="all",
        commit="cdf1dada21a537e141d0c6dde9c5685bb43fbc0e",
    ),
    CrateSpec(
        name="sccache", seed=104, n_workers=30, n_compute_helpers=8,
        p_extern_call=0.65, p_shared_read=0.5, p_modularity_sensitive=0.2,
        p_aliasing_sensitive=0.12,
        description="Distributed build cache", features="none",
        commit="3f318a8675e4c3de4f5e8ab2d086189f2ae5f5cf",
    ),
    CrateSpec(
        name="nalgebra", seed=105, n_workers=34, n_partial=5, n_compute_helpers=10,
        p_extern_call=0.45, p_shared_read=0.45, p_modularity_sensitive=0.3,
        p_aliasing_sensitive=0.15,
        description="Numerics library", features="rand, arbitrary, sparse, debug, io, libm",
        commit="984bb1a63943aa68b6f26ff4a6acf8f68b833b70",
    ),
    CrateSpec(
        name="image", seed=106, n_workers=30, n_passthrough=5,
        p_extern_call=0.5, p_shared_read=0.4, p_modularity_sensitive=0.32,
        p_aliasing_sensitive=0.15,
        description="Image processing library", features="none",
        commit="e916e9dda5f4253f6cc4557b0fe5fa3876ac18e5",
    ),
    CrateSpec(
        name="hyper", seed=107, n_workers=28, n_getters=8,
        p_extern_call=0.6, p_shared_read=0.75, p_modularity_sensitive=0.2,
        p_aliasing_sensitive=0.1,
        description="HTTP server", features="full",
        commit="ed2fdb7b6a2963cea7577df05ddc41c56fee7246",
    ),
    CrateSpec(
        name="rg3d", seed=108, n_workers=44, n_disjoint=6, n_setters=8,
        p_extern_call=0.5, p_shared_read=0.45, p_modularity_sensitive=0.22,
        p_aliasing_sensitive=0.35,
        description="3D game engine", features="all",
        commit="ca7b85f2b30e45b82caee0591ee1abf65bb3eb00",
    ),
    CrateSpec(
        name="rav1e", seed=109, n_workers=48, n_compute_helpers=12,
        worker_statements=(10, 20),
        p_extern_call=0.5, p_shared_read=0.5, p_modularity_sensitive=0.22,
        p_aliasing_sensitive=0.18,
        description="Video encoder", features="none",
        commit="1b6643324752785e7cd6ad0b19257f3c3a9b2c6a",
    ),
    CrateSpec(
        name="rustpython", seed=110, n_workers=52, n_setters=8, n_getters=8,
        p_extern_call=0.6, p_shared_read=0.55, p_modularity_sensitive=0.22,
        p_aliasing_sensitive=0.18,
        description="Python interpreter", features="compiler",
        commit="9143e51b7524a5084d5ed230b1f2f5b0610ac58b",
    ),
)


# ---------------------------------------------------------------------------
# Generated artefacts
# ---------------------------------------------------------------------------


@dataclass
class GeneratedCrate:
    """A generated crate: its spec, source text, and parsed program."""

    spec: CrateSpec
    source: str
    program: Program

    @property
    def name(self) -> str:
        return self.spec.name

    def loc(self) -> int:
        """Non-blank lines of generated source (the Table 1 LOC metric)."""
        return sum(1 for line in self.source.splitlines() if line.strip())


# ---------------------------------------------------------------------------
# Source generation
# ---------------------------------------------------------------------------


_DEP_CRATE_TEMPLATE = """
crate depslib {
    struct Vec;
    struct Buffer;
    struct Reader;
    struct Writer;
    struct Registry;

    extern fn vec_new() -> Vec;
    extern fn vec_push(v: &mut Vec, x: u32);
    extern fn vec_get(v: &Vec, i: u32) -> u32;
    extern fn vec_len(v: &Vec) -> u32;
    extern fn vec_clear(v: &mut Vec);
    extern fn buf_write(b: &mut Buffer, x: u32);
    extern fn buf_peek(b: &Buffer) -> u32;
    extern fn buf_ready(b: &Buffer) -> bool;
    extern fn read_next(r: &mut Reader) -> u32;
    extern fn reader_done(r: &Reader) -> bool;
    extern fn emit(w: &mut Writer, x: u32);
    extern fn flush(w: &mut Writer);
    extern fn registry_lookup(reg: &Registry, key: u32) -> u32;
    extern fn registry_store(reg: &mut Registry, key: u32, value: u32);
    extern fn checksum(a: u32, b: u32) -> u32;
    extern fn clamp(x: u32, low: u32, high: u32) -> u32;
    extern fn log_event(code: u32);
}
"""

# Extern helpers grouped by how they interact with references; the worker
# generator mixes these with local helpers.
_EXTERN_READERS = [
    ("vec_get", "vec", "idx"),
    ("vec_len", "vec", None),
    ("buf_peek", "buf", None),
    ("registry_lookup", "reg", "idx"),
]
_EXTERN_MUTATORS = [
    ("vec_push", "vec", "val"),
    ("buf_write", "buf", "val"),
    ("registry_store", "reg", "key_val"),
    ("emit", "writer", "val"),
]
_EXTERN_PURE = ["checksum", "clamp"]


class _CrateBuilder:
    """Accumulates the generated items of one crate."""

    def __init__(self, spec: CrateSpec):
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.lines: List[str] = []
        self.struct_names: List[str] = []
        self.struct_fields: Dict[str, List[str]] = {}
        # Local helper inventories: (function name, struct it operates on).
        self.compute_helpers: List[str] = []
        self.getters: List[Tuple[str, str]] = []
        self.setters: List[Tuple[str, str]] = []
        self.passthroughs: List[Tuple[str, str]] = []
        self.partials: List[Tuple[str, str]] = []
        self.disjoints: List[Tuple[str, str]] = []
        # Signature-only functions declared in the local crate (other modules
        # or trait objects whose bodies are unavailable): they take shared
        # references, so Mut-blind must assume they mutate their argument.
        self.auditors: List[Tuple[str, str]] = []

    # -- emission helpers -------------------------------------------------------

    def emit(self, text: str = "") -> None:
        self.lines.append(text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"

    # -- structs -------------------------------------------------------------------

    def gen_structs(self) -> None:
        prefix = self.spec.name.capitalize().replace("-", "")
        for index in range(self.spec.n_structs):
            name = f"{prefix}State{index}"
            n_fields = self.rng.randint(2, 4)
            fields = [f"f{fi}" for fi in range(n_fields)]
            self.struct_names.append(name)
            self.struct_fields[name] = fields
            rendered = ", ".join(f"{fld}: u32" for fld in fields)
            self.emit(f"    struct {name} {{ {rendered} }}")
        self.emit()

    def gen_auditors(self) -> None:
        """Signature-only validators over each struct (callee bodies unseen)."""
        for index, struct in enumerate(self.struct_names):
            name = f"{self.spec.name}_audit_{index}"
            self.auditors.append((name, struct))
            self.emit(f"    extern fn {name}(s: &{struct}, code: u32) -> u32;")
        self.emit()

    def _any_struct(self) -> str:
        return self.rng.choice(self.struct_names)

    def _field_of(self, struct: str) -> str:
        return self.rng.choice(self.struct_fields[struct])

    # -- helper functions ----------------------------------------------------------------

    def gen_compute_helpers(self) -> None:
        for index in range(self.spec.n_compute_helpers):
            name = f"{self.spec.name}_compute_{index}"
            self.compute_helpers.append(name)
            op = self.rng.choice(["+", "*", "+", "-"])
            bias = self.rng.randint(1, 9)
            self.emit(f"    fn {name}(a: u32, b: u32) -> u32 {{")
            if self.rng.random() < 0.5:
                self.emit(f"        let mut acc = a {op} b;")
                self.emit(f"        if acc > {bias * 10} {{")
                self.emit(f"            acc = acc - {bias};")
                self.emit("        } else {")
                self.emit(f"            acc = acc + {bias};")
                self.emit("        }")
                self.emit("        acc")
            else:
                self.emit(f"        let mut acc = {bias};")
                self.emit("        let mut i = 0;")
                self.emit(f"        while i < b % {bias + 2} {{")
                self.emit(f"            acc = acc {op} a;")
                self.emit("            i = i + 1;")
                self.emit("        }")
                self.emit("        acc")
            self.emit("    }")
            self.emit()

    def gen_getters(self) -> None:
        for index in range(self.spec.n_getters):
            struct = self._any_struct()
            fld = self._field_of(struct)
            name = f"{self.spec.name}_get_{index}"
            self.getters.append((name, struct))
            self.emit(f"    fn {name}(s: &{struct}) -> u32 {{")
            if self.rng.random() < 0.4:
                other = self._field_of(struct)
                self.emit(f"        s.{fld} + s.{other}")
            else:
                self.emit(f"        s.{fld}")
            self.emit("    }")
            self.emit()

    def gen_setters(self) -> None:
        for index in range(self.spec.n_setters):
            struct = self._any_struct()
            fld = self._field_of(struct)
            name = f"{self.spec.name}_set_{index}"
            self.setters.append((name, struct))
            self.emit(f"    fn {name}(s: &mut {struct}, v: u32) {{")
            if self.rng.random() < 0.4:
                self.emit(f"        if v > {self.rng.randint(2, 40)} {{")
                self.emit(f"            s.{fld} = v;")
                self.emit("        }")
            else:
                self.emit(f"        s.{fld} = v;")
            self.emit("    }")
            self.emit()

    def gen_passthroughs(self) -> None:
        # The image::crop pattern: take &mut, return a mutable view, never
        # actually write.  Modular must assume mutation; Whole-program sees none.
        for index in range(self.spec.n_passthrough):
            struct = self._any_struct()
            fld = self._field_of(struct)
            name = f"{self.spec.name}_view_{index}"
            self.passthroughs.append((name, struct))
            self.emit(f"    fn {name}(s: &mut {struct}) -> &mut u32 {{")
            self.emit(f"        &mut s.{fld}")
            self.emit("    }")
            self.emit()

    def gen_partials(self) -> None:
        # The nalgebra pattern: the returned flag depends only on one scalar
        # argument, not on the references.
        for index in range(self.spec.n_partial):
            struct = self._any_struct()
            fld = self._field_of(struct)
            name = f"{self.spec.name}_try_apply_{index}"
            self.partials.append((name, struct))
            threshold = self.rng.randint(1, 8)
            self.emit(
                f"    fn {name}(src: &{struct}, dst: &mut {struct}, diag: u32) -> bool {{"
            )
            self.emit(f"        if diag == {threshold} {{")
            self.emit("            return false;")
            self.emit("        }")
            self.emit(f"        dst.{fld} = src.{fld} + diag;")
            self.emit("        true")
            self.emit("    }")
            self.emit()

    def gen_disjoints(self) -> None:
        # The rg3d pattern: two &mut of the same type, only one is written.
        for index in range(self.spec.n_disjoint):
            struct = self._any_struct()
            fld = self._field_of(struct)
            name = f"{self.spec.name}_link_{index}"
            self.disjoints.append((name, struct))
            self.emit(
                f"    fn {name}(parent: &mut {struct}, child: &mut {struct}, h: u32) {{"
            )
            self.emit(f"        parent.{fld} = parent.{fld} + h;")
            self.emit("    }")
            self.emit()

    # -- worker functions -------------------------------------------------------------------

    def gen_workers(self) -> None:
        for index in range(self.spec.n_workers):
            self._gen_worker(index)

    def _gen_worker(self, index: int) -> None:
        rng = self.rng
        spec = self.spec
        struct = self._any_struct()
        struct2 = self._any_struct()
        name = f"{spec.name}_work_{index}"

        self.emit(
            f"    fn {name}(seed: u32, limit: u32, state: &mut {struct}, "
            f"config: &{struct2}, vec: &mut Vec, buf: &Buffer) -> u32 {{"
        )
        fields = self.struct_fields[struct]
        fields2 = self.struct_fields[struct2]
        locals_pool = ["seed", "limit"]
        counter = 0

        def fresh(prefix: str = "v") -> str:
            nonlocal counter
            counter += 1
            return f"{prefix}{counter}"

        n_statements = rng.randint(*spec.worker_statements)
        emitted_loop = False

        # A few leading locals so later statements always have operands.
        lead = fresh("acc")
        self.emit(f"        let mut {lead} = seed + {rng.randint(1, 12)};")
        locals_pool.append(lead)
        lead2 = fresh("aux")
        self.emit(f"        let mut {lead2} = limit;")
        locals_pool.append(lead2)

        # Most workers start by probing their inputs through *shared*
        # references (validate the config, peek at the buffer, measure the
        # vector).  Under the Mut-blind ablation each of these calls is
        # assumed to mutate its referent, so every later read through the
        # same reference picks up extra dependencies — this is the
        # ``read_until`` pattern from Section 5.3.2.
        if rng.random() < 0.8:
            v = fresh("probe")
            choice = rng.random()
            getter_candidates = [g for g in self.getters if g[1] == struct2]
            if choice < 0.45 and getter_candidates:
                helper, _ = rng.choice(getter_candidates)
                self.emit(f"        let {v} = {helper}(config) + {lead};")
            elif choice < 0.75:
                self.emit(f"        let {v} = buf_peek(buf) + seed;")
            else:
                self.emit(f"        let {v} = vec_len(vec) + limit;")
            locals_pool.append(v)

        for statement_index in range(n_statements):
            roll = rng.random()
            a = rng.choice(locals_pool)
            b = rng.choice(locals_pool)
            late = statement_index >= n_statements // 2
            if roll < 0.14:
                # Pure local arithmetic.
                v = fresh()
                op = rng.choice(["+", "*", "-", "%"])
                if op == "%":
                    self.emit(f"        let {v} = {a} % ({b} + 1);")
                else:
                    self.emit(f"        let {v} = {a} {op} {b};")
                locals_pool.append(v)
            elif roll < 0.34:
                # Read from references (shared or mutable state); about half
                # the time the read feeds the running accumulator so its
                # dependencies propagate into everything downstream.
                v = fresh("r")
                if rng.random() < spec.p_shared_read:
                    self.emit(f"        let {v} = config.{rng.choice(fields2)} + {a};")
                else:
                    self.emit(f"        let {v} = state.{rng.choice(fields)} + {a};")
                locals_pool.append(v)
                if rng.random() < 0.5:
                    self.emit(f"        {lead} = {lead} + {v};")
            elif roll < 0.44:
                # Call into the dependency crate (a crate-boundary call).
                if rng.random() < 0.5:
                    fn = rng.choice(_EXTERN_PURE)
                    v = fresh("c")
                    if fn == "clamp":
                        self.emit(f"        let {v} = clamp({a}, 1, {b} + 2);")
                    else:
                        self.emit(f"        let {v} = checksum({a}, {b});")
                    locals_pool.append(v)
                else:
                    choice = rng.random()
                    if choice < 0.4:
                        self.emit(f"        vec_push(vec, {a});")
                    elif choice < 0.7:
                        v = fresh("g")
                        self.emit(f"        let {v} = vec_get(vec, {a} % 8);")
                        locals_pool.append(v)
                    else:
                        v = fresh("p")
                        self.emit(f"        let {v} = buf_peek(buf) + {b};")
                        locals_pool.append(v)
            elif roll < 0.44 + spec.p_extern_call * 0.18:
                # Validate the shared config through a signature-only function
                # from another module (the read_until/Fn-callback pattern of
                # Section 5.3.2): only the ownership information in the
                # signature tells the analysis that `config` is not mutated.
                auditors = [aud for aud in self.auditors if aud[1] == struct2]
                if auditors and rng.random() < 0.7:
                    auditor, _ = rng.choice(auditors)
                    v = fresh("audit")
                    self.emit(f"        let {v} = {auditor}(config, {a});")
                    locals_pool.append(v)
                    if rng.random() < 0.5:
                        self.emit(f"        {lead2} = {lead2} + {v};")
                else:
                    self.emit(f"        log_event({a});")
            elif roll < 0.62:
                # Call a local helper; favour simple ones, sometimes the
                # modularity-sensitive ones.  The modularity-sensitive calls
                # are biased to the second half of the body so the places they
                # (spuriously, under Modular) mutate already carry sizeable
                # dependency sets, as in the paper's large functions.
                if late and rng.random() < spec.p_modularity_sensitive and (
                    self.passthroughs or self.partials
                ):
                    if self.partials and rng.random() < 0.5:
                        helper, helper_struct = rng.choice(self.partials)
                        tmp_name = fresh("ok")
                        # Build a fresh local struct of the right type to use
                        # as the shared source argument.  Constant-only fields
                        # keep the spurious (Modular-only) inputs small, as in
                        # the paper's real code where the extra flow is a tiny
                        # fraction of an already-large dependency set.
                        lit = self._struct_literal(helper_struct, [], rng)
                        src_var = fresh("srcs")
                        self.emit(f"        let {src_var} = {lit};")
                        if helper_struct == struct:
                            self.emit(
                                f"        let {tmp_name} = {helper}(&{src_var}, state, {lead});"
                            )
                        else:
                            dst_var = fresh("dsts")
                            self.emit(f"        let mut {dst_var} = {lit};")
                            self.emit(
                                f"        let {tmp_name} = {helper}(&{src_var}, &mut {dst_var}, {lead});"
                            )
                        self.emit(f"        if {tmp_name} {{")
                        self.emit(f"            {lead} = {lead} + 1;")
                        self.emit("        }")
                    elif self.passthroughs:
                        candidates = [p for p in self.passthroughs if p[1] == struct]
                        if candidates:
                            helper, _ = rng.choice(candidates)
                            v = fresh("view")
                            self.emit(f"        let {v} = {helper}(state);")
                            if rng.random() < 0.5:
                                w = fresh("seen")
                                self.emit(f"        let {w} = *{v} + {a};")
                                locals_pool.append(w)
                            else:
                                self.emit(f"        *{v} = {a};")
                        else:
                            self.emit(f"        {lead} = {lead} + {a};")
                elif self.compute_helpers:
                    helper = rng.choice(self.compute_helpers)
                    v = fresh("h")
                    self.emit(f"        let {v} = {helper}({a}, {b});")
                    locals_pool.append(v)
            elif roll < 0.72:
                # Call a local getter/setter on the struct references.
                if rng.random() < 0.5 and self.getters:
                    candidates = [g for g in self.getters if g[1] == struct2]
                    if candidates:
                        helper, _ = rng.choice(candidates)
                        v = fresh("got")
                        self.emit(f"        let {v} = {helper}(config);")
                        locals_pool.append(v)
                    else:
                        v = fresh("got")
                        self.emit(f"        let {v} = config.{rng.choice(fields2)};")
                        locals_pool.append(v)
                elif self.setters:
                    candidates = [s for s in self.setters if s[1] == struct]
                    if candidates:
                        helper, _ = rng.choice(candidates)
                        self.emit(f"        {helper}(state, {a});")
                    else:
                        self.emit(f"        state.{rng.choice(fields)} = {a};")
            elif roll < 0.72 + spec.p_aliasing_sensitive * 0.2:
                # Two same-typed locals passed as disjoint &mut (Ref-blind food).
                if self.disjoints:
                    candidates = [d for d in self.disjoints if d[1] == struct]
                    helper = rng.choice(candidates)[0] if candidates else None
                else:
                    helper = None
                first = fresh("nodea")
                second = fresh("nodeb")
                lit1 = self._struct_literal(struct, locals_pool, rng)
                lit2 = self._struct_literal(struct, locals_pool, rng)
                self.emit(f"        let mut {first} = {lit1};")
                self.emit(f"        let mut {second} = {lit2};")
                if helper is not None:
                    self.emit(f"        {helper}(&mut {first}, &mut {second}, {a});")
                else:
                    self.emit(f"        {first}.{rng.choice(fields)} = {a};")
                v = fresh("chk")
                self.emit(f"        let {v} = {second}.{rng.choice(fields)};")
                locals_pool.append(v)
            elif roll < 0.84:
                # Direct mutation of the &mut state argument.
                fld = rng.choice(fields)
                self.emit(f"        state.{fld} = state.{fld} + {a};")
            elif roll < 0.92 and not emitted_loop:
                # A bounded loop mixing reads and accumulation.
                emitted_loop = True
                i = fresh("i")
                self.emit(f"        let mut {i} = 0;")
                self.emit(f"        while {i} < limit % {rng.randint(3, 9)} {{")
                self.emit(f"            {lead} = {lead} + vec_get(vec, {i});")
                self.emit(f"            {i} = {i} + 1;")
                self.emit("        }")
            else:
                # A branch over a comparison.
                threshold = rng.randint(1, 50)
                fld = rng.choice(fields)
                self.emit(f"        if {a} > {threshold} {{")
                self.emit(f"            {lead2} = {lead2} + {b};")
                self.emit("        } else {")
                self.emit(f"            state.{fld} = {b};")
                self.emit("        }")

        # A trailing read through the shared references: combined with the
        # probe call above, this guarantees the Mut-blind ablation has
        # somewhere to show up even in short workers.
        tail = fresh("tailread")
        self.emit(f"        let {tail} = config.{rng.choice(fields2)} + {lead2};")
        locals_pool.append(tail)

        result = rng.choice([lead, lead2, tail, rng.choice(locals_pool)])
        self.emit(f"        {result} + state.{rng.choice(fields)}")
        self.emit("    }")
        self.emit()

    def _struct_literal(self, struct: str, locals_pool: Sequence[str], rng: random.Random) -> str:
        parts = []
        for fld in self.struct_fields[struct]:
            if rng.random() < 0.5 and locals_pool:
                parts.append(f"{fld}: {rng.choice(list(locals_pool))}")
            else:
                parts.append(f"{fld}: {rng.randint(0, 30)}")
        return f"{struct} {{ {', '.join(parts)} }}"

    # -- top level --------------------------------------------------------------------------------

    def build(self) -> str:
        self.emit(_DEP_CRATE_TEMPLATE.strip())
        self.emit()
        self.emit(f"crate {self.spec.name} {{")
        self.gen_structs()
        self.gen_auditors()
        self.gen_compute_helpers()
        self.gen_getters()
        self.gen_setters()
        self.gen_passthroughs()
        self.gen_partials()
        self.gen_disjoints()
        self.gen_workers()
        self.emit("}")
        return self.source()


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def generate_crate_source(spec: CrateSpec) -> str:
    """Generate MiniRust source text for ``spec`` (deterministic in the seed)."""
    return _CrateBuilder(spec).build()


def generate_crate(spec: CrateSpec) -> GeneratedCrate:
    """Generate and parse one crate (local crate = the spec's name)."""
    source = generate_crate_source(spec)
    program = parse_program(source, local_crate=spec.name)
    return GeneratedCrate(spec=spec, source=source, program=program)


def generate_corpus(
    scale: float = 1.0, specs: Optional[Sequence[CrateSpec]] = None
) -> List[GeneratedCrate]:
    """Generate the full 10-crate corpus (optionally scaled down for tests)."""
    chosen = specs if specs is not None else PAPER_CRATE_SPECS
    return [generate_crate(spec.scaled(scale)) for spec in chosen]


def generate_fuzz_corpus(
    count: int = 6, seed: int = 0, size: str = "medium"
) -> List[GeneratedCrate]:
    """A corpus of :mod:`repro.fuzz` generated crates, template-corpus shaped.

    Each crate is one seeded fuzz program (grammar-directed, feature-diverse)
    wrapped in the :class:`GeneratedCrate` interface the experiment and perf
    harnesses consume, so the fig2-style workloads can run over program
    shapes — deep borrow chains, dense branching, generated call graphs —
    that the hand-built template corpus never produces, at any ``count``.
    """
    from repro.fuzz.generator import generate_program, profile

    crates: List[GeneratedCrate] = []
    for index in range(max(0, count)):
        name = f"fuzz{index}"
        program = generate_program(seed + index, profile(size, crate_name=name))
        spec = CrateSpec(
            name=name,
            seed=seed + index,
            description=f"repro.fuzz generated workload (size={size})",
            features="fuzz",
        )
        crates.append(
            GeneratedCrate(
                spec=spec,
                source=program.source,
                program=parse_program(program.source, local_crate=name),
            )
        )
    return crates


# ---------------------------------------------------------------------------
# Corpus ingestion (the mass-evaluation harness's input layer)
# ---------------------------------------------------------------------------

CORPUS_MANIFEST_NAME = "corpus_manifest.json"
CORPUS_MANIFEST_KIND = "repro-eval-corpus"
CORPUS_MANIFEST_VERSION = 1

#: Characters allowed in on-disk artifact names derived from program names.
_SAFE_NAME_RE = re.compile(r"[^A-Za-z0-9._-]+")


def program_digest(source: str) -> str:
    """Content digest of one program: sha256 over the exact UTF-8 bytes.

    Byte-stable by construction — the same source text digests identically
    on every platform and run, which is what makes digests usable as the
    corpus dedup key and as cross-run verdict join keys.
    """
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def safe_artifact_path(root, name: str, suffix: str = "") -> Path:
    """A path for ``name`` strictly inside ``root`` (created idempotently).

    Program names may come from arbitrary ``.mrs`` file stems; a hostile or
    merely odd name (``../evil``, ``a/b``, absolute paths) must never escape
    the user-supplied output root.  Separators and any character outside
    ``[A-Za-z0-9._-]`` are flattened to ``_``, leading dots are stripped (so
    ``..`` cannot survive), and the result is verified to resolve inside
    ``root`` — if it somehow does not, we refuse rather than write.
    """
    directory = Path(root)
    directory.mkdir(parents=True, exist_ok=True)
    flat = _SAFE_NAME_RE.sub("_", str(name).replace("/", "_").replace("\\", "_"))
    flat = flat.lstrip(".") or "program"
    candidate = directory / f"{flat}{suffix}"
    resolved_root = directory.resolve()
    resolved = candidate.resolve()
    if resolved != resolved_root and resolved_root not in resolved.parents:
        raise ReproError(
            f"artifact name {name!r} escapes the output root {str(root)!r}"
        )
    return candidate


@dataclass
class CorpusProgram:
    """One deduplicated corpus member: provenance plus content digest."""

    name: str
    source: str
    digest: str
    origin: str  # "fuzz" | "file:<basename>"
    crate_name: str = "fuzzed"
    seed: int = 0
    features: Optional[Dict[str, int]] = None  # generator histogram, if known

    def loc(self) -> int:
        return sum(1 for line in self.source.splitlines() if line.strip())

    def manifest_entry(self) -> dict:
        return {
            "name": self.name,
            "digest": self.digest,
            "origin": self.origin,
            "crate": self.crate_name,
            "seed": self.seed,
            "loc": self.loc(),
            "features": dict(sorted(self.features.items())) if self.features else None,
        }


@dataclass
class Corpus:
    """A deduplicated program set with an order-independent manifest."""

    programs: List[CorpusProgram]
    duplicates: int = 0

    def __len__(self) -> int:
        return len(self.programs)

    def total_loc(self) -> int:
        return sum(program.loc() for program in self.programs)

    def manifest(self) -> dict:
        """The canonical corpus manifest (sorted by digest, so the same
        *set* of programs yields the same manifest in any ingestion order)."""
        return {
            "kind": CORPUS_MANIFEST_KIND,
            "version": CORPUS_MANIFEST_VERSION,
            "programs": [program.manifest_entry() for program in self.programs],
            "count": len(self.programs),
            "duplicates": self.duplicates,
            "total_loc": self.total_loc(),
        }

    def manifest_digest(self) -> str:
        return hashlib.sha256(
            json.dumps(self.manifest(), sort_keys=True).encode("utf-8")
        ).hexdigest()

    def write_manifest(self, directory) -> Path:
        path = safe_artifact_path(directory, CORPUS_MANIFEST_NAME)
        path.write_text(
            json.dumps(self.manifest(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path


def dedup_programs(programs: Iterable[CorpusProgram]) -> Corpus:
    """Deduplicate by content digest, order-independently.

    When the same bytes arrive under several names, the representative is
    the one with the lexicographically smallest ``(name, origin)`` — so any
    permutation of the same input set produces an identical corpus.
    """
    by_digest: Dict[str, CorpusProgram] = {}
    duplicates = 0
    for program in programs:
        existing = by_digest.get(program.digest)
        if existing is None:
            by_digest[program.digest] = program
            continue
        duplicates += 1
        if (program.name, program.origin) < (existing.name, existing.origin):
            # Keep the richer feature histogram regardless of which name wins.
            if program.features is None and existing.features is not None:
                program = replace_features(program, existing.features)
            by_digest[program.digest] = program
        elif existing.features is None and program.features is not None:
            by_digest[program.digest] = replace_features(existing, program.features)
    ordered = sorted(by_digest.values(), key=lambda p: p.digest)
    return Corpus(programs=ordered, duplicates=duplicates)


def replace_features(program: CorpusProgram, features: Dict[str, int]) -> CorpusProgram:
    return CorpusProgram(
        name=program.name,
        source=program.source,
        digest=program.digest,
        origin=program.origin,
        crate_name=program.crate_name,
        seed=program.seed,
        features=dict(features),
    )


def fuzz_sweep_programs(
    count: int, seed: int = 0, size: str = "small"
) -> List[CorpusProgram]:
    """A seed sweep of :mod:`repro.fuzz` generated programs as corpus members."""
    from repro.fuzz.generator import generate_program, profile

    config = profile(size)
    out: List[CorpusProgram] = []
    for index in range(max(0, count)):
        generated = generate_program(seed + index, config)
        out.append(
            CorpusProgram(
                name=f"fuzz_{size}_seed{generated.seed}",
                source=generated.source,
                digest=program_digest(generated.source),
                origin="fuzz",
                crate_name=config.crate_name,
                seed=generated.seed,
                features=dict(generated.features),
            )
        )
    return out


def load_corpus_dir(directory, crate_name: str = "fuzzed") -> List[CorpusProgram]:
    """Ingest every ``*.mrs`` file under ``directory`` (sorted, recursive).

    If a ``corpus_manifest.json`` sits alongside (as written by
    ``repro fuzz --export-corpus`` and by the mass runner itself), its
    per-digest feature histograms and seeds are re-attached — matching on
    content digest, so a stale manifest can never mislabel a program.
    """
    root = Path(directory)
    if not root.is_dir():
        raise ReproError(f"corpus directory {str(directory)!r} does not exist")
    by_digest: Dict[str, dict] = {}
    manifest_path = root / CORPUS_MANIFEST_NAME
    if manifest_path.is_file():
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            for entry in manifest.get("programs", []):
                if isinstance(entry, dict) and entry.get("digest"):
                    by_digest[entry["digest"]] = entry
        except (ValueError, OSError):
            by_digest = {}  # a corrupt manifest only costs the histograms
    out: List[CorpusProgram] = []
    for path in sorted(root.rglob("*.mrs")):
        source = path.read_text(encoding="utf-8")
        digest = program_digest(source)
        entry = by_digest.get(digest, {})
        out.append(
            CorpusProgram(
                name=path.stem,
                source=source,
                digest=digest,
                origin=f"file:{path.name}",
                crate_name=entry.get("crate", crate_name),
                seed=int(entry.get("seed", 0)),
                features=entry.get("features") or None,
            )
        )
    return out


def ingest_corpus(
    count: int = 0,
    seed: int = 0,
    size: str = "small",
    dirs: Sequence = (),
) -> Corpus:
    """The mass-evaluation input pipeline: fuzz sweep + committed directories,
    deduplicated by content digest into one canonical corpus."""
    programs = fuzz_sweep_programs(count, seed=seed, size=size)
    for directory in dirs:
        programs.extend(load_corpus_dir(directory))
    return dedup_programs(programs)
