"""Server load harness: a synthetic client swarm over the corpus crates.

The ROADMAP's north star is a service that stays interactive under heavy
concurrent traffic.  This module measures that directly: it boots a real
:class:`~repro.service.server.ThreadedAnalysisServer` in-process, loads the
generated evaluation corpus into one workspace per crate, and fires a swarm
of socket clients at it — each client walking the same deterministic query
plan (``analyze`` / ``slice`` / ``focus`` over every crate's functions) so
that results are comparable across clients and across swarm sizes.

Reported per swarm size (1/4/16 clients by default):

* throughput (requests per second, wall clock over the whole swarm),
* per-request latency percentiles (p50/p95/p99),
* error count (any ``ok: false`` response),
* a **consistency digest**: the SHA-256 of every response's canonicalised
  result, per plan position.  Two runs agree iff every client of every swarm
  saw byte-identical semantic answers — the load benchmark's correctness
  assertion that concurrency never changes what a query returns.

Canonicalisation strips the fields that legitimately vary with cache state
and timing (``cache``, ``stats``, ``cache_hits``, ``trace_id``, ...), leaving
exactly the semantic payload (dependency sizes, slices, spans).

Each swarm is additionally bracketed by server-side metrics snapshots (the
``metrics`` protocol method), so the report breaks latency down by pipeline
stage as the *server* measured it and reconciles the server's per-method
request counters against what the clients sent — the two views must agree
exactly, request for request.
"""

from __future__ import annotations

import hashlib
import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.stats import latency_summary_ms, percentile
from repro.obs import parse_series, snapshot_delta
from repro.service.server import ThreadedAnalysisServer

# Response fields that vary with cache temperature, timing, or server-side
# counters — everything else must be identical across clients and runs.
# ``trace_id`` is fresh per request and ``trace`` carries timings, so both
# are volatile by construction.
VOLATILE_KEYS = frozenset(
    {
        "cache",
        "stats",
        "cache_hits",
        "cache_misses",
        "seconds",
        "requests_handled",
        "trace",
        "trace_id",
    }
)


def canonicalize(value):
    """Strip volatile (cache/timing) fields from a response result, recursively."""
    if isinstance(value, dict):
        return {
            key: canonicalize(item)
            for key, item in value.items()
            if key not in VOLATILE_KEYS
        }
    if isinstance(value, list):
        return [canonicalize(item) for item in value]
    return value


def result_digest(result: dict) -> str:
    """A short stable hash of a canonicalised result (the consistency unit)."""
    payload = json.dumps(canonicalize(result), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class PlannedQuery:
    """One step of the deterministic per-client query plan."""

    workspace: str
    method: str
    params: dict

    def label(self) -> str:
        target = self.params.get("function", "*")
        return f"{self.workspace}:{self.method}:{target}"


def build_query_plan(
    server: ThreadedAnalysisServer,
    max_functions_per_crate: int = 4,
    max_variables_per_function: int = 2,
) -> List[PlannedQuery]:
    """Derive the query mix from whatever workspaces the server holds.

    For each workspace (corpus crate): one workspace-wide ``analyze``, then
    per function an ``analyze``, a backward ``slice`` and a by-name ``focus``
    on its first variables — the interactive mix an IDE session produces.
    """
    plan: List[PlannedQuery] = []
    for name in server.registry.names():
        session = server.registry.handle(name).session
        plan.append(PlannedQuery(name, "analyze", {}))
        for fn_name in session.function_names()[:max_functions_per_crate]:
            plan.append(PlannedQuery(name, "analyze", {"function": fn_name}))
            for variable in session.variables_of(fn_name)[:max_variables_per_function]:
                plan.append(
                    PlannedQuery(
                        name,
                        "slice",
                        {"function": fn_name, "variable": variable,
                         "direction": "backward"},
                    )
                )
                plan.append(
                    PlannedQuery(
                        name,
                        "focus",
                        {"function": fn_name, "variable": variable,
                         "direction": "both"},
                    )
                )
    return plan


@dataclass
class ClientRun:
    """What one swarm client observed."""

    client_id: int
    latencies: List[float] = field(default_factory=list)
    digests: List[str] = field(default_factory=list)
    errors: int = 0
    # Requests sent, by method (including mux-level ``workspace`` switches) —
    # reconciled against the server's own counters after the swarm.
    method_counts: Dict[str, int] = field(default_factory=dict)


class SwarmClient:
    """One synthetic client: a socket, the shared plan, a result log."""

    def __init__(self, address: Tuple[str, int], plan: Sequence[PlannedQuery], client_id: int):
        self.address = address
        self.plan = plan
        self.run = ClientRun(client_id=client_id)

    def __call__(self) -> ClientRun:
        sock = socket.create_connection(self.address)
        try:
            rfile = sock.makefile("r", encoding="utf-8", newline="\n")
            wfile = sock.makefile("w", encoding="utf-8", newline="\n")
            rfile.readline()  # the hello line

            def request(payload: dict) -> dict:
                method = str(payload.get("method"))
                counts = self.run.method_counts
                counts[method] = counts.get(method, 0) + 1
                wfile.write(json.dumps(payload, sort_keys=True) + "\n")
                wfile.flush()
                line = rfile.readline()
                return json.loads(line) if line else {"ok": False, "error": "eof"}

            current_workspace: Optional[str] = None
            for index, query in enumerate(self.plan):
                if query.workspace != current_workspace:
                    request({"id": f"ws-{index}", "method": "workspace",
                             "params": {"name": query.workspace}})
                    current_workspace = query.workspace
                start = time.perf_counter()
                response = request(
                    {"id": index, "method": query.method, "params": dict(query.params)}
                )
                self.run.latencies.append(time.perf_counter() - start)
                if response.get("ok"):
                    self.run.digests.append(result_digest(response["result"]))
                else:
                    self.run.errors += 1
                    self.run.digests.append("error")
        finally:
            try:
                sock.close()
            except OSError:
                pass
        return self.run


@dataclass
class LoadRunResult:
    """Aggregate measurements for one swarm size."""

    clients: int
    requests: int
    errors: int
    seconds: float
    latencies: List[float]
    digests: List[str]  # per plan position, after cross-client agreement
    consistent: bool  # every client produced the same digest sequence
    # Server-side telemetry for the swarm window (metrics-registry delta):
    # per-stage latency breakdown plus the request-count reconciliation.
    server: Optional[dict] = None

    @property
    def throughput_rps(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.requests / self.seconds

    def latency_ms(self, fraction: float) -> float:
        return percentile(self.latencies, fraction) * 1e3

    @property
    def counts_agree(self) -> bool:
        """Did the server count exactly the requests the clients sent?"""
        return bool(self.server and self.server.get("counts_agree"))

    def to_json_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "seconds": round(self.seconds, 4),
            "throughput_rps": round(self.throughput_rps, 1),
            "latency_ms": latency_summary_ms(self.latencies),
            "consistent": self.consistent,
            "plan_digest": hashlib.sha256(
                "".join(self.digests).encode("utf-8")
            ).hexdigest()[:16],
            "server": self.server,
        }


def fetch_server_metrics(address: Tuple[str, int]) -> dict:
    """One-shot ``metrics`` request against a live server; returns the result."""
    sock = socket.create_connection(address)
    try:
        rfile = sock.makefile("r", encoding="utf-8", newline="\n")
        wfile = sock.makefile("w", encoding="utf-8", newline="\n")
        rfile.readline()  # the hello line
        wfile.write(json.dumps({"id": "metrics", "method": "metrics"}) + "\n")
        wfile.flush()
        response = json.loads(rfile.readline())
    finally:
        try:
            sock.close()
        except OSError:
            pass
    if not response.get("ok"):
        raise RuntimeError(f"metrics request failed: {response.get('error')}")
    return response["result"]


def server_breakdown(delta: dict, client_counts: Dict[str, int]) -> dict:
    """Digest one swarm window's metrics delta into the load-report shape.

    ``requests_by_method`` merges the NDJSON dialect counters with the
    mux-level ``workspace`` counter so it is directly comparable to what the
    swarm clients sent.  The harness's own ``metrics`` probes are excluded:
    the *before* probe's counter increment lands after its snapshot is taken,
    so exactly one such request falls inside every window by construction.
    """
    requests_by_method: Dict[str, int] = {}
    server_errors = 0
    for series, value in delta.get("counters", {}).items():
        name, labels = parse_series(series)
        if "worker" in labels:
            # Worker-side deltas folded in by repro.obs.remote: the work
            # happened in pool processes, not on the request path, so they
            # must not perturb the client/server count reconciliation.
            continue
        if name != "requests_total" or labels.get("protocol") not in ("ndjson", "mux"):
            continue
        method = labels.get("method", "?")
        if method == "metrics":
            continue
        requests_by_method[method] = requests_by_method.get(method, 0) + int(value)
        if labels.get("status") == "error":
            server_errors += int(value)

    stage_ms: Dict[str, dict] = {}
    request_ms: Dict[str, dict] = {}
    worker_stage_ms: Dict[str, dict] = {}
    for series, hist in delta.get("histograms", {}).items():
        name, labels = parse_series(series)
        row = {
            "count": hist["count"],
            "total_ms": round(hist["sum"] * 1e3, 3),
            "mean_ms": round(hist["mean"] * 1e3, 4),
        }
        if "worker" in labels:
            # Aggregate worker-side stage time across pids into its own
            # table: it explains where pool time went without double
            # counting the coordinator's stages.
            if name == "stage_seconds":
                stage = labels.get("stage", "?")
                merged = worker_stage_ms.get(stage)
                if merged is None:
                    worker_stage_ms[stage] = dict(row)
                else:
                    merged["count"] += row["count"]
                    merged["total_ms"] = round(merged["total_ms"] + row["total_ms"], 3)
                    merged["mean_ms"] = round(
                        merged["total_ms"] / max(1, merged["count"]), 4
                    )
            continue
        if name == "stage_seconds":
            stage_ms[labels.get("stage", "?")] = row
        elif name == "request_seconds" and labels.get("method") != "metrics":
            request_ms[labels.get("method", "?")] = row

    return {
        "requests_by_method": requests_by_method,
        "client_requests_by_method": dict(client_counts),
        "counts_agree": requests_by_method == client_counts,
        "errors": server_errors,
        "stage_ms": stage_ms,
        "request_ms": request_ms,
        "worker_stage_ms": worker_stage_ms,
    }


def run_swarm(
    server: ThreadedAnalysisServer, plan: Sequence[PlannedQuery], clients: int
) -> LoadRunResult:
    """Run ``clients`` concurrent plan walkers against a live server.

    Brackets the swarm with server-side metrics snapshots so the result
    carries the per-stage latency breakdown for exactly this window, and the
    server's request counters can be reconciled against what the clients sent.
    """
    workers = [SwarmClient(server.address, plan, i) for i in range(clients)]
    threads = [
        threading.Thread(target=worker, name=f"swarm-{worker.run.client_id}")
        for worker in workers
    ]
    before = fetch_server_metrics(server.address)
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start
    after = fetch_server_metrics(server.address)

    runs = [worker.run for worker in workers]
    latencies = [lat for run in runs for lat in run.latencies]
    digests = runs[0].digests if runs else []
    consistent = all(run.digests == digests for run in runs)
    client_counts: Dict[str, int] = {}
    for run in runs:
        for method, count in run.method_counts.items():
            client_counts[method] = client_counts.get(method, 0) + count
    return LoadRunResult(
        clients=clients,
        requests=sum(len(run.latencies) for run in runs),
        errors=sum(run.errors for run in runs),
        seconds=seconds,
        latencies=latencies,
        digests=list(digests),
        consistent=consistent,
        server=server_breakdown(snapshot_delta(before, after), client_counts),
    )


@dataclass
class LoadReport:
    """The full load study: one result per swarm size plus cross-run checks."""

    plan_size: int
    workspaces: List[str]
    runs: List[LoadRunResult]
    cross_run_consistent: bool  # every swarm size agreed on every answer

    @property
    def telemetry_consistent(self) -> bool:
        """Server request counters matched client-side counts in every swarm."""
        return all(run.counts_agree for run in self.runs)

    def to_json_dict(self) -> dict:
        return {
            "plan_size": self.plan_size,
            "workspaces": self.workspaces,
            "runs": [run.to_json_dict() for run in self.runs],
            "cross_run_consistent": self.cross_run_consistent,
            "telemetry_consistent": self.telemetry_consistent,
        }


def start_corpus_server(
    corpus,
    workers: int = 16,
    persist_dir: Optional[str] = None,
    warm: bool = False,
) -> ThreadedAnalysisServer:
    """Boot a server pre-loaded with one workspace per corpus crate."""
    server = ThreadedAnalysisServer(
        port=0, workers=workers, persist_dir=persist_dir
    )
    for crate in corpus:
        handle = server.registry.handle(crate.name)
        with handle.lock.write_locked():
            handle.session.local_crate = crate.name
            handle.session.open_unit(crate.name, crate.source)
            if warm:
                handle.session.warm()
            server.registry.note_mutation(handle)
    return server.start()


def run_load_study(
    corpus=None,
    client_counts: Sequence[int] = (1, 4, 16),
    scale: float = 0.15,
    workers: int = 16,
    persist_dir: Optional[str] = None,
    max_functions_per_crate: int = 4,
    max_variables_per_function: int = 2,
) -> LoadReport:
    """The headline study: the same plan at every swarm size, one server.

    The single-client run doubles as the correctness baseline: every larger
    swarm must produce digest-identical answers at every plan position.
    """
    from repro.eval.corpus import generate_corpus

    if corpus is None:
        corpus = generate_corpus(scale=scale)
    server = start_corpus_server(corpus, workers=workers, persist_dir=persist_dir)
    try:
        plan = build_query_plan(
            server,
            max_functions_per_crate=max_functions_per_crate,
            max_variables_per_function=max_variables_per_function,
        )
        runs = [run_swarm(server, plan, clients) for clients in client_counts]
        baseline = runs[0].digests
        cross = all(run.digests == baseline for run in runs) and all(
            run.consistent for run in runs
        )
        return LoadReport(
            plan_size=len(plan),
            workspaces=server.registry.names(),
            runs=runs,
            cross_run_consistent=cross,
        )
    finally:
        server.shutdown()


def render_load_report(report: LoadReport) -> str:
    """Text rendering of the load study (the benchmark's report artifact)."""
    lines = [
        "Concurrent server load study "
        f"({report.plan_size} queries/client over {len(report.workspaces)} workspaces):",
        "",
        "  clients  requests  errors  throughput     p50 ms     p95 ms     p99 ms  consistent",
    ]
    for run in report.runs:
        row = run.to_json_dict()
        lat = row["latency_ms"]
        lines.append(
            f"  {run.clients:7d}  {run.requests:8d}  {run.errors:6d}  "
            f"{row['throughput_rps']:7.1f}/s  {lat['p50']:9.3f}  {lat['p95']:9.3f}  "
            f"{lat['p99']:9.3f}  {str(run.consistent).lower()}"
        )
    lines.append("")
    lines.append(
        "  cross-swarm results identical to single-client baseline: "
        + str(report.cross_run_consistent).lower()
    )
    lines.append(
        "  server request counters match client-side counts: "
        + str(report.telemetry_consistent).lower()
    )
    last = report.runs[-1] if report.runs else None
    if last is not None and last.server:
        lines.append("")
        lines.append(
            f"  server-side stage breakdown ({last.clients}-client swarm):"
        )
        lines.append("    stage           count   total ms    mean ms")
        for stage, row in sorted(last.server["stage_ms"].items()):
            lines.append(
                f"    {stage:<14} {row['count']:6d}  {row['total_ms']:9.1f}  "
                f"{row['mean_ms']:9.3f}"
            )
        worker_stages = last.server.get("worker_stage_ms") or {}
        if worker_stages:
            lines.append("    worker-side stage breakdown (pool processes):")
            for stage, row in sorted(worker_stages.items()):
                lines.append(
                    f"    {stage:<14} {row['count']:6d}  {row['total_ms']:9.1f}  "
                    f"{row['mean_ms']:9.3f}"
                )
        counts = last.server["requests_by_method"]
        rendered = ", ".join(f"{m}={counts[m]}" for m in sorted(counts))
        lines.append(f"    requests (server-counted): {rendered}")
    return "\n".join(lines)
