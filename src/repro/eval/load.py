"""Server load harness: a synthetic client swarm over the corpus crates.

The ROADMAP's north star is a service that stays interactive under heavy
concurrent traffic.  This module measures that directly: it boots a real
:class:`~repro.service.server.ThreadedAnalysisServer` in-process, loads the
generated evaluation corpus into one workspace per crate, and fires a swarm
of socket clients at it — each client walking the same deterministic query
plan (``analyze`` / ``slice`` / ``focus`` over every crate's functions) so
that results are comparable across clients and across swarm sizes.

Reported per swarm size (1/4/16 clients by default):

* throughput (requests per second, wall clock over the whole swarm),
* per-request latency percentiles (p50/p95/p99),
* error count (any ``ok: false`` response),
* a **consistency digest**: the SHA-256 of every response's canonicalised
  result, per plan position.  Two runs agree iff every client of every swarm
  saw byte-identical semantic answers — the load benchmark's correctness
  assertion that concurrency never changes what a query returns.

Canonicalisation strips the fields that legitimately vary with cache state
and timing (``cache``, ``stats``, ``cache_hits``, ...), leaving exactly the
semantic payload (dependency sizes, slices, spans).
"""

from __future__ import annotations

import hashlib
import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.perf import percentile
from repro.service.server import ThreadedAnalysisServer

# Response fields that vary with cache temperature, timing, or server-side
# counters — everything else must be identical across clients and runs.
VOLATILE_KEYS = frozenset(
    {"cache", "stats", "cache_hits", "cache_misses", "seconds", "requests_handled"}
)


def canonicalize(value):
    """Strip volatile (cache/timing) fields from a response result, recursively."""
    if isinstance(value, dict):
        return {
            key: canonicalize(item)
            for key, item in value.items()
            if key not in VOLATILE_KEYS
        }
    if isinstance(value, list):
        return [canonicalize(item) for item in value]
    return value


def result_digest(result: dict) -> str:
    """A short stable hash of a canonicalised result (the consistency unit)."""
    payload = json.dumps(canonicalize(result), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class PlannedQuery:
    """One step of the deterministic per-client query plan."""

    workspace: str
    method: str
    params: dict

    def label(self) -> str:
        target = self.params.get("function", "*")
        return f"{self.workspace}:{self.method}:{target}"


def build_query_plan(
    server: ThreadedAnalysisServer,
    max_functions_per_crate: int = 4,
    max_variables_per_function: int = 2,
) -> List[PlannedQuery]:
    """Derive the query mix from whatever workspaces the server holds.

    For each workspace (corpus crate): one workspace-wide ``analyze``, then
    per function an ``analyze``, a backward ``slice`` and a by-name ``focus``
    on its first variables — the interactive mix an IDE session produces.
    """
    plan: List[PlannedQuery] = []
    for name in server.registry.names():
        session = server.registry.handle(name).session
        plan.append(PlannedQuery(name, "analyze", {}))
        for fn_name in session.function_names()[:max_functions_per_crate]:
            plan.append(PlannedQuery(name, "analyze", {"function": fn_name}))
            for variable in session.variables_of(fn_name)[:max_variables_per_function]:
                plan.append(
                    PlannedQuery(
                        name,
                        "slice",
                        {"function": fn_name, "variable": variable,
                         "direction": "backward"},
                    )
                )
                plan.append(
                    PlannedQuery(
                        name,
                        "focus",
                        {"function": fn_name, "variable": variable,
                         "direction": "both"},
                    )
                )
    return plan


@dataclass
class ClientRun:
    """What one swarm client observed."""

    client_id: int
    latencies: List[float] = field(default_factory=list)
    digests: List[str] = field(default_factory=list)
    errors: int = 0


class SwarmClient:
    """One synthetic client: a socket, the shared plan, a result log."""

    def __init__(self, address: Tuple[str, int], plan: Sequence[PlannedQuery], client_id: int):
        self.address = address
        self.plan = plan
        self.run = ClientRun(client_id=client_id)

    def __call__(self) -> ClientRun:
        sock = socket.create_connection(self.address)
        try:
            rfile = sock.makefile("r", encoding="utf-8", newline="\n")
            wfile = sock.makefile("w", encoding="utf-8", newline="\n")
            rfile.readline()  # the hello line

            def request(payload: dict) -> dict:
                wfile.write(json.dumps(payload, sort_keys=True) + "\n")
                wfile.flush()
                line = rfile.readline()
                return json.loads(line) if line else {"ok": False, "error": "eof"}

            current_workspace: Optional[str] = None
            for index, query in enumerate(self.plan):
                if query.workspace != current_workspace:
                    request({"id": f"ws-{index}", "method": "workspace",
                             "params": {"name": query.workspace}})
                    current_workspace = query.workspace
                start = time.perf_counter()
                response = request(
                    {"id": index, "method": query.method, "params": dict(query.params)}
                )
                self.run.latencies.append(time.perf_counter() - start)
                if response.get("ok"):
                    self.run.digests.append(result_digest(response["result"]))
                else:
                    self.run.errors += 1
                    self.run.digests.append("error")
        finally:
            try:
                sock.close()
            except OSError:
                pass
        return self.run


@dataclass
class LoadRunResult:
    """Aggregate measurements for one swarm size."""

    clients: int
    requests: int
    errors: int
    seconds: float
    latencies: List[float]
    digests: List[str]  # per plan position, after cross-client agreement
    consistent: bool  # every client produced the same digest sequence

    @property
    def throughput_rps(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.requests / self.seconds

    def latency_ms(self, fraction: float) -> float:
        return percentile(self.latencies, fraction) * 1e3

    def to_json_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "seconds": round(self.seconds, 4),
            "throughput_rps": round(self.throughput_rps, 1),
            "latency_ms": {
                "p50": round(self.latency_ms(0.50), 4),
                "p95": round(self.latency_ms(0.95), 4),
                "p99": round(self.latency_ms(0.99), 4),
            },
            "consistent": self.consistent,
            "plan_digest": hashlib.sha256(
                "".join(self.digests).encode("utf-8")
            ).hexdigest()[:16],
        }


def run_swarm(
    server: ThreadedAnalysisServer, plan: Sequence[PlannedQuery], clients: int
) -> LoadRunResult:
    """Run ``clients`` concurrent plan walkers against a live server."""
    workers = [SwarmClient(server.address, plan, i) for i in range(clients)]
    threads = [
        threading.Thread(target=worker, name=f"swarm-{worker.run.client_id}")
        for worker in workers
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start

    runs = [worker.run for worker in workers]
    latencies = [lat for run in runs for lat in run.latencies]
    digests = runs[0].digests if runs else []
    consistent = all(run.digests == digests for run in runs)
    return LoadRunResult(
        clients=clients,
        requests=sum(len(run.latencies) for run in runs),
        errors=sum(run.errors for run in runs),
        seconds=seconds,
        latencies=latencies,
        digests=list(digests),
        consistent=consistent,
    )


@dataclass
class LoadReport:
    """The full load study: one result per swarm size plus cross-run checks."""

    plan_size: int
    workspaces: List[str]
    runs: List[LoadRunResult]
    cross_run_consistent: bool  # every swarm size agreed on every answer

    def to_json_dict(self) -> dict:
        return {
            "plan_size": self.plan_size,
            "workspaces": self.workspaces,
            "runs": [run.to_json_dict() for run in self.runs],
            "cross_run_consistent": self.cross_run_consistent,
        }


def start_corpus_server(
    corpus,
    workers: int = 16,
    persist_dir: Optional[str] = None,
    warm: bool = False,
) -> ThreadedAnalysisServer:
    """Boot a server pre-loaded with one workspace per corpus crate."""
    server = ThreadedAnalysisServer(
        port=0, workers=workers, persist_dir=persist_dir
    )
    for crate in corpus:
        handle = server.registry.handle(crate.name)
        with handle.lock.write_locked():
            handle.session.local_crate = crate.name
            handle.session.open_unit(crate.name, crate.source)
            if warm:
                handle.session.warm()
            server.registry.note_mutation(handle)
    return server.start()


def run_load_study(
    corpus=None,
    client_counts: Sequence[int] = (1, 4, 16),
    scale: float = 0.15,
    workers: int = 16,
    persist_dir: Optional[str] = None,
    max_functions_per_crate: int = 4,
    max_variables_per_function: int = 2,
) -> LoadReport:
    """The headline study: the same plan at every swarm size, one server.

    The single-client run doubles as the correctness baseline: every larger
    swarm must produce digest-identical answers at every plan position.
    """
    from repro.eval.corpus import generate_corpus

    if corpus is None:
        corpus = generate_corpus(scale=scale)
    server = start_corpus_server(corpus, workers=workers, persist_dir=persist_dir)
    try:
        plan = build_query_plan(
            server,
            max_functions_per_crate=max_functions_per_crate,
            max_variables_per_function=max_variables_per_function,
        )
        runs = [run_swarm(server, plan, clients) for clients in client_counts]
        baseline = runs[0].digests
        cross = all(run.digests == baseline for run in runs) and all(
            run.consistent for run in runs
        )
        return LoadReport(
            plan_size=len(plan),
            workspaces=server.registry.names(),
            runs=runs,
            cross_run_consistent=cross,
        )
    finally:
        server.shutdown()


def render_load_report(report: LoadReport) -> str:
    """Text rendering of the load study (the benchmark's report artifact)."""
    lines = [
        "Concurrent server load study "
        f"({report.plan_size} queries/client over {len(report.workspaces)} workspaces):",
        "",
        "  clients  requests  errors  throughput     p50 ms     p95 ms     p99 ms  consistent",
    ]
    for run in report.runs:
        row = run.to_json_dict()
        lat = row["latency_ms"]
        lines.append(
            f"  {run.clients:7d}  {run.requests:8d}  {run.errors:6d}  "
            f"{row['throughput_rps']:7.1f}/s  {lat['p50']:9.3f}  {lat['p95']:9.3f}  "
            f"{lat['p99']:9.3f}  {str(run.consistent).lower()}"
        )
    lines.append("")
    lines.append(
        "  cross-swarm results identical to single-client baseline: "
        + str(report.cross_run_consistent).lower()
    )
    return "\n".join(lines)
