"""Performance study: modular vs whole-program analysis cost (Section 5.1).

The paper notes that the baseline (modular) analysis has a median
per-function execution time of ~370µs, while the naively recursive
Whole-program analysis can be extremely slow on functions with large call
graphs — 178× slower on ``GameEngine::render``.  This module reproduces the
*shape* of that comparison:

* :func:`median_function_time` reports the per-function analysis time over a
  corpus for any condition,
* :func:`deep_call_graph_program` generates a synthetic function whose call
  graph is a deep chain/tree of local functions (the ``GameEngine::render``
  analogue), and :func:`compare_deep_call_graph` measures the modular vs
  whole-program slowdown on it.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import AnalysisConfig, MODULAR, WHOLE_PROGRAM
from repro.core.engine import FlowEngine
from repro.eval.corpus import GeneratedCrate
from repro.eval.experiments import ConditionRun, ExperimentData

# Percentile math lives in repro.eval.stats; the re-export keeps the long-time
# ``from repro.eval.perf import percentile`` import path working.
from repro.eval.stats import latency_summary_ms, percentile  # noqa: F401
from repro.lang.parser import parse_program


@dataclass
class PerfComparison:
    """Timing comparison between the modular and whole-program analyses."""

    function: str
    call_graph_size: int
    modular_seconds: float
    whole_program_seconds: float

    @property
    def slowdown(self) -> float:
        if self.modular_seconds <= 0:
            return float("inf")
        return self.whole_program_seconds / self.modular_seconds

    def row(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "call_graph_size": self.call_graph_size,
            "modular_ms": round(self.modular_seconds * 1e3, 2),
            "whole_program_ms": round(self.whole_program_seconds * 1e3, 2),
            "slowdown": round(self.slowdown, 1),
        }


def median_function_time(run: ConditionRun) -> float:
    """Median per-function analysis time of one condition run, in seconds."""
    return run.median_function_time()


def deep_call_graph_program(depth: int = 12, fanout: int = 2) -> str:
    """Source of a crate whose root function has a call graph of
    ``fanout**0 + fanout**1 + ... + fanout**depth`` functions.

    Each internal function calls ``fanout`` children and does a little local
    work, so the whole-program analysis must recursively analyse the whole
    tree while the modular analysis stops at the root's signature uses.
    """
    lines: List[str] = ["crate engine {", "    struct Scene { nodes: u32, lights: u32 }"]

    def emit_level(level: int, index: int) -> str:
        name = f"render_pass_{level}_{index}"
        if level >= depth:
            lines.append(f"    fn {name}(scene: &mut Scene, t: u32) -> u32 {{")
            lines.append("        scene.nodes = scene.nodes + t;")
            lines.append("        scene.nodes + scene.lights")
            lines.append("    }")
            return name
        children = [emit_level(level + 1, index * fanout + child) for child in range(fanout)]
        lines.append(f"    fn {name}(scene: &mut Scene, t: u32) -> u32 {{")
        lines.append("        let mut total = t;")
        for child in children:
            lines.append(f"        total = total + {child}(scene, total);")
        lines.append("        if total > 1000 {")
        lines.append("            scene.lights = scene.lights + 1;")
        lines.append("        }")
        lines.append("        total")
        lines.append("    }")
        return name

    # Emit leaves-first so every call target is defined (order is irrelevant
    # to the checker, but keeps the generated source readable).
    root = emit_level(0, 0)
    lines.append(f"    fn game_engine_render(scene: &mut Scene, frame: u32) -> u32 {{")
    lines.append(f"        {root}(scene, frame)")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def compare_deep_call_graph(depth: int = 6, fanout: int = 2) -> PerfComparison:
    """Measure modular vs whole-program analysis time on the deep call graph."""
    source = deep_call_graph_program(depth=depth, fanout=fanout)
    program = parse_program(source, local_crate="engine")

    modular_engine = FlowEngine.from_program(program, config=MODULAR)
    start = time.perf_counter()
    modular_engine.analyze_function("game_engine_render")
    modular_seconds = time.perf_counter() - start

    whole_engine = FlowEngine.from_program(program, config=WHOLE_PROGRAM)
    start = time.perf_counter()
    whole_engine.analyze_function("game_engine_render")
    whole_seconds = time.perf_counter() - start

    call_graph_size = len(whole_engine.call_graph.reachable_from("game_engine_render"))
    return PerfComparison(
        function="game_engine_render",
        call_graph_size=call_graph_size,
        modular_seconds=modular_seconds,
        whole_program_seconds=whole_seconds,
    )


@dataclass
class EngineComparison:
    """Bitset (indexed) / vector (numpy) vs legacy object engine over a corpus.

    The measured unit mirrors the Figure 2 data collection exactly: for
    every local-crate function of every corpus crate, run the information
    flow analysis to fixpoint and extract the per-variable dependency-set
    sizes at exit.  Parsing/checking/lowering are shared (they are
    engine-independent), so the ratio isolates the dataflow substrate.
    Each engine is timed ``rounds`` times alternately and the best round is
    reported — the shape least sensitive to scheduler noise in CI.

    ``vector_seconds`` is ``None`` when the vector tier was not measured
    (two-way comparison, or numpy unavailable).
    """

    condition: str
    functions: int
    rounds: int
    object_seconds: float
    bitset_seconds: float
    vector_seconds: Optional[float] = None

    @property
    def speedup(self) -> float:
        if self.bitset_seconds <= 0:
            return float("inf")
        return self.object_seconds / self.bitset_seconds

    @property
    def vector_speedup(self) -> Optional[float]:
        """Object-engine seconds over vector-engine seconds (same convention
        as :attr:`speedup`)."""
        if self.vector_seconds is None:
            return None
        if self.vector_seconds <= 0:
            return float("inf")
        return self.object_seconds / self.vector_seconds

    @property
    def vector_vs_bitset(self) -> Optional[float]:
        if self.vector_seconds is None:
            return None
        if self.vector_seconds <= 0:
            return float("inf")
        return self.bitset_seconds / self.vector_seconds

    def to_json_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "condition": self.condition,
            "functions": self.functions,
            "rounds": self.rounds,
            "object_ms": round(self.object_seconds * 1e3, 2),
            "bitset_ms": round(self.bitset_seconds * 1e3, 2),
            "speedup": round(self.speedup, 2),
        }
        if self.vector_seconds is not None:
            row["vector_ms"] = round(self.vector_seconds * 1e3, 2)
            row["vector_speedup"] = round(self.vector_speedup, 2)
            row["vector_vs_bitset"] = round(self.vector_vs_bitset, 2)
        return row


def compare_engines(
    corpus: Optional[Sequence[GeneratedCrate]] = None,
    config: AnalysisConfig = MODULAR,
    scale: float = 0.15,
    rounds: int = 3,
    engines: Sequence[str] = ("object", "bitset"),
) -> EngineComparison:
    """Measure the fig2-style end-to-end analysis wall time of each engine.

    Also asserts, while it measures, that all engines report identical
    dependency sizes for every function — the differential property the
    benchmark rides on.  ``engines`` selects the tiers (pass
    ``("object", "bitset", "vector")`` for the three-way comparison; the
    vector tier requires numpy and raises a clear error without it).
    """
    from repro.eval.corpus import generate_corpus
    from repro.eval.experiments import _prepare_crate

    if corpus is None:
        corpus = generate_corpus(scale=scale)
    prepared = [_prepare_crate(crate) for crate in corpus]
    names = list(dict.fromkeys(engines))
    if not {"object", "bitset"} <= set(names):
        raise ValueError("compare_engines needs at least the object and bitset tiers")
    configs = {name: dataclasses.replace(config, engine=name) for name in names}

    functions = 0
    sizes: Dict[str, Dict[Tuple[int, str], Dict[str, int]]] = {name: {} for name in names}
    best: Dict[str, float] = {name: float("inf") for name in names}
    for round_index in range(max(1, rounds)):
        for engine_name, engine_config in configs.items():
            start = time.perf_counter()
            count = 0
            for crate_index, (checked, lowered) in enumerate(prepared):
                engine = FlowEngine(checked, lowered=lowered, config=engine_config)
                for fn_name in engine.local_function_names():
                    result = engine.analyze_function(fn_name)
                    sizes[engine_name][(crate_index, fn_name)] = result.dependency_sizes()
                    count += 1
            best[engine_name] = min(best[engine_name], time.perf_counter() - start)
            functions = count
    for engine_name in names[1:]:
        if sizes[names[0]] != sizes[engine_name]:
            raise AssertionError(
                f"{engine_name} and {names[0]} engines disagree on dependency sizes"
            )
    return EngineComparison(
        condition=config.name,
        functions=functions,
        rounds=max(1, rounds),
        object_seconds=best["object"],
        bitset_seconds=best["bitset"],
        vector_seconds=best.get("vector"),
    )


def compare_engines_on_fuzz_corpus(
    count: int = 6,
    seed: int = 0,
    size: str = "medium",
    config: AnalysisConfig = MODULAR,
    rounds: int = 2,
    engines: Sequence[str] = ("object", "bitset"),
) -> EngineComparison:
    """The fig2 engine comparison over a :mod:`repro.fuzz` generated corpus.

    Identical measurement protocol to :func:`compare_engines`, but the
    workload comes from the seeded fuzz generator — program shapes (and
    scales) the hand-built template corpus cannot reach.  The differential
    size check inside :func:`compare_engines` still runs, so this doubles as
    an engine-equivalence pass over the fuzz corpus.
    """
    from repro.eval.corpus import generate_fuzz_corpus

    corpus = generate_fuzz_corpus(count=count, seed=seed, size=size)
    return compare_engines(corpus=corpus, config=config, rounds=rounds, engines=engines)


@dataclass
class VectorWaveBench:
    """The fig2 end-to-end comparison on the vectorization-favourable workload.

    The workload is the standard template corpus *plus* a handful of large
    fuzz-generated crates — bodies big enough (hundreds of locations, so
    multi-word rows) that the uint64 word kernels beat per-row Python
    arithmetic, which is where the vector tier is meant to be used.  The
    object and bitset legs run the plain serial fig2 loop; the vector leg
    runs through the SCC-wave fixpoint driver
    (:func:`repro.service.scheduler.run_waves`) at ``workers`` processes,
    degrading to an in-process wave walk on single-core machines per the
    scheduler's contract (``mode`` records which path ran).
    """

    functions: int
    crates: int
    rounds: int
    workers: int
    mode: str
    object_seconds: float
    bitset_seconds: float
    vector_seconds: float

    @property
    def vector_speedup(self) -> float:
        if self.vector_seconds <= 0:
            return float("inf")
        return self.object_seconds / self.vector_seconds

    @property
    def vector_vs_bitset(self) -> float:
        if self.vector_seconds <= 0:
            return float("inf")
        return self.bitset_seconds / self.vector_seconds

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "functions": self.functions,
            "crates": self.crates,
            "rounds": self.rounds,
            "workers": self.workers,
            "mode": self.mode,
            "object_ms": round(self.object_seconds * 1e3, 2),
            "bitset_ms": round(self.bitset_seconds * 1e3, 2),
            "vector_ms": round(self.vector_seconds * 1e3, 2),
            "vector_speedup": round(self.vector_speedup, 2),
            "vector_vs_bitset": round(self.vector_vs_bitset, 2),
        }


def compare_fig2_vector(
    scale: float = 0.15,
    fuzz_count: int = 5,
    fuzz_seed: int = 0,
    fuzz_size: str = "large",
    config: AnalysisConfig = MODULAR,
    rounds: int = 2,
    workers: int = 4,
) -> VectorWaveBench:
    """Object/bitset serial vs vector-through-SCC-waves on large bodies.

    Same best-of-``rounds`` protocol and differential size assertion as
    :func:`compare_engines`; the vector leg additionally exercises the
    corpus-level wave schedule (:func:`repro.service.scheduler.corpus_waves`),
    so the measured time is the production batch path, not a bare loop.
    """
    import os

    from repro.dataflow.vecbitset import require_numpy
    from repro.eval.corpus import generate_corpus, generate_fuzz_corpus
    from repro.eval.experiments import _prepare_crate
    from repro.service.scheduler import (
        _corpus_sizes_batch,
        _init_corpus_worker,
        corpus_waves,
        run_waves,
    )

    require_numpy("the fig2 vector benchmark")
    corpus = list(generate_corpus(scale=scale)) + list(
        generate_fuzz_corpus(count=fuzz_count, seed=fuzz_seed, size=fuzz_size)
    )
    prepared = [_prepare_crate(crate) for crate in corpus]
    configs = {
        name: dataclasses.replace(config, engine=name)
        for name in ("object", "bitset", "vector")
    }

    # The wave schedule is engine-independent: compute it once, outside the
    # timed region, from throwaway engines.
    schedule_engines = [
        FlowEngine(checked, lowered=lowered, config=configs["bitset"])
        for checked, lowered in prepared
    ]
    waves = corpus_waves(schedule_engines)
    functions = sum(len(wave) for wave in waves)

    use_pool = workers > 1 and (os.cpu_count() or 1) > 1
    sources = [(crate.source, crate.name) for crate in corpus]
    vector_kwargs = dataclasses.asdict(configs["vector"])

    sizes: Dict[str, Dict[Tuple[int, str], Dict[str, int]]] = {
        name: {} for name in configs
    }
    best: Dict[str, float] = {name: float("inf") for name in configs}
    mode = "serial"
    for _ in range(max(1, rounds)):
        for engine_name in ("object", "bitset"):
            start = time.perf_counter()
            for crate_index, (checked, lowered) in enumerate(prepared):
                engine = FlowEngine(checked, lowered=lowered, config=configs[engine_name])
                for fn_name in engine.local_function_names():
                    result = engine.analyze_function(fn_name)
                    sizes[engine_name][(crate_index, fn_name)] = result.dependency_sizes()
            best[engine_name] = min(best[engine_name], time.perf_counter() - start)

        if use_pool:
            start = time.perf_counter()
            mode, wave_results, _error = run_waves(
                _corpus_sizes_batch,
                waves,
                max_workers=workers,
                initializer=_init_corpus_worker,
                initargs=(sources, vector_kwargs),
            )
            best["vector"] = min(best["vector"], time.perf_counter() - start)
            for wave_out in wave_results:
                for crate_index, fn_name, fn_sizes in wave_out:
                    sizes["vector"][(crate_index, fn_name)] = fn_sizes
        else:
            engines = [
                FlowEngine(checked, lowered=lowered, config=configs["vector"])
                for checked, lowered in prepared
            ]
            start = time.perf_counter()
            for wave in waves:
                for crate_index, fn_name in wave:
                    result = engines[crate_index].analyze_function(fn_name)
                    sizes["vector"][(crate_index, fn_name)] = result.dependency_sizes()
            best["vector"] = min(best["vector"], time.perf_counter() - start)
            mode = "serial"

    for engine_name in ("bitset", "vector"):
        if sizes["object"] != sizes[engine_name]:
            raise AssertionError(
                f"{engine_name} and object engines disagree on dependency sizes"
            )
    return VectorWaveBench(
        functions=functions,
        crates=len(corpus),
        rounds=max(1, rounds),
        workers=workers if use_pool else 1,
        mode=mode,
        object_seconds=best["object"],
        bitset_seconds=best["bitset"],
        vector_seconds=best["vector"],
    )


def render_engine_report(comparisons: Sequence[EngineComparison]) -> str:
    """Text report of the bitset/vector-vs-object engine benchmark."""
    lines = ["Indexed bitset engine vs legacy object engine (fig2 workload):", ""]
    for cmp in comparisons:
        line = (
            f"  {cmp.condition:<16} {cmp.functions:4d} functions: "
            f"object {cmp.object_seconds * 1e3:8.1f} ms -> bitset "
            f"{cmp.bitset_seconds * 1e3:8.1f} ms (speedup {cmp.speedup:.2f}x)"
        )
        if cmp.vector_seconds is not None:
            line += (
                f" -> vector {cmp.vector_seconds * 1e3:8.1f} ms "
                f"(speedup {cmp.vector_speedup:.2f}x)"
            )
        lines.append(line)
    return "\n".join(lines)


@dataclass
class ThetaJoinBench:
    """Microbenchmark of the hottest primitive: the Θ join.

    Synthesises two dependency contexts with ``places`` tracked rows of
    ``locations_per_place`` dependencies each (disjoint halves, so every
    join does real merging) and times ``joins`` repeated joins in each
    representation.  The object engine allocates a frozenset union per
    overlapping key; the indexed engine does one bitwise-or per row; the
    vector engine does a single whole-matrix copy plus one
    ``np.bitwise_or`` over the contiguous uint64 word array.

    ``vector_seconds`` is ``None`` when numpy is unavailable.
    """

    places: int
    locations_per_place: int
    joins: int
    object_seconds: float
    bitset_seconds: float
    vector_seconds: Optional[float] = None

    @property
    def speedup(self) -> float:
        if self.bitset_seconds <= 0:
            return float("inf")
        return self.object_seconds / self.bitset_seconds

    @property
    def vector_speedup(self) -> Optional[float]:
        """Bitset join seconds over vector join seconds: the tier-3 win over
        the tier-2 substrate on the hottest primitive."""
        if self.vector_seconds is None:
            return None
        if self.vector_seconds <= 0:
            return float("inf")
        return self.bitset_seconds / self.vector_seconds

    def to_json_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "places": self.places,
            "locations_per_place": self.locations_per_place,
            "joins": self.joins,
            "object_us_per_join": round(self.object_seconds / self.joins * 1e6, 3),
            "bitset_us_per_join": round(self.bitset_seconds / self.joins * 1e6, 3),
            "speedup": round(self.speedup, 2),
        }
        if self.vector_seconds is not None:
            row["vector_us_per_join"] = round(self.vector_seconds / self.joins * 1e6, 3)
            row["vector_speedup"] = round(self.vector_speedup, 2)
        return row


def theta_join_microbenchmark(
    places: int = 48, locations_per_place: int = 24, joins: int = 2000
) -> ThetaJoinBench:
    """Time repeated Θ joins in the object, indexed, and vector representations."""
    from repro.core.theta import DependencyContext, IndexedDependencyContext
    from repro.dataflow.vecbitset import HAVE_NUMPY
    from repro.mir.indices import BodyIndex, LocationDomain, PlaceDomain
    from repro.mir.ir import Location, Place

    all_locations = [
        Location(block, statement)
        for block in range(locations_per_place)
        for statement in range(2)
    ]

    def object_pair() -> Tuple[DependencyContext, DependencyContext]:
        left, right = DependencyContext(), DependencyContext()
        for index in range(places):
            place = Place.from_local(index)
            half = locations_per_place // 2
            left.set(place, all_locations[: half])
            right.set(place, all_locations[half : locations_per_place])
        return left, right

    domain = BodyIndex(None, PlaceDomain(), LocationDomain(sorted(all_locations)))

    def indexed_pair() -> Tuple[IndexedDependencyContext, IndexedDependencyContext]:
        left = IndexedDependencyContext(domain)
        right = IndexedDependencyContext(domain)
        for index in range(places):
            place = Place.from_local(index)
            half = locations_per_place // 2
            left.set(place, all_locations[: half])
            right.set(place, all_locations[half : locations_per_place])
        return left, right

    obj_left, obj_right = object_pair()
    start = time.perf_counter()
    for _ in range(joins):
        obj_left.join(obj_right)
    object_seconds = time.perf_counter() - start

    idx_left, idx_right = indexed_pair()
    start = time.perf_counter()
    for _ in range(joins):
        idx_left.join(idx_right)
    bitset_seconds = time.perf_counter() - start

    vector_seconds = None
    vec_left = vec_right = None
    if HAVE_NUMPY:
        from repro.core.theta import VecDependencyContext

        def vector_pair() -> Tuple[VecDependencyContext, VecDependencyContext]:
            left = VecDependencyContext(domain)
            right = VecDependencyContext(domain)
            for index in range(places):
                place = Place.from_local(index)
                half = locations_per_place // 2
                left.set(place, all_locations[:half])
                right.set(place, all_locations[half:locations_per_place])
            return left, right

        vec_left, vec_right = vector_pair()
        start = time.perf_counter()
        for _ in range(joins):
            vec_left.join(vec_right)
        vector_seconds = time.perf_counter() - start

    # Identical join results in every representation (sanity, not timing).
    joined_object = obj_left.join(obj_right)
    joined_indexed = idx_left.join(idx_right)
    assert dict(joined_object.items()) == dict(joined_indexed.items())
    if vec_left is not None:
        joined_vector = vec_left.join(vec_right)
        assert dict(joined_object.items()) == dict(joined_vector.items())

    return ThetaJoinBench(
        places=places,
        locations_per_place=locations_per_place,
        joins=joins,
        object_seconds=object_seconds,
        bitset_seconds=bitset_seconds,
        vector_seconds=vector_seconds,
    )


@dataclass
class WarmColdComparison:
    """Cold vs warm corpus analysis through the incremental service.

    The cold pass analyses every function of every corpus crate through a
    fresh :class:`~repro.service.session.AnalysisSession` backed by a shared
    :class:`~repro.service.cache.SummaryStore`; the warm pass repeats it with
    *new* sessions over the same store, so parsing/checking/lowering is paid
    again but every per-function analysis is served from cache.  The speedup
    is therefore a lower bound on what a resident session achieves.
    """

    condition: str
    functions: int
    cold_seconds: float
    warm_seconds: float
    cold_hits: int
    warm_hits: int

    @property
    def speedup(self) -> float:
        if self.warm_seconds <= 0:
            return float("inf")
        return self.cold_seconds / self.warm_seconds

    def row(self) -> Dict[str, object]:
        return {
            "condition": self.condition,
            "functions": self.functions,
            "cold_ms": round(self.cold_seconds * 1e3, 2),
            "warm_ms": round(self.warm_seconds * 1e3, 2),
            "warm_hits": self.warm_hits,
            "speedup": round(self.speedup, 1),
        }


def compare_warm_cold(
    corpus: Optional[Sequence[GeneratedCrate]] = None,
    config: AnalysisConfig = MODULAR,
    scale: float = 0.15,
    store=None,
) -> WarmColdComparison:
    """Measure repeated corpus analysis with and without a warm summary cache."""
    from repro.eval.corpus import generate_corpus
    from repro.service.cache import SummaryStore
    from repro.service.session import AnalysisSession

    if corpus is None:
        corpus = generate_corpus(scale=scale)
    if store is None:
        store = SummaryStore(max_entries=1 << 16)

    def one_pass() -> Tuple[float, int, int]:
        hits = 0
        functions = 0
        start = time.perf_counter()
        for crate in corpus:
            session = AnalysisSession(store=store, local_crate=crate.name)
            session.open_unit(crate.name, crate.source)
            response = session.analyze(config=config)
            hits += response["cache_hits"]
            functions += len(response["functions"])
        return time.perf_counter() - start, hits, functions

    cold_seconds, cold_hits, functions = one_pass()
    warm_seconds, warm_hits, _ = one_pass()
    return WarmColdComparison(
        condition=config.name,
        functions=functions,
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        cold_hits=cold_hits,
        warm_hits=warm_hits,
    )


def render_warm_cold_report(comparisons: Sequence[WarmColdComparison]) -> str:
    """Text report of the service's warm-vs-cold benchmark."""
    lines = ["Incremental service: cold vs warm corpus analysis:", ""]
    for cmp in comparisons:
        lines.append(
            f"  {cmp.condition:<16} {cmp.functions:4d} functions: "
            f"cold {cmp.cold_seconds * 1e3:8.1f} ms -> warm {cmp.warm_seconds * 1e3:8.1f} ms "
            f"({cmp.warm_hits} cache hits, speedup {cmp.speedup:.1f}x)"
        )
    return "\n".join(lines)


@dataclass
class FocusLatency:
    """Cold vs warm focus-query latency over a corpus of cursor positions.

    Each query resolves a variable's focus entry through the session's
    cached focus table: the cold pass pays one dataflow tabulation per
    function, the warm pass (fresh sessions over the same store) serves
    every table from cache — the interactive-IDE workload the focus engine
    exists for.
    """

    condition: str
    queries: int
    cold_seconds: List[float]
    warm_seconds: List[float]

    @property
    def cold_total(self) -> float:
        return sum(self.cold_seconds)

    @property
    def warm_total(self) -> float:
        return sum(self.warm_seconds)

    @property
    def speedup(self) -> float:
        if self.warm_total <= 0:
            return float("inf")
        return self.cold_total / self.warm_total

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "condition": self.condition,
            "queries": self.queries,
            "cold_ms": dict(
                latency_summary_ms(self.cold_seconds, fractions=(0.50, 0.95)),
                total=round(self.cold_total * 1e3, 2),
            ),
            "warm_ms": dict(
                latency_summary_ms(self.warm_seconds, fractions=(0.50, 0.95)),
                total=round(self.warm_total * 1e3, 2),
            ),
            "speedup": round(self.speedup, 1),
        }


def measure_focus_latency(
    corpus: Optional[Sequence[GeneratedCrate]] = None,
    config: AnalysisConfig = MODULAR,
    scale: float = 0.15,
    store=None,
    max_queries_per_function: int = 3,
) -> FocusLatency:
    """Measure per-query focus latency cold (empty store) and warm (cached).

    Cursor targets are every named local of every corpus function (capped
    per function), queried through :meth:`AnalysisSession.focus`.  The warm
    pass uses fresh sessions over the same store, so the speedup measures
    the focus-table cache specifically, not in-process memoisation.
    """
    from repro.eval.corpus import generate_corpus
    from repro.service.cache import SummaryStore
    from repro.service.session import AnalysisSession

    if corpus is None:
        corpus = generate_corpus(scale=scale)
    if store is None:
        store = SummaryStore(max_entries=1 << 16)

    def one_pass() -> List[float]:
        latencies: List[float] = []
        for crate in corpus:
            session = AnalysisSession(store=store, local_crate=crate.name)
            session.open_unit(crate.name, crate.source)
            for fn_name in session.function_names():
                targets = session.variables_of(fn_name)[:max_queries_per_function]
                for variable in targets:
                    start = time.perf_counter()
                    session.focus(function=fn_name, variable=variable, config=config)
                    latencies.append(time.perf_counter() - start)
        return latencies

    cold = one_pass()
    warm = one_pass()
    return FocusLatency(
        condition=config.name,
        queries=len(cold),
        cold_seconds=cold,
        warm_seconds=warm,
    )


def render_focus_latency_report(latencies: Sequence[FocusLatency]) -> str:
    """Text report of the focus engine's cold-vs-warm latency benchmark."""
    lines = ["Focus engine: cold vs warm cursor-query latency:", ""]
    for lat in latencies:
        row = lat.to_json_dict()
        cold, warm = row["cold_ms"], row["warm_ms"]
        lines.append(
            f"  {lat.condition:<16} {lat.queries:4d} queries: "
            f"cold p50 {cold['p50']:7.3f} ms / p95 {cold['p95']:7.3f} ms -> "
            f"warm p50 {warm['p50']:7.3f} ms / p95 {warm['p95']:7.3f} ms "
            f"(speedup {row['speedup']}x)"
        )
    return "\n".join(lines)


def render_perf_report(
    runs: Sequence[ConditionRun], deep: Optional[PerfComparison] = None
) -> str:
    """Text report of the Section 5.1 performance observations."""
    lines = ["Section 5.1 performance notes (reproduced):", ""]
    for run in runs:
        median_us = run.median_function_time() * 1e6
        lines.append(
            f"  {run.name:<16} median per-function analysis time: {median_us:9.1f} µs "
            f"({run.num_variables()} variables, {run.total_seconds:.2f}s total)"
        )
    if deep is not None:
        lines.append("")
        lines.append(
            f"  deep call graph ({deep.call_graph_size} functions reachable): "
            f"modular {deep.modular_seconds * 1e3:.1f} ms vs whole-program "
            f"{deep.whole_program_seconds * 1e3:.1f} ms "
            f"-> slowdown {deep.slowdown:.0f}x   [paper: 178x on GameEngine::render]"
        )
    return "\n".join(lines)
