"""Command-line interface for the reproduction.

Mirrors how Flowistry is driven in practice (a cargo subcommand plus an IDE
extension) with a small set of subcommands over MiniRust source files:

* ``repro mir FILE [--function NAME]`` — print the lowered MIR,
* ``repro analyze FILE [--function NAME] [--whole-program|--mut-blind|--ref-blind]``
  — print Figure-1 style Θ annotations and per-variable dependency sizes,
* ``repro slice FILE --function NAME --variable VAR [--forward]`` — print a
  slice rendered against the source,
* ``repro stats FILE [--function NAME]`` — per-function interning-table
  sizes, exit-Θ bitset density, and fixpoint iteration counts (debugging
  aid for the indexed dataflow substrate),
* ``repro ifc FILE --secret-type T ... --sink F ...`` — run the IFC checker,
* ``repro fuzz [--seed N --count K --size S]`` — run a differential fuzzing
  campaign (seeded program generation + the five-oracle battery, shrinking
  any failure to a minimal repro artifact); ``repro fuzz repro ART.json``
  replays an artifact; ``repro stats --campaign REPORT.json`` renders the
  feature-coverage histogram,
* ``repro corpus [--scale S] [--crate NAME]`` — generate the evaluation corpus,
* ``repro experiment [--scale S]`` — run the Section 5 experiment and print
  the headline comparison,
* ``repro focus FILE --line L --col C [--direction fwd|bwd|both]`` — resolve a
  cursor to its enclosing place and print span-precise forward/backward
  information-flow highlights (the paper's IDE "focus mode"),
* ``repro serve [FILE]`` — run the incremental analysis service: line-delimited
  JSON requests on stdin (or ``--input``), one JSON response per line;
  ``--jsonrpc`` speaks the LSP-lite JSON-RPC dialect instead; ``--port`` runs
  the **concurrent socket server** (thread-pool connection handling, NDJSON
  and JSON-RPC multiplexed per connection, shared RW-locked sessions) with
  ``--workers`` and ``--persist-dir`` for durable workspaces,
* ``repro workspace save|load|list`` — persist an analysis workspace to disk
  (manifest + warm cache tier) and restore or inspect it later,
* ``repro query FILE`` — one-shot service query (``analyze``/``slice``/
  ``focus``/``ifc``/``stats``); ``--repeat`` demonstrates warm-cache hits,
* ``repro version`` (or ``repro --version``) — the package version, as also
  reported in the server hello message.

The CLI is intentionally thin: every subcommand is a few lines over the
public library API, and each handler returns an exit code so it can be tested
without spawning processes.  ``docs/PROTOCOL.md`` documents the wire
protocols; ``docs/ARCHITECTURE.md`` maps the layers.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.apps.ifc import IfcChecker, IfcPolicy
from repro.apps.slicer import ProgramSlicer
from repro.core.config import AnalysisConfig
from repro.core.engine import FlowEngine
from repro.errors import ReproError
from repro.mir.pretty import pretty_body
from repro.version import __version__


def _config_from_args(args: argparse.Namespace) -> AnalysisConfig:
    return AnalysisConfig(
        whole_program=getattr(args, "whole_program", False),
        mut_blind=getattr(args, "mut_blind", False),
        ref_blind=getattr(args, "ref_blind", False),
        engine=getattr(args, "engine", "bitset"),
    )


def _read_source(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


def _add_condition_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--whole-program",
        action="store_true",
        help="recurse into callee bodies within the crate (evaluation condition)",
    )
    parser.add_argument(
        "--mut-blind",
        action="store_true",
        help="ablation: ignore mutability qualifiers on references",
    )
    parser.add_argument(
        "--ref-blind",
        action="store_true",
        help="ablation: ignore lifetimes (type-based aliasing)",
    )
    parser.add_argument(
        "--engine",
        default="bitset",
        choices=["bitset", "vector", "object"],
        help="dataflow substrate: the indexed bitset engine (default), the "
             "vectorized numpy uint64 engine (tier 3, requires numpy), or "
             "the legacy object engine kept as the differential reference",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Flowistry-style modular information flow analysis for MiniRust",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro-flowistry {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    mir = sub.add_parser("mir", help="print the lowered MIR of a file")
    mir.add_argument("file")
    mir.add_argument("--function", help="only this function (default: all)")

    analyze = sub.add_parser("analyze", help="print Θ annotations and dependency sizes")
    analyze.add_argument("file")
    analyze.add_argument("--function", help="only this function (default: all)")
    analyze.add_argument("--workers", type=int, default=0,
                         help="analyse callees-first in SCC waves across a "
                              "process pool; 0 or 1 = serial (default: 0)")
    analyze.add_argument("--trace", action="store_true",
                         help="trace the run end-to-end (with --workers: worker "
                              "span subtrees graft under their wave) and print "
                              "the span tree plus fan-out utilization")
    analyze.add_argument("--chrome", metavar="PATH",
                         help="with --trace semantics: also write Chrome "
                              "trace-event JSON (per-worker lanes) to PATH")
    _add_condition_flags(analyze)

    slice_cmd = sub.add_parser("slice", help="slice a function on a variable")
    slice_cmd.add_argument("file")
    slice_cmd.add_argument("--function", required=True)
    slice_cmd.add_argument("--variable", required=True)
    slice_cmd.add_argument("--forward", action="store_true", help="forward slice")
    _add_condition_flags(slice_cmd)

    focus = sub.add_parser(
        "focus", help="cursor-driven span-precise slicing (IDE focus mode)"
    )
    focus.add_argument("file")
    focus.add_argument("--line", type=int, help="1-based cursor line")
    focus.add_argument("--col", type=int, help="1-based cursor column")
    focus.add_argument("--function", help="query by name instead of cursor")
    focus.add_argument("--variable", help="query by name instead of cursor")
    focus.add_argument(
        "--direction",
        default="both",
        choices=["fwd", "bwd", "both", "forward", "backward"],
        help="which flow direction to highlight",
    )
    focus.add_argument("--json", action="store_true", help="print the raw response")
    focus.add_argument("--color", action="store_true", help="ANSI highlights")
    _add_condition_flags(focus)

    stats = sub.add_parser(
        "stats",
        help="per-function interning-table sizes, bitset density, and "
             "fixpoint iteration counts; --campaign renders the "
             "feature-coverage histogram of a fuzz campaign report",
    )
    stats.add_argument("file", nargs="?",
                       help="MiniRust file (omit when using --campaign)")
    stats.add_argument("--function", help="only this function (default: all)")
    stats.add_argument("--campaign", metavar="REPORT_JSON",
                       help="render per-campaign aggregates (feature-coverage "
                            "histogram, oracle pass/fail counts) from a "
                            "`repro fuzz` JSON report instead of file stats")
    stats.add_argument("--json", action="store_true", help="machine-readable output")
    _add_condition_flags(stats)

    ifc = sub.add_parser("ifc", help="check information flow policies")
    ifc.add_argument("file")
    ifc.add_argument("--secret-type", action="append", default=[], dest="secret_types")
    ifc.add_argument("--secret-variable", action="append", default=[], dest="secret_variables",
                     help="NAME or FUNCTION:NAME")
    ifc.add_argument("--sink", action="append", default=[], dest="sinks",
                     help="function treated as an insecure operation")

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing & metamorphic testing: `repro fuzz` runs a "
             "budgeted campaign over seeded generated programs; "
             "`repro fuzz repro ARTIFACT.json` replays a shrunk repro artifact",
    )
    fuzz.add_argument(
        "repro_args", nargs="*", metavar="repro ARTIFACT",
        help="replay mode: the literal word `repro` followed by an artifact path",
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="first seed; program i uses seed+i (default: 0)")
    fuzz.add_argument("--count", type=int, default=50,
                      help="number of programs to generate (default: 50)")
    fuzz.add_argument("--time-budget", type=float, default=None, metavar="SECONDS",
                      help="stop generating after this many seconds")
    fuzz.add_argument("--size", default="small", choices=["small", "medium", "large"],
                      help="generator size profile (default: small)")
    fuzz.add_argument("--oracles",
                      help="comma-separated oracle subset (default: all five)")
    fuzz.add_argument("--inject", metavar="NAME",
                      help="add a synthetic always-wrong oracle (exercises the "
                           "shrink/repro pipeline; see docs/FUZZING.md)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="keep failing programs unreduced")
    fuzz.add_argument("--report-dir", default="benchmarks/reports",
                      help="where the campaign JSON and repro artifacts are "
                           "written (created idempotently; default: "
                           "benchmarks/reports)")
    fuzz.add_argument("--export-corpus", metavar="DIR",
                      help="also write every generated program as a .mrs file")
    fuzz.add_argument("--json", action="store_true",
                      help="print the campaign report as JSON")

    corpus = sub.add_parser("corpus", help="generate the synthetic evaluation corpus")
    corpus.add_argument("--scale", type=float, default=0.25)
    corpus.add_argument("--crate", help="print the source of just this crate")

    experiment = sub.add_parser("experiment", help="run the Section 5 experiment")
    experiment.add_argument("--scale", type=float, default=0.2)

    serve_cmd = sub.add_parser(
        "serve", help="incremental analysis service over line-delimited JSON stdio"
    )
    serve_cmd.add_argument(
        "file", nargs="?", help="MiniRust file opened as the initial workspace unit"
    )
    serve_cmd.add_argument("--local-crate", default="main")
    serve_cmd.add_argument("--cache-dir", help="directory for the JSON on-disk cache tier")
    serve_cmd.add_argument("--max-entries", type=int, default=4096,
                           help="in-memory LRU capacity of the summary store")
    serve_cmd.add_argument("--input",
                           help="read requests from this file instead of stdin")
    serve_cmd.add_argument("--jsonrpc", action="store_true",
                           help="speak LSP-lite JSON-RPC 2.0 instead of the NDJSON protocol")
    serve_cmd.add_argument("--port", type=int,
                           help="run the concurrent socket server on this TCP port "
                                "(0 = ephemeral; the bound port is printed in the banner)")
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address for --port mode (default: 127.0.0.1)")
    serve_cmd.add_argument("--workers", type=int, default=8,
                           help="connection thread-pool size in --port mode")
    serve_cmd.add_argument("--persist-dir",
                           help="workspace persistence root: sessions are restored from "
                                "it on start and saved to it on shutdown, so a restarted "
                                "server answers its first query warm")
    serve_cmd.add_argument("--log-level", default="quiet",
                           choices=["quiet", "info", "debug"],
                           help="socket mode: access-log verbosity (one structured "
                                "line per request to stderr; default quiet)")
    serve_cmd.add_argument("--slowlog-threshold-ms", type=float, default=None,
                           help="socket mode: retain trace exemplars for requests "
                                "slower than this (default: adaptive rolling p99)")
    serve_cmd.add_argument("--slowlog-capacity", type=int, default=32,
                           help="socket mode: slow-request ring buffer size")
    serve_cmd.add_argument("--no-slowlog", action="store_true",
                           help="socket mode: disable the slow-request log "
                                "(and its per-request tracing)")
    serve_cmd.add_argument("--trace-dir",
                           help="socket mode: write one rotated Chrome-trace JSON "
                                "file per request into this directory")
    serve_cmd.add_argument("--workspace", default="default",
                           help="name of the (persistent) workspace to serve")

    workspace = sub.add_parser(
        "workspace", help="save, restore, and inspect persistent analysis workspaces"
    )
    wsub = workspace.add_subparsers(dest="ws_command", required=True)
    ws_save = wsub.add_parser("save", help="analyse FILEs and persist the workspace")
    ws_save.add_argument("files", nargs="+", help="MiniRust files opened as units")
    ws_save.add_argument("--persist-dir", required=True)
    ws_save.add_argument("--workspace", default="default")
    ws_save.add_argument("--local-crate", default="main")
    ws_save.add_argument("--warm", action="store_true",
                         help="batch-analyse every function before saving, so the "
                              "cache tier is fully populated")
    ws_load = wsub.add_parser("load", help="restore a saved workspace and print its state")
    ws_load.add_argument("--persist-dir", required=True)
    ws_load.add_argument("--workspace", default="default")
    ws_load.add_argument("--analyze", action="store_true",
                         help="run a workspace-wide analyze after loading (shows the "
                              "warm cache serving the first query)")
    ws_list = wsub.add_parser("list", help="list the workspaces saved under a directory")
    ws_list.add_argument("--persist-dir", required=True)

    trace_cmd = sub.add_parser(
        "trace",
        help="run a traced analysis of a file and print the span tree",
    )
    trace_cmd.add_argument("file")
    trace_cmd.add_argument("--function", help="only this function (default: all)")
    trace_cmd.add_argument("--local-crate", default="main")
    trace_cmd.add_argument("--json", action="store_true",
                           help="print the span tree as JSON instead of text")
    trace_cmd.add_argument("--min-self-ms", type=float, default=0.0,
                           help="hide spans with self time below this many "
                                "milliseconds (structure above kept spans "
                                "survives; default: 0 = show all)")
    trace_cmd.add_argument("--depth", type=int, default=None,
                           help="hide spans nested deeper than DEPTH "
                                "(root is depth 0; default: unlimited)")
    trace_cmd.add_argument("--chrome", metavar="PATH",
                           help="also write flamegraph-ready Chrome trace-event "
                                "JSON (chrome://tracing / Perfetto) to PATH")
    _add_condition_flags(trace_cmd)

    profile_cmd = sub.add_parser(
        "profile",
        help="run a traced+profiled analysis of a file and report where time went",
    )
    profile_cmd.add_argument("file")
    profile_cmd.add_argument("--function", help="only this function (default: all)")
    profile_cmd.add_argument("--local-crate", default="main")
    profile_cmd.add_argument("--hz", type=float, default=97.0,
                             help="sampling rate (default 97)")
    profile_cmd.add_argument("--flame", metavar="PATH",
                             help="write a standalone flamegraph (SVG, or HTML "
                                  "if PATH ends in .html)")
    profile_cmd.add_argument("--collapsed", metavar="PATH",
                             help="write collapsed-stack text (flamegraph.pl / "
                                  "speedscope format)")
    profile_cmd.add_argument("--chrome", metavar="PATH",
                             help="write Chrome trace-event JSON with the "
                                  "profile merged in (stackFrames + samples)")
    profile_cmd.add_argument("--code-frames", action="store_true",
                             help="append in-repo Python frames below the span stack")
    profile_cmd.add_argument("--json", action="store_true",
                             help="print the profile as JSON instead of text")
    _add_condition_flags(profile_cmd)

    bench = sub.add_parser(
        "bench",
        help="run the registered benchmark suite into the history ledger "
             "(subcommands: report, backfill)",
    )
    bench.add_argument("--ledger-dir", default="benchmarks/reports/history",
                       help="history ledger directory (default benchmarks/reports/history)")
    bench.add_argument("--scale", type=float, default=0.15,
                       help="workload scale factor for the suite (default 0.15)")
    bench.add_argument("--only", action="append", default=None, metavar="NAME",
                       help="run only this registered benchmark (repeatable); "
                            "registered: theta_join, fig2, focus, load")
    bench.add_argument("--run-id", default=None,
                       help="explicit run id (default: random)")
    bsub = bench.add_subparsers(dest="bench_command")
    bench_report_cmd = bsub.add_parser(
        "report", help="render per-metric trajectories with regression verdicts"
    )
    bench_report_cmd.add_argument("--json", action="store_true",
                                  help="machine-readable report")
    bench_report_cmd.add_argument("--gate", action="store_true",
                                  help="exit 1 if any gated metric regressed")
    bench_backfill_cmd = bsub.add_parser(
        "backfill", help="ingest existing benchmarks/reports/*.json into the ledger"
    )
    bench_backfill_cmd.add_argument("--report-dir", default="benchmarks/reports",
                                    help="directory of legacy report JSONs")

    eval_cmd = sub.add_parser(
        "eval",
        help="mass evaluation: batch-run program corpora through the full "
             "oracle battery with aggregate gates (subcommands: run, report)",
    )
    esub = eval_cmd.add_subparsers(dest="eval_command", required=True)
    eval_run = esub.add_parser(
        "run",
        help="ingest a corpus (fuzz sweep and/or .mrs directories), fan it "
             "across workers, write the aggregate report",
    )
    eval_run.add_argument("--count", type=int, default=0,
                          help="fuzz seed-sweep size; program i uses seed+i "
                               "(default: 0 = only --dir corpora)")
    eval_run.add_argument("--seed", type=int, default=0,
                          help="first sweep seed (default: 0)")
    eval_run.add_argument("--size", default="small",
                          choices=["small", "medium", "large"],
                          help="generator size profile for the sweep (default: small)")
    eval_run.add_argument("--dir", action="append", default=[], dest="dirs",
                          metavar="DIR",
                          help="directory of committed .mrs programs to ingest "
                               "(repeatable; recursive)")
    eval_run.add_argument("--workers", type=int, default=0,
                          help="process-pool workers; 0 or 1 = serial (default: 0)")
    eval_run.add_argument("--chunk-size", type=int, default=8,
                          help="programs per shard (default: 8)")
    eval_run.add_argument("--engine", default="bitset",
                          choices=["bitset", "vector", "object"],
                          help="dataflow substrate for the probe analyses "
                               "(default: bitset); `vector` doubles as an "
                               "at-scale differential pass of the numpy tier")
    eval_run.add_argument("--oracles",
                          help="comma-separated oracle subset (default: all five)")
    eval_run.add_argument("--inject", metavar="NAME",
                          help="add a synthetic always-wrong oracle "
                               "(self-test for the failure path)")
    eval_run.add_argument("--out-dir", default="benchmarks/reports/massrun",
                          help="report + manifest + failure artifacts root "
                               "(created idempotently; default: "
                               "benchmarks/reports/massrun)")
    eval_run.add_argument("--ledger-dir", default="benchmarks/reports/history",
                          help="bench-history ledger for the massrun row "
                               "(default: benchmarks/reports/history)")
    eval_run.add_argument("--no-ledger", action="store_true",
                          help="skip the bench-history ledger row")
    eval_run.add_argument("--gate", action="store_true",
                          help="exit 1 on any oracle failure or empty "
                               "feature bucket")
    eval_run.add_argument("--json", action="store_true",
                          help="print the aggregate report as JSON")
    eval_report_cmd = esub.add_parser(
        "report", help="render a previously written mass-evaluation report"
    )
    eval_report_cmd.add_argument(
        "report", nargs="?",
        default="benchmarks/reports/massrun/massrun_report.json",
        help="report path (default: benchmarks/reports/massrun/massrun_report.json)",
    )
    eval_report_cmd.add_argument("--json", action="store_true",
                                 help="print the report JSON verbatim")
    eval_report_cmd.add_argument("--gate", action="store_true",
                                 help="exit 1 if the report would fail the gate")

    metrics_cmd = sub.add_parser(
        "metrics",
        help="fetch the metrics snapshot from a live `repro serve --port` server",
    )
    metrics_cmd.add_argument("--host", default="127.0.0.1")
    metrics_cmd.add_argument("--port", type=int, required=True)
    metrics_cmd.add_argument("--prometheus", action="store_true",
                             help="Prometheus text exposition instead of JSON")
    metrics_cmd.add_argument("--slowlog", action="store_true",
                             help="fetch the slow-request log instead of metrics")
    metrics_cmd.add_argument("--health", action="store_true",
                             help="fetch the health summary instead of metrics")
    metrics_cmd.add_argument("--limit", type=int, default=None,
                             help="with --slowlog: at most N entries")
    metrics_cmd.add_argument("--no-traces", action="store_true",
                             help="with --slowlog: omit the span-tree exemplars")

    top_cmd = sub.add_parser(
        "top",
        help="live terminal dashboard of a running `repro serve --port` server",
    )
    top_cmd.add_argument("--host", default="127.0.0.1")
    top_cmd.add_argument("--port", type=int, required=True)
    top_cmd.add_argument("--interval", type=float, default=2.0,
                         help="seconds between frames (default: 2)")
    top_cmd.add_argument("--frames", type=int, default=None,
                         help="render N frames then exit (default: until ^C)")
    top_cmd.add_argument("--no-clear", action="store_true",
                         help="do not clear the screen between frames "
                              "(scripted/log-friendly output)")

    sub.add_parser("version", help="print the package version")

    query = sub.add_parser("query", help="one-shot query against the analysis service")
    query.add_argument("file")
    query.add_argument("--method", default="analyze",
                       choices=["analyze", "slice", "focus", "ifc", "warm", "stats"])
    query.add_argument("--function", help="restrict analyze / target slice or focus")
    query.add_argument("--variable", help="slice/focus criterion variable")
    query.add_argument("--forward", action="store_true", help="forward slice")
    query.add_argument("--line", type=int, help="focus cursor line (1-based)")
    query.add_argument("--col", type=int, help="focus cursor column (1-based)")
    query.add_argument("--secret-type", action="append", default=[], dest="secret_types")
    query.add_argument("--sink", action="append", default=[], dest="sinks")
    query.add_argument("--local-crate", default="main")
    query.add_argument("--cache-dir", help="directory for the JSON on-disk cache tier")
    query.add_argument("--repeat", type=int, default=1,
                       help="send the query N times (shows warm-cache hits)")
    _add_condition_flags(query)

    return parser


# ---------------------------------------------------------------------------
# Subcommand handlers
# ---------------------------------------------------------------------------


def _selected_functions(engine: FlowEngine, only: Optional[str]) -> List[str]:
    if only is not None:
        if engine.body(only) is None:
            raise ReproError(f"no function named {only!r} with a body")
        return [only]
    return engine.local_function_names()


def cmd_mir(args: argparse.Namespace, out) -> int:
    engine = FlowEngine.from_source(_read_source(args.file))
    for name in _selected_functions(engine, args.function):
        out.write(pretty_body(engine.body(name)) + "\n\n")
    return 0


def cmd_analyze(args: argparse.Namespace, out) -> int:
    source = _read_source(args.file)
    config = _config_from_args(args)
    engine = FlowEngine.from_source(source, config=config)
    names = _selected_functions(engine, args.function)

    workers = getattr(args, "workers", 0) or 0
    traced = bool(getattr(args, "trace", False) or getattr(args, "chrome", None))
    if workers > 1 and len(names) > 1:
        import dataclasses as _dataclasses

        from repro.service.scheduler import (
            _init_worker,
            _render_batch,
            run_waves,
            schedule_waves,
        )

        waves = schedule_waves(engine.call_graph, names)
        telemetry = None
        trace = None
        scheduled = dict(
            worker=_render_batch,
            waves=waves,
            max_workers=workers,
            initializer=_init_worker,
            initargs=(source, engine.local_crate, _dataclasses.asdict(config)),
        )
        if traced:
            # Telemetry is opt-in from the CLI: the untraced path stays
            # byte-identical (and envelope-free) to keep overhead at zero.
            from repro.obs import remote as obs_remote
            from repro.obs import start_trace

            telemetry = obs_remote.FanoutTelemetry(max_workers=workers)
            with start_trace("analyze") as trace:
                mode, wave_results, _error = run_waves(
                    telemetry=telemetry, **scheduled
                )
        else:
            mode, wave_results, _error = run_waves(**scheduled)
        rendered = {
            name: (body_text, sizes)
            for wave in wave_results
            for name, body_text, sizes in wave
        }
        out.write(
            f"// scheduled {len(names)} function(s) in {len(waves)} SCC "
            f"wave(s), mode: {mode}\n"
        )
        for name in names:
            body_text, sizes = rendered[name]
            out.write(f"// condition: {config.name}\n")
            out.write(body_text + "\n")
            out.write("// dependency-set sizes at exit:\n")
            for variable, size in sorted(sizes.items()):
                out.write(f"//   {variable}: {size}\n")
            out.write("\n")
        if traced:
            _write_analyze_trace(args, out, trace, telemetry)
        return 0

    if traced:
        from repro.obs import start_trace

        with start_trace("analyze") as trace:
            _analyze_serial(engine, names, out)
        _write_analyze_trace(args, out, trace, None)
        return 0
    _analyze_serial(engine, names, out)
    return 0


def _analyze_serial(engine, names, out) -> None:
    for name in names:
        result = engine.analyze_function(name)
        out.write(f"// condition: {result.config.name}\n")
        out.write(pretty_body(result.body, result.annotations()) + "\n")
        out.write("// dependency-set sizes at exit:\n")
        for variable, size in sorted(result.dependency_sizes().items()):
            out.write(f"//   {variable}: {size}\n")
        out.write("\n")


def _write_analyze_trace(args, out, trace, telemetry) -> None:
    """The ``analyze --trace`` trailer: span tree, fan-out stats, Chrome file."""
    from repro.obs import render_span_tree
    from repro.obs.export import write_chrome_trace

    if trace is None:
        out.write("// trace unavailable: observability is disabled\n")
        return
    out.write(f"// trace {trace.trace_id}\n")
    out.write(render_span_tree(trace.to_dict()["root"]) + "\n")
    if telemetry is not None:
        from repro.obs.remote import render_fanout

        for line in render_fanout(telemetry.to_json_dict()):
            out.write(line + "\n")
    if getattr(args, "chrome", None):
        path = write_chrome_trace(args.chrome, trace)
        out.write(f"// chrome trace written to {path}\n")


def cmd_slice(args: argparse.Namespace, out) -> int:
    source = _read_source(args.file)
    slicer = ProgramSlicer(source, config=_config_from_args(args))
    if args.forward:
        result = slicer.forward_slice(args.function, args.variable)
    else:
        result = slicer.backward_slice(args.function, args.variable)
    out.write(
        f"// {result.direction.value} slice of `{args.variable}` in {args.function}: "
        f"{result.size()} locations\n"
    )
    out.write(slicer.render(result) + "\n")
    return 0


_DIRECTION_ALIASES = {"fwd": "forward", "bwd": "backward"}


def cmd_focus(args: argparse.Namespace, out) -> int:
    import json

    from repro.focus.render import render_focus_response
    from repro.service.session import AnalysisSession

    by_cursor = args.line is not None and args.col is not None
    by_name = args.function is not None and args.variable is not None
    if not by_cursor and not by_name:
        raise ReproError("`focus` needs --line and --col, or --function and --variable")

    source = _read_source(args.file)
    session = AnalysisSession()
    session.open_unit("main", source)
    direction = _DIRECTION_ALIASES.get(args.direction, args.direction)
    response = session.focus(
        line=args.line if by_cursor else None,
        col=args.col if by_cursor else None,
        function=args.function if by_name else None,
        variable=args.variable if by_name else None,
        direction=direction,
        config=_config_from_args(args),
    )
    if args.json:
        out.write(json.dumps(response, sort_keys=True) + "\n")
    else:
        out.write(render_focus_response(source, response, color=args.color) + "\n")
    return 0


def cmd_stats(args: argparse.Namespace, out) -> int:
    import json

    if args.campaign is not None:
        from repro.fuzz.campaign import render_feature_histogram, render_oracle_counts

        data = json.loads(Path(args.campaign).read_text(encoding="utf-8"))
        if args.json:
            aggregates = {
                key: data.get(key)
                for key in ("generated", "seed", "size", "oracle_counts",
                            "feature_histogram", "feature_programs", "total_loc")
            }
            out.write(json.dumps(aggregates, indent=2, sort_keys=True) + "\n")
            return 0
        out.write(render_feature_histogram(data) + "\n")
        counts = data.get("oracle_counts") or {}
        if counts:
            out.write("\noracle battery:\n")
            out.write("\n".join(render_oracle_counts(counts)) + "\n")
        return 0
    if args.file is None:
        raise ReproError("`stats` needs a FILE (or --campaign REPORT_JSON)")

    # Table sizes / density / dirty-bit counts only exist on the indexed
    # substrates (bitset + vector); the condition flags still select what
    # is analysed.
    config = _config_from_args(args)
    if config.engine not in ("bitset", "vector"):
        raise ReproError(
            "`stats` reports interning-table/bitset metrics, which only the "
            "indexed engines have; drop --engine or pass --engine bitset "
            "or --engine vector"
        )
    engine = FlowEngine.from_source(_read_source(args.file), config=config)
    rows = []
    for name in _selected_functions(engine, args.function):
        result = engine.analyze_function(name)
        domain = result.transfer.domain
        matrix = result.exit_theta.matrix
        num_places, num_locations = len(domain.places), len(domain.locations)
        rows.append({
            "function": name,
            "blocks": len(result.body.blocks),
            "instructions": result.body.num_instructions(),
            "interned_places": num_places,
            "interned_locations": num_locations,
            "exit_rows": len(matrix),
            "exit_bits": matrix.popcount_total(),
            "exit_density": round(matrix.density(num_places, num_locations), 4),
            "fixpoint_iterations": result.fixpoint.iterations,
            "tables_digest": domain.digest(),
        })
    if args.json:
        out.write(json.dumps({"condition": config.name, "functions": rows},
                             indent=2, sort_keys=True) + "\n")
        return 0
    out.write(f"// condition: {config.name}\n")
    header = (
        f"{'function':<28} {'blocks':>6} {'instrs':>6} {'places':>6} "
        f"{'locs':>5} {'rows':>5} {'bits':>6} {'density':>8} {'iters':>5}\n"
    )
    out.write(header)
    for row in rows:
        out.write(
            f"{row['function']:<28} {row['blocks']:>6} {row['instructions']:>6} "
            f"{row['interned_places']:>6} {row['interned_locations']:>5} "
            f"{row['exit_rows']:>5} {row['exit_bits']:>6} "
            f"{row['exit_density']:>8.4f} {row['fixpoint_iterations']:>5}\n"
        )
    return 0


def cmd_ifc(args: argparse.Namespace, out) -> int:
    policy = IfcPolicy()
    for type_name in args.secret_types:
        policy.mark_type_secret(type_name)
    for spec in args.secret_variables:
        if ":" in spec:
            fn_name, variable = spec.split(":", 1)
        else:
            fn_name, variable = "*", spec
        policy.secret_variables.add((fn_name, variable))
    for sink in args.sinks:
        policy.mark_function_insecure(sink)
    checker = IfcChecker(_read_source(args.file), policy)
    violations = checker.check_all()
    out.write(checker.report() + "\n")
    return 1 if violations else 0


def cmd_fuzz(args: argparse.Namespace, out) -> int:
    import json

    from repro.fuzz.campaign import (
        CampaignConfig,
        render_campaign_report,
        run_campaign,
    )

    if args.repro_args:
        if args.repro_args[0] != "repro" or len(args.repro_args) != 2:
            raise ReproError(
                "usage: `repro fuzz [flags]` for a campaign, or "
                "`repro fuzz repro ARTIFACT.json` to replay a shrunk repro"
            )
        return _fuzz_replay(args.repro_args[1], args, out)

    config = CampaignConfig(
        seed=args.seed,
        count=args.count,
        time_budget=args.time_budget,
        size=args.size,
        oracles=[name.strip() for name in args.oracles.split(",")] if args.oracles else None,
        inject=args.inject,
        shrink_failures=not args.no_shrink,
        report_dir=args.report_dir,
        export_dir=args.export_corpus,
    )
    report = run_campaign(config)
    if args.json:
        out.write(json.dumps(report.to_json_dict(), indent=2, sort_keys=True) + "\n")
    else:
        out.write(render_campaign_report(report) + "\n")
    return 0 if report.passed else 1


def _fuzz_replay(artifact_path: str, args: argparse.Namespace, out) -> int:
    """``repro fuzz repro ARTIFACT``: re-run the recorded oracle on the
    shrunk program.  Exit 0 when the failure reproduces as recorded, 1 when
    it no longer does (fixed or flaky)."""
    import json

    from repro.errors import render_error_with_source
    from repro.fuzz.campaign import replay_artifact

    outcome = replay_artifact(artifact_path)
    artifact = outcome.artifact
    if args.json:
        out.write(json.dumps({
            "artifact": artifact_path,
            "oracle": artifact["oracle"],
            "seed": artifact["seed"],
            "reproduced": outcome.reproduced,
            "verdicts": [v.to_json_dict() for v in outcome.verdicts],
        }, indent=2, sort_keys=True) + "\n")
        return 0 if outcome.reproduced else 1

    out.write(
        f"replaying artifact {artifact_path} "
        f"(seed {artifact['seed']}, oracle {artifact['oracle']})\n\n"
    )
    out.write(artifact["source"].rstrip("\n") + "\n\n")
    for verdict in outcome.verdicts:
        status = "FAIL" if not verdict.ok else "pass"
        out.write(f"[{status}] {verdict.oracle}: {verdict.detail or 'ok'}\n")
        # Front-end failures carry a span inside the detail; re-run the
        # pipeline to surface line:column plus the offending source lines.
        if not verdict.ok and verdict.oracle == "validate":
            from repro.fuzz.oracles import prepare

            try:
                prepare(artifact["source"], artifact.get("crate_name", "fuzzed"))
            except ReproError as error:
                out.write(
                    render_error_with_source(
                        error, artifact["source"], filename=artifact_path
                    ) + "\n"
                )
    out.write(
        "\nverdict: "
        + ("reproduced as recorded\n" if outcome.reproduced else "did NOT reproduce\n")
    )
    return 0 if outcome.reproduced else 1


def cmd_corpus(args: argparse.Namespace, out) -> int:
    from repro.eval.corpus import generate_corpus

    corpus = generate_corpus(scale=args.scale)
    if args.crate is not None:
        matches = [c for c in corpus if c.name == args.crate]
        if not matches:
            raise ReproError(f"no crate named {args.crate!r} in the corpus")
        out.write(matches[0].source)
        return 0
    from repro.eval.report import render_table1

    out.write(render_table1(corpus) + "\n")
    return 0


def cmd_experiment(args: argparse.Namespace, out) -> int:
    from repro.eval.corpus import generate_corpus
    from repro.eval.experiments import primary_experiment_conditions, run_conditions
    from repro.eval.report import render_boundary_study, render_summary_table

    corpus = generate_corpus(scale=args.scale)
    data = run_conditions(corpus, primary_experiment_conditions())
    out.write(render_summary_table(data) + "\n\n")
    out.write(render_boundary_study(data) + "\n")
    return 0


def _serve_socket(args: argparse.Namespace, out) -> int:
    """The ``serve --port`` path: the concurrent thread-pool socket server."""
    import json
    import time

    from repro.service.server import ThreadedAnalysisServer

    if args.log_level != "quiet":
        import logging

        access = logging.getLogger("repro.access")
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(message)s"))
        access.addHandler(handler)
        access.setLevel(logging.INFO if args.log_level == "info" else logging.DEBUG)
        access.propagate = False

    server = ThreadedAnalysisServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        persist_dir=args.persist_dir,
        max_entries=args.max_entries,
        local_crate=args.local_crate,
        default_workspace=args.workspace,
        log_level=args.log_level,
        trace_dir=args.trace_dir,
        slowlog=not args.no_slowlog,
        slowlog_threshold_ms=args.slowlog_threshold_ms,
        slowlog_capacity=args.slowlog_capacity,
    )
    if args.file is not None:
        handle = server.registry.handle(args.workspace)
        with handle.lock.write_locked():
            handle.session.open_unit("main", _read_source(args.file))
            server.registry.note_mutation(handle)
    server.start()
    out.write(json.dumps(server.hello(), sort_keys=True) + "\n")
    try:
        out.flush()
    except (AttributeError, OSError):
        pass
    try:
        while True:
            time.sleep(0.5)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def cmd_serve(args: argparse.Namespace, out) -> int:
    from repro.focus.server import serve_jsonrpc
    from repro.service.persist import open_or_create_workspace, save_workspace
    from repro.service.protocol import serve
    from repro.service.session import AnalysisSession

    if args.port is not None:
        # Flags that only make sense for the stdio loops must not be
        # silently dropped in socket mode.
        for flag, value in (("--cache-dir", args.cache_dir),
                            ("--input", args.input),
                            ("--jsonrpc", args.jsonrpc or None)):
            if value:
                raise ReproError(
                    f"{flag} is a stdio-mode flag and has no effect with --port; "
                    "use --persist-dir for the socket server's disk tier "
                    "(both dialects are always multiplexed in socket mode)"
                )
        return _serve_socket(args, out)

    for flag, value in (("--log-level", args.log_level if args.log_level != "quiet" else None),
                        ("--trace-dir", args.trace_dir),
                        ("--slowlog-threshold-ms", args.slowlog_threshold_ms),
                        ("--no-slowlog", args.no_slowlog or None)):
        if value:
            raise ReproError(
                f"{flag} is a socket-mode flag and has no effect without --port"
            )

    if args.persist_dir is not None:
        session = open_or_create_workspace(
            args.persist_dir,
            args.workspace,
            max_entries=args.max_entries,
            local_crate=args.local_crate,
        )
    else:
        session = AnalysisSession(
            cache_dir=args.cache_dir,
            max_entries=args.max_entries,
            local_crate=args.local_crate,
        )
    if args.file is not None:
        session.open_unit("main", _read_source(args.file))
    loop = serve_jsonrpc if args.jsonrpc else serve
    try:
        if args.input is not None:
            with open(args.input, "r", encoding="utf-8") as in_stream:
                return loop(in_stream, out, session)
        return loop(sys.stdin, out, session)
    finally:
        if args.persist_dir is not None:
            save_workspace(session, args.persist_dir, args.workspace)


def cmd_workspace(args: argparse.Namespace, out) -> int:
    import json

    from repro.service.persist import list_workspaces, load_workspace, save_workspace
    from repro.service.session import AnalysisSession

    if args.ws_command == "save":
        session = AnalysisSession(local_crate=args.local_crate)
        # Unit names default to basenames; if two files share one, fall back
        # to the paths as given so neither silently overwrites the other.
        names = [Path(path).name for path in args.files]
        if len(set(names)) != len(names):
            names = list(args.files)
        session.open_units(
            (name, _read_source(path)) for name, path in zip(names, args.files)
        )
        if args.warm:
            session.warm()
        summary = save_workspace(session, args.persist_dir, args.workspace)
        out.write(json.dumps(summary, sort_keys=True) + "\n")
        return 0
    if args.ws_command == "load":
        session = load_workspace(args.persist_dir, args.workspace)
        report = {
            "workspace": args.workspace,
            "units": session.unit_names(),
            "functions": len(session.function_names()),
        }
        if args.analyze:
            result = session.analyze()
            report["analyze"] = {
                "cache_hits": result["cache_hits"],
                "cache_misses": result["cache_misses"],
            }
        report["stats"] = session.store.stats.to_dict()
        out.write(json.dumps(report, sort_keys=True) + "\n")
        return 0
    out.write(json.dumps(list_workspaces(args.persist_dir), sort_keys=True) + "\n")
    return 0


def cmd_version(args: argparse.Namespace, out) -> int:
    out.write(f"repro-flowistry {__version__}\n")
    return 0


def cmd_query(args: argparse.Namespace, out) -> int:
    import json

    from repro.service.protocol import AnalysisService
    from repro.service.session import AnalysisSession

    session = AnalysisSession(cache_dir=args.cache_dir, local_crate=args.local_crate)
    session.open_unit("main", _read_source(args.file))
    service = AnalysisService(session)

    condition = {
        "whole_program": args.whole_program,
        "mut_blind": args.mut_blind,
        "ref_blind": args.ref_blind,
    }
    params: dict = {"condition": condition}
    if args.method == "analyze":
        if args.function:
            params["function"] = args.function
    elif args.method == "slice":
        if not args.function or not args.variable:
            raise ReproError("`query --method slice` needs --function and --variable")
        params.update(
            function=args.function,
            variable=args.variable,
            direction="forward" if args.forward else "backward",
        )
    elif args.method == "focus":
        if args.line is not None and args.col is not None:
            params.update(line=args.line, col=args.col)
        elif args.function and args.variable:
            params.update(function=args.function, variable=args.variable)
        else:
            raise ReproError(
                "`query --method focus` needs --line and --col, or --function and --variable"
            )
    elif args.method == "ifc":
        params.update(secret_types=args.secret_types, sinks=args.sinks)
    elif args.method == "stats":
        params = {}

    failed = False
    for index in range(max(1, args.repeat)):
        response = service.handle({"id": index + 1, "method": args.method, "params": params})
        out.write(json.dumps(response, sort_keys=True) + "\n")
        failed = failed or not response.get("ok", False)
    return 1 if failed else 0


def cmd_trace(args: argparse.Namespace, out) -> int:
    """Traced one-shot analysis: span tree to stdout, optional Chrome export."""
    import json

    from repro.obs import filter_span_tree, render_span_tree, start_trace
    from repro.obs.export import write_chrome_trace
    from repro.service.session import AnalysisSession

    session = AnalysisSession(local_crate=args.local_crate)
    config = _config_from_args(args)
    with start_trace("analyze") as trace:
        session.open_unit("main", _read_source(args.file))
        session.analyze(function=args.function, config=config)
    if trace is None:
        out.write("error: observability is disabled in this process\n")
        return 2
    tree = trace.to_dict()
    hidden = 0
    min_self_ms = getattr(args, "min_self_ms", 0.0) or 0.0
    max_depth = getattr(args, "depth", None)
    if min_self_ms > 0.0 or max_depth is not None:
        tree["root"], hidden = filter_span_tree(
            tree["root"], min_self_ms=min_self_ms, max_depth=max_depth
        )
    if args.json:
        out.write(json.dumps(tree, sort_keys=True) + "\n")
    else:
        out.write(f"trace {trace.trace_id}\n")
        out.write(render_span_tree(tree["root"]) + "\n")
        out.write(
            "{} spans, {:.3f}ms total\n".format(
                len(trace.spans()), trace.root.duration_ms
            )
        )
        if hidden:
            out.write(f"({hidden} span(s) hidden by --min-self-ms/--depth)\n")
    if args.chrome:
        path = write_chrome_trace(args.chrome, trace)
        out.write(f"chrome trace written to {path}\n")
    return 0


def cmd_metrics(args: argparse.Namespace, out) -> int:
    """Scrape a live socket server: ``metrics``, ``--slowlog``, or ``--health``."""
    import json
    import socket as socket_module

    from repro.obs.export import render_prometheus

    if args.slowlog and args.health:
        raise ReproError("--slowlog and --health are mutually exclusive")
    request: dict = {"id": 1, "method": "metrics"}
    if args.slowlog:
        params: dict = {"traces": not args.no_traces}
        if args.limit is not None:
            params["limit"] = args.limit
        request = {"id": 1, "method": "slowlog", "params": params}
    elif args.health:
        request = {"id": 1, "method": "health"}
    try:
        conn = socket_module.create_connection((args.host, args.port), timeout=10.0)
    except OSError as error:
        raise ReproError(
            f"cannot connect to {args.host}:{args.port}: {error}"
        ) from error
    with conn:
        rfile = conn.makefile("r", encoding="utf-8", newline="\n")
        wfile = conn.makefile("w", encoding="utf-8", newline="\n")
        hello = json.loads(rfile.readline())
        if "hello" not in hello:
            out.write(f"error: unexpected greeting: {hello}\n")
            return 2
        wfile.write(json.dumps(request) + "\n")
        wfile.flush()
        response = json.loads(rfile.readline())
    if not response.get("ok"):
        out.write(f"error: {response.get('error')}\n")
        return 2
    result = response["result"]
    if args.prometheus and not (args.slowlog or args.health):
        out.write(render_prometheus(result))
    else:
        out.write(json.dumps(result, sort_keys=True, indent=2) + "\n")
    return 0


def cmd_top(args: argparse.Namespace, out) -> int:
    """Live fleet dashboard against a running socket server."""
    from repro.obs.dashboard import run_top

    return run_top(
        args.host,
        args.port,
        interval=args.interval,
        frames=args.frames,
        out=out,
        clear=not args.no_clear,
    )


def cmd_profile(args: argparse.Namespace, out) -> int:
    """Traced + sampled one-shot analysis: the CLI face of the profiler."""
    import json

    from repro.obs import start_trace
    from repro.obs.export import chrome_trace_document
    from repro.obs.profile import (
        SamplingProfiler,
        attach_profile_to_chrome,
        flamegraph_html,
        flamegraph_svg,
    )
    from repro.service.session import AnalysisSession

    session = AnalysisSession(local_crate=args.local_crate)
    config = _config_from_args(args)
    profiler = SamplingProfiler(hz=args.hz, code_frames=args.code_frames)
    with profiler:
        with start_trace("analyze") as trace:
            session.open_unit("main", _read_source(args.file))
            session.analyze(function=args.function, config=config)
    if trace is None:
        out.write("error: observability is disabled in this process\n")
        return 2
    profile = profiler.profile
    if args.json:
        out.write(json.dumps(profile.to_dict(), sort_keys=True) + "\n")
    else:
        out.write(
            "profiled {} at {:g}hz: {} samples over {:.3f}s\n".format(
                args.file, profiler.hz, profile.total_samples, profile.duration_seconds
            )
        )
        for name, fraction in sorted(
            profile.root_attribution().items(), key=lambda kv: -kv[1]
        ):
            out.write(f"  {100 * fraction:5.1f}%  {name}\n")
        top = sorted(profile.counts.items(), key=lambda kv: -kv[1])[:10]
        if top:
            out.write("hottest stacks:\n")
            for stack, count in top:
                out.write(f"  {count:5d}  {';'.join(stack)}\n")
    if args.collapsed:
        path = Path(args.collapsed)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(profile.to_collapsed(), encoding="utf-8")
        out.write(f"collapsed stacks written to {path}\n")
    if args.flame:
        path = Path(args.flame)
        path.parent.mkdir(parents=True, exist_ok=True)
        title = f"repro profile: {args.file}"
        if path.suffix.lower() in (".html", ".htm"):
            path.write_text(flamegraph_html(profile, title=title), encoding="utf-8")
        else:
            path.write_text(flamegraph_svg(profile, title=title), encoding="utf-8")
        out.write(f"flamegraph written to {path}\n")
    if args.chrome:
        document = chrome_trace_document(trace)
        attach_profile_to_chrome(document, profile, base_ns=trace.root.start_ns)
        path = Path(args.chrome)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
        out.write(f"chrome trace (with samples) written to {path}\n")
    return 0


def cmd_bench(args: argparse.Namespace, out) -> int:
    """``repro bench`` family: run the suite, report trajectories, backfill."""
    import json
    import time

    from repro.eval.bench import (
        bench_report,
        new_run_id,
        record_run,
        render_bench_report,
        run_suite,
    )
    from repro.obs.history import HistoryLedger, backfill_reports

    ledger = HistoryLedger(args.ledger_dir)
    command = getattr(args, "bench_command", None)

    if command == "report":
        report = bench_report(ledger)
        if args.json:
            out.write(json.dumps(report, sort_keys=True, indent=2) + "\n")
        else:
            out.write(render_bench_report(report) + "\n")
        if args.gate and not report["gate"]["ok"]:
            return 1
        return 0

    if command == "backfill":
        appended = backfill_reports(
            args.report_dir, ledger, run_id=new_run_id(), timestamp=time.time()
        )
        out.write(
            json.dumps(
                {"backfilled": appended, "ledger": str(ledger.path)}, sort_keys=True
            )
            + "\n"
        )
        return 0

    started = time.perf_counter()
    try:
        metrics, config = run_suite(scale=args.scale, only=args.only)
    except KeyError as error:
        raise ReproError(str(error).strip('"').strip("'")) from error
    run_id, appended = record_run(
        ledger, metrics, timestamp=time.time(), run_id=args.run_id, config=config
    )
    out.write(
        json.dumps(
            {
                "run_id": run_id,
                "records": appended,
                "suite": config["suite"],
                "scale": config["scale"],
                "duration_seconds": round(time.perf_counter() - started, 3),
                "ledger": str(ledger.path),
                "metrics": {name: round(value, 6) for name, value in sorted(metrics.items())},
            },
            sort_keys=True,
            indent=2,
        )
        + "\n"
    )
    return 0


def cmd_eval(args: argparse.Namespace, out) -> int:
    """``repro eval`` family: mass-run corpora, render aggregate reports."""
    import json

    from repro.eval.massrun import (
        MassRunConfig,
        gate_problems,
        load_report,
        render_mass_report,
        run_mass_evaluation,
    )

    if args.eval_command == "report":
        data = load_report(args.report)
        if args.json:
            out.write(json.dumps(data, sort_keys=True, indent=2) + "\n")
        else:
            out.write(render_mass_report(data) + "\n")
        if args.gate:
            problems = gate_problems(data)
            if problems:
                for problem in problems:
                    out.write(f"gate: {problem}\n")
                return 1
            out.write("gate: ok\n")
        return 0

    config = MassRunConfig(
        count=args.count,
        seed=args.seed,
        size=args.size,
        dirs=list(args.dirs),
        workers=args.workers,
        chunk_size=args.chunk_size,
        engine=args.engine,
        oracles=args.oracles.split(",") if args.oracles else None,
        inject=args.inject,
        out_dir=args.out_dir,
        ledger_dir=None if args.no_ledger else args.ledger_dir,
    )
    report = run_mass_evaluation(config)
    data = report.to_json_dict()
    if args.json:
        out.write(json.dumps(data, sort_keys=True, indent=2) + "\n")
    else:
        out.write(render_mass_report(data) + "\n")
        out.write(f"\nreport: {report.report_path}\n")
        if report.ledger is not None:
            out.write(
                "ledger: {} ({} record(s), run {})\n".format(
                    report.ledger["ledger"],
                    report.ledger["records"],
                    report.ledger["run_id"],
                )
            )
    if args.gate:
        problems = gate_problems(data)
        if problems:
            for problem in problems:
                out.write(f"gate: {problem}\n")
            return 1
        out.write("gate: ok\n")
    return 0


_HANDLERS = {
    "mir": cmd_mir,
    "analyze": cmd_analyze,
    "slice": cmd_slice,
    "focus": cmd_focus,
    "stats": cmd_stats,
    "ifc": cmd_ifc,
    "fuzz": cmd_fuzz,
    "corpus": cmd_corpus,
    "experiment": cmd_experiment,
    "serve": cmd_serve,
    "trace": cmd_trace,
    "profile": cmd_profile,
    "bench": cmd_bench,
    "eval": cmd_eval,
    "metrics": cmd_metrics,
    "top": cmd_top,
    "workspace": cmd_workspace,
    "version": cmd_version,
    "query": cmd_query,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _HANDLERS[args.command]
    try:
        return handler(args, out)
    except ReproError as error:
        # Span-carrying failures (parse/typecheck/lowering) print with
        # line:column and a source excerpt when the input file is at hand.
        from repro.errors import DUMMY_SPAN, render_error_with_source

        span = getattr(error, "span", DUMMY_SPAN)
        file_path = getattr(args, "file", None)
        if span is not None and not span.is_dummy() and file_path:
            try:
                source = _read_source(file_path)
            except OSError:
                source = None
            if source is not None:
                out.write(
                    render_error_with_source(error, source, filename=file_path) + "\n"
                )
                return 2
        out.write(f"error: {error}\n")
        return 2
    except FileNotFoundError as error:
        out.write(f"error: {error}\n")
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
