"""Information flow control demo (the Figure 5b application).

The paper's IFC prototype flags flows from data marked ``Secure`` (such as a
``Password``) into operations marked ``Insecure`` (such as printing).  The
example below reproduces that exact scenario, including the *implicit* flow:
the insecure print is only conditionally executed based on a comparison with
the password, which is still a leak.

Run with::

    python examples/ifc_audit.py
"""

from repro import IfcChecker, IfcPolicy


SOURCE = """
struct Password { value: u32 }
struct Session { user: u32, token: u32 }

extern fn insecure_print(x: u32);
extern fn secure_log(x: u32);
extern fn hash(x: u32) -> u32;

// Leaks the password hash directly to an insecure sink.
fn leak_direct(p: &Password) {
    let h = hash(p.value);
    insecure_print(h);
}

// Leaks one bit of the password via control flow (Figure 5b's case):
// whether the print happens at all reveals information about the password.
fn leak_implicit(p: &Password, guess: u32) {
    if guess == p.value {
        insecure_print(1);
    }
}

// No leak: only public session data reaches the insecure sink, and the
// password only flows to the secure logger.
fn audit_session(s: &Session, p: &Password) {
    insecure_print(s.user);
    secure_log(p.value);
}
"""


def main() -> None:
    policy = (
        IfcPolicy()
        .mark_type_secret("Password")
        .mark_function_insecure("insecure_print")
    )
    checker = IfcChecker(SOURCE, policy)

    print("=" * 72)
    print("IFC audit of the example program")
    print("=" * 72)
    print(checker.report())
    print()

    print("Per-function verdicts:")
    for fn_name in ("leak_direct", "leak_implicit", "audit_session"):
        violations = checker.check_function(fn_name)
        verdict = "LEAK" if violations else "ok"
        print(f"  {fn_name:16} {verdict}")
        for violation in violations:
            print(f"      {violation.render()}")


if __name__ == "__main__":
    main()
