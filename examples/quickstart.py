"""Quickstart: analyse information flow in a small MiniRust function.

Reproduces the paper's running example (Figure 1): a ``get_count`` function
over a hash map, where the interesting flows are (1) ``insert`` mutating the
map because it takes ``&mut self``, and (2) the map picking up an *indirect*
dependency on the ``contains_key`` result because the ``insert`` call is
control-dependent on it.

Run with::

    python examples/quickstart.py
"""

from repro import AnalysisConfig, FlowEngine, pretty_body


GET_COUNT = """
struct HashMap;

extern fn contains_key(h: &HashMap, k: u32) -> bool;
extern fn insert(h: &mut HashMap, k: u32, v: u32);
extern fn get(h: &HashMap, k: u32) -> u32;

// Figure 1 of the paper: find a value for a key, inserting 0 if absent.
fn get_count(h: &mut HashMap, k: u32) -> u32 {
    if !contains_key(h, k) {
        insert(h, k, 0);
        0
    } else {
        get(h, k)
    }
}
"""


def main() -> None:
    engine = FlowEngine.from_source(GET_COUNT, config=AnalysisConfig())
    result = engine.analyze_function("get_count")

    print("=" * 72)
    print("MIR of get_count, annotated with the dependency context Θ")
    print("(compare with Figure 1 of the paper)")
    print("=" * 72)
    print(pretty_body(result.body, result.annotations()))
    print()

    print("Dependency-set sizes at the function exit:")
    for variable, size in sorted(result.dependency_sizes().items()):
        print(f"  {variable:10} {size:3} dependencies")
    print()

    return_deps = sorted(loc.pretty() for loc in result.backward_slice_of_variable("h"))
    print("Backward slice of `h` (locations that may influence the map):")
    for location in return_deps:
        instruction = result.body.instruction_at(
            next(l for l in result.body.locations() if l.pretty() == location)
        )
        print(f"  {location:9} {instruction.pretty(result.body)}")
    print()
    print(
        "Note how the insert call and the switch on contains_key both appear: "
        "the first is a direct mutation through &mut, the second an indirect "
        "(control) flow — exactly the two flows highlighted in the paper."
    )


if __name__ == "__main__":
    main()
