"""Focus mode demo: cursor-driven, span-precise information flow.

The paper's headline application is an IDE extension: put the cursor on an
expression and see its forward/backward information-flow dependencies
highlighted as source *ranges*.  This demo walks a few cursor positions
through the focus engine and renders the highlights in the terminal —
``^`` marks the place under the cursor, ``<`` marks code it depends on
(backward), ``>`` marks code it flows into (forward), ``=`` both.

Run with::

    python examples/focus_demo.py
"""

from repro.focus.render import render_focus_response
from repro.service.session import AnalysisSession


SOURCE = """\
struct Stats { bytes: u32, errors: u32 }

extern fn read_chunk(id: u32) -> u32;

fn ingest(limit: u32, seed: u32) -> u32 {
    let mut stats = Stats { bytes: 0, errors: 0 };
    let mut checksum = seed;
    let mut count = 0;
    while count < limit {
        let chunk = read_chunk(count);
        checksum = checksum + chunk * 31;
        stats.bytes = stats.bytes + chunk;
        count = count + 1;
    }
    stats.errors = limit - count;
    checksum
}
"""


def find_cursor(needle: str, occurrence: int = 0):
    """1-based (line, col) of a source snippet, so the demo stays in sync."""
    count = 0
    for line_no, text in enumerate(SOURCE.splitlines(), start=1):
        col = -1
        while True:
            col = text.find(needle, col + 1)
            if col < 0:
                break
            if count == occurrence:
                return line_no, col + 1
            count += 1
    raise SystemExit(f"demo source changed: {needle!r} not found")


def main() -> None:
    session = AnalysisSession()
    session.open_unit("main", SOURCE)

    cursors = [
        ("the `chunk` read inside the loop", find_cursor("chunk * 31")),
        ("the `seed` parameter", find_cursor("seed: u32")),
        ("the `stats.bytes` field write", find_cursor("stats.bytes =")),
    ]
    for description, (line, col) in cursors:
        response = session.focus(line=line, col=col)
        print("=" * 72)
        print(f"Cursor on {description} ({line}:{col}) — cache: {response['cache']}")
        print("=" * 72)
        print(render_focus_response(SOURCE, response))
        print()

    # The same query again is served from the precomputed focus table.
    line, col = cursors[0][1]
    warm = session.focus(line=line, col=col)
    print(f"Repeating the first query: cache = {warm['cache']} "
          f"(store stats: {warm['stats']['hits']} hits, {warm['stats']['misses']} misses)")


if __name__ == "__main__":
    main()
