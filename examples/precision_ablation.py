"""Precision ablation on a miniature corpus (a taste of Section 5).

Generates a scaled-down version of the paper's evaluation corpus, runs the
four analysis conditions (Modular, Whole-program, Mut-blind, Ref-blind) over
every function, and prints the headline precision comparison plus the
Figure 2 histogram.  The full-scale version of this pipeline lives in
``benchmarks/``.

Run with::

    python examples/precision_ablation.py
"""

from repro.eval.corpus import generate_corpus
from repro.eval.experiments import primary_experiment_conditions, run_conditions
from repro.eval.report import (
    render_boundary_study,
    render_figure2,
    render_summary_table,
    render_table1,
)


def main() -> None:
    corpus = generate_corpus(scale=0.25)
    print(render_table1(corpus))
    print()

    data = run_conditions(corpus, primary_experiment_conditions())
    print(render_summary_table(data))
    print()
    print(render_figure2(data))
    print()
    print(render_boundary_study(data))


if __name__ == "__main__":
    main()
