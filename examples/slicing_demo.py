"""Program slicing demo (the Figure 5a application).

A file-processing function mixes three concerns: computing a checksum,
tracking timing statistics, and logging.  The slicer highlights only the
lines relevant to the checksum, and can list the lines a refactoring could
remove (the "comment out everything related to timing" workflow from the
paper).

Run with::

    python examples/slicing_demo.py
"""

from repro import AnalysisConfig, ProgramSlicer


SOURCE = """
struct File;
struct Stats { bytes: u32, elapsed: u32 }

extern fn read_chunk(f: &mut File) -> u32;
extern fn has_more(f: &File) -> bool;
extern fn now() -> u32;
extern fn log_progress(code: u32);

fn process_file(f: &mut File, limit: u32) -> u32 {
    let start = now();
    let mut checksum = 0;
    let mut stats = Stats { bytes: 0, elapsed: 0 };
    let mut count = 0;
    while count < limit {
        let chunk = read_chunk(f);
        checksum = checksum + chunk * 31;
        stats.bytes = stats.bytes + chunk;
        log_progress(count);
        count = count + 1;
    }
    stats.elapsed = now() - start;
    checksum
}
"""


def main() -> None:
    slicer = ProgramSlicer(SOURCE, config=AnalysisConfig())

    backward = slicer.backward_slice("process_file", "checksum")
    print("=" * 72)
    print("Backward slice on `checksum` (lines not in the slice are faded with '~')")
    print("=" * 72)
    print(slicer.render(backward))
    print()

    forward = slicer.forward_slice("process_file", "start")
    print("=" * 72)
    print("Forward slice on `start` (what does the timing start value influence?)")
    print("=" * 72)
    print(f"locations influenced: {len(forward.locations)}")
    print(f"source lines involved: {sorted(forward.relevant_lines)}")
    print()

    removable = slicer.removable_lines("process_file", "checksum")
    print("Lines that could be removed without changing `checksum`:")
    lines = SOURCE.splitlines()
    for line_number in sorted(removable):
        print(f"  {line_number:3}: {lines[line_number - 1].strip()}")


if __name__ == "__main__":
    main()
