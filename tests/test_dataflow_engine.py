"""Tests for the generic forward dataflow engine.

Uses a tiny "defined locals" analysis (which locals have definitely been
assigned) as a simple client, independent from the information flow analysis,
to check the fixpoint machinery itself: joins, convergence on loops, and the
per-location state reconstruction.
"""

from repro.dataflow.engine import ForwardAnalysis
from repro.mir.ir import CallTerminator, Location, StatementKind

from helpers import lowered_from


class DefinedLocalsLattice:
    """Sets of local indices that may have been written (a may-analysis)."""

    def bottom(self):
        return set()

    def join(self, left, right):
        return left | right

    def equals(self, left, right):
        return left == right

    def copy(self, state):
        return set(state)


def defined_locals_transfer(state, body, location):
    instruction = body.instruction_at(location)
    if isinstance(instruction, CallTerminator):
        state.add(instruction.destination.local)
        return
    if getattr(instruction, "kind", None) is StatementKind.ASSIGN:
        state.add(instruction.place.local)


def run_analysis(source, fn_name):
    _checked, lowered = lowered_from(source)
    body = lowered.body(fn_name)
    analysis = ForwardAnalysis(DefinedLocalsLattice(), defined_locals_transfer)
    return body, analysis.run(body)


def test_straight_line_accumulates_definitions():
    body, result = run_analysis("fn f(a: u32) -> u32 { let b = a + 1; b }", "f")
    final = result.state_at_returns()
    b_local = body.local_by_name("b").index
    assert b_local in final
    assert 0 in final  # the return place was written


def test_branches_join_with_union():
    source = """
    fn f(c: bool) -> u32 {
        let mut x = 0;
        let mut y = 0;
        if c { x = 1; } else { y = 1; }
        x + y
    }
    """
    body, result = run_analysis(source, "f")
    final = result.state_at_returns()
    assert body.local_by_name("x").index in final
    assert body.local_by_name("y").index in final


def test_loop_reaches_fixpoint():
    source = """
    fn f(n: u32) -> u32 {
        let mut i = 0;
        while i < n { i = i + 1; }
        i
    }
    """
    _body, result = run_analysis(source, "f")
    assert result.iterations > 0
    assert result.state_at_returns()  # non-empty and terminated


def test_state_at_and_after_locations_differ_across_assignment():
    body, result = run_analysis("fn f() -> u32 { let z = 4; z }", "f")
    z_local = body.local_by_name("z").index
    # Find the statement assigning z.
    target = None
    for location in body.locations():
        stmt = body.statement_at(location)
        if stmt is not None and stmt.kind is StatementKind.ASSIGN and stmt.place.local == z_local:
            target = location
            break
    assert target is not None
    assert z_local not in result.state_at(target)
    assert z_local in result.state_after(target)


def test_exit_states_cover_every_block():
    body, result = run_analysis("fn f(c: bool) -> u32 { if c { 1 } else { 2 } }", "f")
    exits = result.exit_states()
    assert set(exits.keys()) == set(range(len(body.blocks)))


def test_boundary_state_seeds_entry_block():
    source = "fn f(a: u32) -> u32 { a }"
    _checked, lowered = lowered_from(source)
    body = lowered.body("f")
    analysis = ForwardAnalysis(
        DefinedLocalsLattice(),
        defined_locals_transfer,
        boundary_state=lambda b: {local.index for local in b.arg_locals()},
    )
    result = analysis.run(body)
    assert 1 in result.entry_states[0]
