"""Tests for loan-set computation (the Section 4.2 pointer analysis)."""

from repro.borrowck.loans import compute_loans
from repro.mir.ir import Place, PlaceElem

from helpers import lowered_from


def loans_for(source, fn_name):
    checked, lowered = lowered_from(source)
    body = lowered.body(fn_name)
    return body, compute_loans(body, checked.signatures)


def named_place(body, name, *fields):
    place = Place.from_local(body.local_by_name(name).index)
    for index in fields:
        place = place.project_field(index)
    return place


def test_direct_borrow_records_loan():
    body, loans = loans_for("fn f() { let mut x = 1; let r = &mut x; *r = 2; }", "f")
    r = named_place(body, "r")
    x = named_place(body, "x")
    assert x in loans.loan_set(r)


def test_borrow_of_field_is_field_sensitive():
    source = """
    fn f() -> u32 {
        let mut t = (1, 2);
        let r = &mut t.1;
        *r = 5;
        t.0
    }
    """
    body, loans = loans_for(source, "f")
    r = named_place(body, "r")
    t = named_place(body, "t")
    assert t.project_field(1) in loans.loan_set(r)
    assert t.project_field(0) not in loans.loan_set(r)


def test_reference_copy_propagates_loans():
    source = """
    fn f() -> u32 {
        let mut x = 1;
        let r1 = &mut x;
        let r2 = r1;
        *r2 = 3;
        x
    }
    """
    body, loans = loans_for(source, "f")
    r2 = named_place(body, "r2")
    assert named_place(body, "x") in loans.loan_set(r2)


def test_resolve_deref_of_local_borrow():
    body, loans = loans_for("fn f() { let mut x = 1; let r = &mut x; *r = 2; }", "f")
    r = named_place(body, "r")
    resolved = loans.resolve(r.project_deref())
    assert resolved == frozenset({named_place(body, "x")})


def test_resolve_argument_reference_is_abstract():
    body, loans = loans_for("fn f(p: &mut u32) { *p = 1; }", "f")
    p = named_place(body, "p")
    resolved = loans.resolve(p.project_deref())
    assert resolved == frozenset({p.project_deref()})


def test_reborrow_through_reference_reaches_concrete_place():
    # The §2.2 example: borrow a tuple, re-borrow a field of it, mutate.
    source = """
    fn f() -> u32 {
        let mut x = (0, 0);
        let y = &mut x;
        let z = &mut y.1;
        *z = 1;
        x.1
    }
    """
    body, loans = loans_for(source, "f")
    z = named_place(body, "z")
    x1 = named_place(body, "x").project_field(1)
    assert x1 in loans.resolve(z.project_deref())


def test_call_return_tied_by_lifetime_aliases_argument():
    # view() returns a reference derived from its &mut argument (the iter /
    # get_mut pattern): the destination's loans must include the argument's
    # pointee.
    source = """
    struct S { v: u32 }
    fn view(s: &mut S) -> &mut u32 { &mut s.v }
    fn f(s: &mut S) {
        let r = view(s);
        *r = 9;
    }
    """
    body, loans = loans_for(source, "f")
    r = named_place(body, "r")
    s = named_place(body, "s")
    resolved = loans.resolve(r.project_deref())
    # The returned pointer may point into the caller-owned memory behind `s`.
    assert any(place.local == s.local and place.has_deref() for place in resolved)


def test_call_without_ref_return_adds_no_loans():
    source = """
    extern fn len(v: &u32) -> u32;
    fn f(x: &u32) -> u32 { len(x) }
    """
    body, loans = loans_for(source, "f")
    # No local should have a loan set containing anything (no borrows at all).
    assert all(not targets for targets in loans.loans.values())


def test_aggregate_stores_ref_loans_per_field():
    source = """
    fn f() -> u32 {
        let mut x = 1;
        let mut y = 2;
        let pair = (&mut x, &mut y);
        *pair.0 = 10;
        x
    }
    """
    body, loans = loans_for(source, "f")
    pair0 = named_place(body, "pair").project_field(0)
    assert named_place(body, "x") in loans.resolve(pair0.project_deref())
    assert named_place(body, "y") not in loans.resolve(pair0.project_deref())


def test_borrowed_places_lists_all_targets():
    source = """
    fn f() {
        let mut a = 1;
        let mut b = 2;
        let r1 = &mut a;
        let r2 = &mut b;
        *r1 = 3;
        *r2 = 4;
    }
    """
    body, loans = loans_for(source, "f")
    borrowed = loans.borrowed_places()
    assert named_place(body, "a") in borrowed
    assert named_place(body, "b") in borrowed


def test_loan_map_export_is_frozen():
    body, loans = loans_for("fn f() { let mut x = 1; let r = &x; }", "f")
    exported = loans.as_map()
    for value in exported.values():
        assert isinstance(value, frozenset)


def test_conditional_borrow_merges_both_targets():
    source = """
    fn f(c: bool) -> u32 {
        let mut a = 1;
        let mut b = 2;
        let mut r = &mut a;
        if c {
            r = &mut b;
        }
        *r = 7;
        a + b
    }
    """
    body, loans = loans_for(source, "f")
    r = named_place(body, "r")
    resolved = loans.resolve(r.project_deref())
    assert named_place(body, "a") in resolved
    assert named_place(body, "b") in resolved
