"""Tests for the program-level FlowEngine API."""

import pytest

from repro import analyze_source
from repro.core.config import AnalysisConfig, all_conditions, condition_name
from repro.core.engine import FlowEngine, analyze_program
from repro.lang.parser import parse_program

from helpers import GET_COUNT_SOURCE, HELPER_CALLER_SOURCE


def test_analyze_source_returns_program_result():
    result = analyze_source(HELPER_CALLER_SOURCE)
    assert set(result.function_names()) == {"helper", "caller"}
    sizes = result.dependency_sizes()
    assert ("caller", "x") in sizes
    assert result.total_variables() == len(sizes)


def test_analyze_program_equivalent_to_engine():
    program = parse_program(GET_COUNT_SOURCE)
    via_helper = analyze_program(program)
    engine = FlowEngine.from_program(parse_program(GET_COUNT_SOURCE))
    via_engine = engine.analyze_local_crate()
    assert set(via_helper.function_names()) == set(via_engine.function_names())


def test_engine_memoizes_function_results():
    engine = FlowEngine.from_source(GET_COUNT_SOURCE)
    first = engine.analyze_function("get_count")
    second = engine.analyze_function("get_count")
    assert first is second


def test_engine_rejects_unknown_function():
    engine = FlowEngine.from_source(GET_COUNT_SOURCE)
    with pytest.raises(KeyError):
        engine.analyze_function("not_a_function")


def test_engine_rejects_extern_function():
    engine = FlowEngine.from_source(GET_COUNT_SOURCE)
    with pytest.raises(KeyError):
        engine.analyze_function("insert")


def test_local_function_names_excludes_dependency_crate():
    source = """
    crate deps { fn dep_fn() -> u32 { 1 } }
    crate app { fn app_fn() -> u32 { dep_fn() } }
    """
    engine = FlowEngine.from_program(parse_program(source, local_crate="app"))
    assert engine.local_function_names() == ["app_fn"]
    # analyze_all also covers dependency-crate bodies.
    all_results = engine.analyze_all()
    assert set(all_results.function_names()) == {"app_fn", "dep_fn"}


def test_call_graph_is_available_from_engine():
    engine = FlowEngine.from_source(HELPER_CALLER_SOURCE)
    assert engine.call_graph.callees("caller") == ["helper"]


def test_all_conditions_covers_grid_of_eight():
    conditions = all_conditions()
    assert len(conditions) == 8
    names = {condition_name(c) for c in conditions}
    assert "Modular" in names
    assert "Whole-program+Mut-blind+Ref-blind" in names


def test_condition_names_match_paper_labels():
    assert condition_name(AnalysisConfig()) == "Modular"
    assert condition_name(AnalysisConfig(whole_program=True)) == "Whole-program"
    assert condition_name(AnalysisConfig(mut_blind=True)) == "Mut-blind"
    assert condition_name(AnalysisConfig(ref_blind=True)) == "Ref-blind"
    assert "modular calls" in AnalysisConfig().describe()


def test_mutable_ref_paths_identifies_mut_params():
    engine = FlowEngine.from_source(GET_COUNT_SOURCE)
    paths = engine.mutable_ref_paths("insert")
    assert 0 in paths
    assert engine.mutable_ref_paths("contains_key") == {}


def test_results_are_per_configuration():
    modular = FlowEngine.from_source(HELPER_CALLER_SOURCE, config=AnalysisConfig())
    whole = FlowEngine.from_source(
        HELPER_CALLER_SOURCE, config=AnalysisConfig(whole_program=True)
    )
    sizes_modular = modular.analyze_function("caller").dependency_sizes()
    sizes_whole = whole.analyze_function("caller").dependency_sizes()
    assert sizes_modular["x"] > sizes_whole["x"]
