"""Tests for the benchmark history ledger: atomic appends, trajectories,
regression verdicts, the gate, backfill, and the `repro bench` runner."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.dataflow.vecbitset import HAVE_NUMPY
from repro.eval.bench import (
    BENCH_SUITE,
    TRACKED,
    bench_report,
    policy_for,
    record_run,
    render_bench_report,
    run_suite,
)
from repro.obs.history import (
    BenchRecord,
    FileLock,
    HistoryLedger,
    MetricPolicy,
    backfill_reports,
    config_fingerprint,
    evaluate_metric,
    flatten_numeric,
    sparkline,
)


def _record(metric, value, ts, run_id="r", config="-", unit=""):
    return BenchRecord(
        run_id=run_id, timestamp=ts, git_sha="abc123", metric=metric,
        value=value, unit=unit, config=config,
    )


# ---------------------------------------------------------------------------
# Ledger mechanics
# ---------------------------------------------------------------------------


class TestLedger:
    def test_append_read_round_trip(self, tmp_path):
        ledger = HistoryLedger(tmp_path / "history")
        n = ledger.append(
            [
                _record("m.speedup", 2.5, 1.0, unit="x"),
                _record("m.p50_ms", 12.0, 1.0, unit="ms"),
            ]
        )
        assert n == 2
        records = ledger.read()
        assert [(r.metric, r.value, r.unit) for r in records] == [
            ("m.speedup", 2.5, "x"),
            ("m.p50_ms", 12.0, "ms"),
        ]
        assert records[0].git_sha == "abc123"

    def test_corrupt_lines_are_skipped_and_counted(self, tmp_path):
        ledger = HistoryLedger(tmp_path)
        ledger.append(_record("m", 1.0, 1.0))
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write("{truncated json\n")
            handle.write('{"metric": "no-required-fields"}\n')
        ledger.append(_record("m", 2.0, 2.0))
        records, corrupt = ledger.read_with_errors()
        assert [r.value for r in records] == [1.0, 2.0]
        assert corrupt == 2

    def test_missing_file_reads_empty(self, tmp_path):
        ledger = HistoryLedger(tmp_path / "nowhere")
        assert ledger.read() == []
        assert ledger.trajectories() == {}

    def test_trajectories_sort_by_timestamp(self, tmp_path):
        ledger = HistoryLedger(tmp_path)
        ledger.append(
            [
                _record("m", 3.0, 30.0, run_id="c"),
                _record("m", 1.0, 10.0, run_id="a"),
                _record("m", 2.0, 20.0, run_id="b"),
                _record("other", 9.0, 10.0),
            ]
        )
        trajectories = ledger.trajectories()
        assert [r.value for r in trajectories["m"]] == [1.0, 2.0, 3.0]
        assert [r.value for r in trajectories["other"]] == [9.0]

    def test_concurrent_appends_interleave_whole_lines(self, tmp_path):
        """Two runners appending simultaneously must produce a ledger of
        exclusively valid lines — no interleaved partial writes."""
        ledger = HistoryLedger(tmp_path)
        per_thread, threads = 25, 4

        def runner(which):
            own = HistoryLedger(tmp_path)  # separate instance, same files
            for index in range(per_thread):
                own.append(
                    _record(f"m.{which}", float(index), float(index),
                            run_id=f"run-{which}")
                )

        pool = [threading.Thread(target=runner, args=(t,)) for t in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in pool)

        records, corrupt = ledger.read_with_errors()
        assert corrupt == 0
        assert len(records) == per_thread * threads
        # Every line parses as exactly one record and no lock file remains.
        for line in ledger.path.read_text(encoding="utf-8").splitlines():
            json.loads(line)
        assert not ledger.lock_path.exists()

    def test_file_lock_blocks_and_releases(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path):
            assert path.exists()
            with pytest.raises(TimeoutError):
                FileLock(path, timeout=0.1).acquire()
        assert not path.exists()

    def test_stale_lock_is_broken(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text("12345\n", encoding="utf-8")
        ancient = time.time() - 3600
        os.utime(path, (ancient, ancient))
        lock = FileLock(path, timeout=2.0)
        lock.acquire()  # must not time out: the stale lock is presumed dead
        lock.release()
        assert not path.exists()


# ---------------------------------------------------------------------------
# Verdicts
# ---------------------------------------------------------------------------


class TestVerdicts:
    def test_insufficient_with_fewer_than_two_points(self):
        policy = MetricPolicy("m", direction="higher", gate=True)
        verdict = evaluate_metric([_record("m", 2.0, 1.0)], policy)
        assert verdict["verdict"] == "insufficient"
        assert verdict["baseline"] is None

    def test_baseline_is_median_of_previous_window(self):
        policy = MetricPolicy("m", direction="lower", tolerance=0.10, window=3)
        records = [_record("m", v, float(i)) for i, v in enumerate([100, 10, 20, 30, 21])]
        verdict = evaluate_metric(records, policy)
        # Window of 3 before the latest: [10, 20, 30] -> median 20; the
        # outlier first point has aged out.
        assert verdict["baseline"] == 20.0
        assert verdict["latest"] == 21.0
        assert verdict["verdict"] == "ok"

    @pytest.mark.parametrize(
        "direction,values,expected",
        [
            ("higher", [2.0, 2.0, 1.0], "regressed"),   # speedup halved
            ("higher", [2.0, 2.0, 4.0], "improved"),
            ("lower", [10.0, 10.0, 20.0], "regressed"),  # latency doubled
            ("lower", [10.0, 10.0, 5.0], "improved"),
            ("lower", [10.0, 10.0, 10.5], "ok"),
        ],
    )
    def test_direction_and_tolerance(self, direction, values, expected):
        policy = MetricPolicy("m", direction=direction, tolerance=0.25)
        records = [_record("m", v, float(i)) for i, v in enumerate(values)]
        assert evaluate_metric(records, policy)["verdict"] == expected

    def test_invalid_direction_raises(self):
        with pytest.raises(ValueError):
            MetricPolicy("m", direction="sideways")

    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"
        rising = sparkline([1.0, 2.0, 3.0, 4.0])
        assert rising[0] == "▁" and rising[-1] == "█"
        assert len(sparkline(list(range(100)), width=24)) == 24


# ---------------------------------------------------------------------------
# Report + gate (the acceptance path)
# ---------------------------------------------------------------------------


class TestReportAndGate:
    def test_two_runs_build_a_trajectory_with_verdict(self, tmp_path):
        ledger = HistoryLedger(tmp_path)
        config = {"suite": ["theta_join"], "scale": 0.1}
        rid1, n1 = record_run(
            ledger, {"theta_join.speedup": 3.0}, timestamp=100.0, config=config
        )
        rid2, n2 = record_run(
            ledger, {"theta_join.speedup": 3.1}, timestamp=200.0, config=config
        )
        assert rid1 != rid2 and n1 == n2 == 1
        report = bench_report(ledger)
        (row,) = report["metrics"]
        assert row["metric"] == "theta_join.speedup"
        assert row["runs"] == 2 and row["n"] == 2
        assert row["verdict"] == "ok" and row["tracked"] and row["gate"]
        assert row["unit"] == "x"
        assert len(row["trend"]) == 2
        assert report["gate"]["ok"]
        rendered = render_bench_report(report)
        assert "theta_join.speedup" in rendered and "gate: ok" in rendered

    def test_injected_slowdown_flips_verdict_and_fails_gate(self, tmp_path):
        """The acceptance check: a synthetic 2x slowdown on a gated ratio
        metric must flip the verdict to regressed and fail the gate."""
        ledger = HistoryLedger(tmp_path)
        config = {"suite": ["fig2"], "scale": 0.1}
        for ts, speedup in ((100.0, 3.0), (200.0, 3.05), (300.0, 2.95)):
            record_run(
                ledger, {"fig2.engine_speedup": speedup}, timestamp=ts, config=config
            )
        healthy = bench_report(ledger)
        assert healthy["gate"]["ok"]

        # Injected regression: the engine got 2x slower, so the speedup halves.
        record_run(
            ledger, {"fig2.engine_speedup": 3.0 / 2.0}, timestamp=400.0, config=config
        )
        report = bench_report(ledger)
        (row,) = report["metrics"]
        assert row["verdict"] == "regressed"
        assert not report["gate"]["ok"]
        assert report["gate"]["failures"] == ["fig2.engine_speedup"]
        assert "gate: FAILED" in render_bench_report(report)

    def test_latency_regressions_report_but_never_gate(self, tmp_path):
        ledger = HistoryLedger(tmp_path)
        config = {"suite": ["focus"], "scale": 0.1}
        for ts, p50 in ((100.0, 10.0), (200.0, 10.0), (300.0, 100.0)):
            record_run(ledger, {"focus.cold_p50_ms": p50}, timestamp=ts, config=config)
        report = bench_report(ledger)
        (row,) = report["metrics"]
        assert row["verdict"] == "regressed" and not row["gate"]
        assert report["gate"]["ok"]  # absolute wall-time never gates

    def test_config_change_resets_the_comparison(self, tmp_path):
        """A scale change must not be read as a regression: only records
        sharing the latest record's config fingerprint are compared."""
        ledger = HistoryLedger(tmp_path)
        big = {"suite": ["theta_join"], "scale": 1.0}
        small = {"suite": ["theta_join"], "scale": 0.05}
        record_run(ledger, {"theta_join.speedup": 4.0}, timestamp=100.0, config=big)
        record_run(ledger, {"theta_join.speedup": 4.1}, timestamp=200.0, config=big)
        record_run(ledger, {"theta_join.speedup": 1.0}, timestamp=300.0, config=small)
        report = bench_report(ledger)
        (row,) = report["metrics"]
        assert row["runs"] == 1  # only the small-scale record is comparable
        assert row["verdict"] == "insufficient"
        assert report["gate"]["ok"]

    def test_untracked_metrics_get_the_default_policy(self):
        policy = policy_for("brand.new_metric")
        assert not policy.gate
        assert policy.metric == "brand.new_metric"
        assert set(TRACKED) <= {
            name for name in TRACKED
        }  # tracked registry is self-consistent

    def test_config_fingerprint_stability(self):
        assert config_fingerprint(None) == "-"
        assert config_fingerprint({}) == "-"
        a = config_fingerprint({"scale": 0.1, "suite": ["x"]})
        b = config_fingerprint({"suite": ["x"], "scale": 0.1})
        assert a == b and len(a) == 12
        assert config_fingerprint({"scale": 0.2, "suite": ["x"]}) != a


# ---------------------------------------------------------------------------
# Runner (end-to-end on the cheapest suite member)
# ---------------------------------------------------------------------------


class TestRunner:
    def test_run_suite_twice_yields_two_entry_trajectory(self, tmp_path):
        ledger = HistoryLedger(tmp_path)
        for ts in (100.0, 200.0):
            metrics, config = run_suite(scale=0.02, only=["theta_join"])
            expected = {
                "theta_join.speedup",
                "theta_join.object_us_per_join",
                "theta_join.bitset_us_per_join",
            }
            if HAVE_NUMPY:
                expected |= {
                    "theta_join.vector_speedup",
                    "theta_join.vector_us_per_join",
                }
            assert set(metrics) == expected
            record_run(ledger, metrics, timestamp=ts, config=config)
        report = bench_report(ledger)
        by_metric = {row["metric"]: row for row in report["metrics"]}
        assert by_metric["theta_join.speedup"]["runs"] == 2
        assert by_metric["theta_join.speedup"]["verdict"] in ("ok", "improved")
        assert by_metric["theta_join.bitset_us_per_join"]["unit"] == "us"

    def test_unknown_suite_name_raises_before_recording(self, tmp_path):
        with pytest.raises(KeyError, match="nope"):
            run_suite(scale=0.02, only=["nope"])
        assert set(BENCH_SUITE) == {"theta_join", "fig2", "focus", "load"}


# ---------------------------------------------------------------------------
# Backfill
# ---------------------------------------------------------------------------


class TestBackfill:
    def test_flatten_numeric_excludes_booleans_and_indexes_lists(self):
        flat = flatten_numeric(
            {"a": {"b": 1, "ok": True}, "list": [10, {"x": 2.5}], "name": "str"}
        )
        assert flat == {"a.b": 1.0, "list.0": 10.0, "list.1.x": 2.5}

    def test_backfill_ingests_reports_and_skips_run_meta(self, tmp_path):
        report_dir = tmp_path / "reports"
        report_dir.mkdir()
        (report_dir / "engine_speedup.json").write_text(
            json.dumps(
                {
                    "theta_join": {"speedup": 5.0},
                    "run_meta": {"duration_seconds": 1.5},
                }
            ),
            encoding="utf-8",
        )
        (report_dir / "broken.json").write_text("{not json", encoding="utf-8")
        ledger = HistoryLedger(tmp_path / "history")
        appended = backfill_reports(
            report_dir, ledger, run_id="backfill-1", timestamp=123.0
        )
        assert appended == 1
        (record,) = ledger.read()
        assert record.metric == "engine_speedup.theta_join.speedup"
        assert record.value == 5.0
        assert record.config == "backfill"
        assert record.timestamp == 123.0
