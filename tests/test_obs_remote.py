"""Tests for cross-process telemetry: trace carriers, worker envelopes,
metric folding, fan-out statistics, the trace noise filter, HELP lines,
slow-log attribution, and the `repro top` dashboard frames."""

from __future__ import annotations

import io
import json

import pytest

from repro.core.config import MODULAR
from repro.obs import (
    FanoutTelemetry,
    MetricsRegistry,
    TraceCarrier,
    filter_span_tree,
    render_span_tree,
    set_enabled,
    start_trace,
    workers_in_trace,
)
from repro.obs.dashboard import TopState, build_frame
from repro.obs.export import chrome_trace_document, render_prometheus
from repro.obs.metrics import COUNT_BUCKETS
from repro.obs.remote import (
    fold_worker_metrics,
    full_metrics_delta,
    render_fanout,
    run_instrumented,
    span_to_wire,
    wire_to_span,
)
from repro.obs.slowlog import SlowLog
from repro.obs.trace import Span
from repro.service.scheduler import (
    _init_worker,
    _render_batch,
    run_waves,
    schedule_waves,
)

SOURCE = """
fn leaf(x: u32) -> u32 { x + 1 }
fn mid(x: u32) -> u32 { leaf(x) + 2 }
fn root(x: u32) -> u32 { mid(x) + 3 }
fn lone(x: u32) -> u32 { x * 5 }
fn l2(x: u32) -> u32 { x + 9 }
fn m2(x: u32) -> u32 { l2(x) * 2 }
fn r2(x: u32) -> u32 { m2(x) + leaf(x) }
"""


@pytest.fixture(autouse=True)
def _obs_enabled():
    set_enabled(True)
    yield
    set_enabled(True)


def _engine_and_waves():
    from repro.core.engine import FlowEngine

    engine = FlowEngine.from_source(SOURCE, config=MODULAR)
    names = engine.local_function_names()
    return engine, names, schedule_waves(engine.call_graph, names)


def _fanned_out_run(max_workers=2):
    """One traced parallel run; returns (mode, trace, telemetry)."""
    _engine, _names, waves = _engine_and_waves()
    telemetry = FanoutTelemetry(max_workers=max_workers)
    with start_trace("analyze") as trace:
        mode, results, _error = run_waves(
            _render_batch,
            waves,
            max_workers=max_workers,
            parallel=True,
            initializer=_init_worker,
            initargs=(SOURCE, "main", {}),
            telemetry=telemetry,
        )
    assert [name for wave in results for (name, _, _) in wave]
    return mode, trace, telemetry


# ---------------------------------------------------------------------------
# Carrier and wire form
# ---------------------------------------------------------------------------


class TestCarrierAndWire:
    def test_carrier_round_trips_through_dict(self):
        carrier = TraceCarrier.capture(traced=True)
        clone = TraceCarrier.from_dict(carrier.to_dict())
        assert clone.trace_id == carrier.trace_id
        assert clone.enabled == carrier.enabled
        assert clone.traced == carrier.traced
        assert clone.clock_offset_ns == carrier.clock_offset_ns

    def test_capture_defaults_traced_to_ambient_span(self):
        assert TraceCarrier.capture().traced is False
        with start_trace("t"):
            assert TraceCarrier.capture().traced is True

    def test_disabled_process_captures_untraced_carrier(self):
        set_enabled(False)
        carrier = TraceCarrier.capture(traced=True)
        assert carrier.enabled is False
        assert carrier.traced is False

    def test_wire_round_trip_preserves_structure_and_shifts_clock(self):
        root = Span("chunk", {"worker": 42})
        child = Span("fixpoint")
        child.finish()
        root.children.append(child)
        root.finish()
        rebuilt = wire_to_span(span_to_wire(root, shift_ns=1000))
        assert rebuilt.name == "chunk"
        assert rebuilt.attrs == {"worker": 42}
        assert rebuilt.start_ns == root.start_ns + 1000
        assert rebuilt.end_ns == root.end_ns + 1000
        assert [c.name for c in rebuilt.children] == ["fixpoint"]
        assert rebuilt.children[0].start_ns == child.start_ns + 1000

    def test_workers_in_trace_finds_nested_worker_attrs(self):
        tree = {
            "attrs": {},
            "children": [
                {"attrs": {"worker": 12}, "children": []},
                {"attrs": {}, "children": [{"attrs": {"worker": 7}, "children": []}]},
            ],
        }
        assert workers_in_trace(tree) == ["12", "7"]
        assert workers_in_trace(None) == []
        assert workers_in_trace({"attrs": {}, "children": []}) == []


# ---------------------------------------------------------------------------
# Lossless metric deltas and the worker-labelled fold
# ---------------------------------------------------------------------------


class TestMetricFold:
    def test_full_delta_keeps_per_bucket_counts(self):
        registry = MetricsRegistry()
        hist = registry.histogram("iters", buckets=COUNT_BUCKETS, engine="bitset")
        before = registry.snapshot()
        for value in (1, 1, 3, 55):
            hist.observe(value)
        delta = full_metrics_delta(before, registry.snapshot())
        entry = delta["histograms"]['iters{engine="bitset"}']
        assert entry["count"] == 4
        assert entry["sum"] == 60
        assert sum(entry["bucket_deltas"]) == 4
        assert entry["bounds"] == [float(b) for b in COUNT_BUCKETS]
        # Non-cumulative: the two 1s land in one bucket, 3 and 55 in others.
        assert sorted(d for d in entry["bucket_deltas"] if d) == [1, 1, 2]

    def test_fold_reconciles_exactly_with_direct_observation(self):
        worker = MetricsRegistry()
        before = worker.snapshot()
        worker.counter("requests_total", method="warm").inc(3)
        whist = worker.histogram("iters", buckets=COUNT_BUCKETS)
        for value in (2, 8, 200):
            whist.observe(value)
        delta = full_metrics_delta(before, worker.snapshot())

        parent = MetricsRegistry()
        folded = fold_worker_metrics(parent, delta, "4242")
        assert folded == 2
        snap = parent.snapshot()
        assert snap["counters"]['requests_total{method="warm",worker="4242"}'] == 3
        merged = snap["histograms"]['iters{worker="4242"}']
        reference = worker.snapshot()["histograms"]["iters"]
        assert merged["count"] == reference["count"]
        assert merged["sum"] == reference["sum"]
        assert merged["buckets"] == reference["buckets"]  # bucket-exact

    def test_fold_keeps_existing_worker_label(self):
        parent = MetricsRegistry()
        fold_worker_metrics(
            parent, {"counters": {'x_total{worker="9"}': 5.0}, "histograms": {}}, "1"
        )
        assert parent.snapshot()["counters"]['x_total{worker="9"}'] == 5.0

    def test_run_instrumented_disabled_carrier_ships_no_envelope(self):
        carrier = TraceCarrier("t" * 16, enabled=False, traced=False, clock_offset_ns=0)
        envelope, results = run_instrumented(sorted, [3, 1, 2], carrier, {})
        assert envelope is None
        assert results == [1, 2, 3]


# ---------------------------------------------------------------------------
# The fanned-out run end to end
# ---------------------------------------------------------------------------


class TestFannedOutRun:
    def test_worker_spans_graft_under_their_wave(self):
        mode, trace, telemetry = _fanned_out_run()
        if mode != "parallel":
            pytest.skip(f"process pool unavailable here (mode={mode})")
        assert telemetry.grafted_spans > 0
        worker_spans = [
            s for s in trace.root.walk() if s.attrs.get("worker") is not None
        ]
        assert worker_spans
        # Every grafted subtree sits inside the root's time range (the
        # wall-clock bridge rebased it onto the parent's perf axis).
        for span_node in worker_spans:
            assert span_node.start_ns >= trace.root.start_ns - 5_000_000
            assert span_node.end_ns <= trace.root.end_ns + 5_000_000
        # And under a wave span, not dangling off the root.
        wave_children = {
            id(child)
            for s in trace.root.walk()
            if s.name == "wave"
            for child in s.children
        }
        assert any(id(s) in wave_children for s in worker_spans)

    def test_chrome_export_shows_worker_lanes(self):
        mode, trace, _telemetry = _fanned_out_run()
        if mode != "parallel":
            pytest.skip(f"process pool unavailable here (mode={mode})")
        document = chrome_trace_document(trace)
        events = document["traceEvents"]
        tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert 1 in tids and len(tids) >= 2, f"expected worker lanes, got {tids}"
        names = [e["args"]["name"] for e in events if e["ph"] == "M"]
        assert "coordinator" in names
        assert any(name.startswith("worker ") for name in names)

    def test_plain_trace_keeps_single_lane_no_metadata(self):
        with start_trace("analyze") as trace:
            pass
        events = trace.to_chrome_events()
        assert [e["ph"] for e in events] == ["X"]
        assert all(e["tid"] == 1 for e in events)

    def test_parallel_metrics_reconcile_with_serial_run(self):
        """Worker-labelled fixpoint counts must sum to the serial totals."""
        from repro.obs.metrics import parse_series

        registry = MetricsRegistry()
        telemetry = FanoutTelemetry(max_workers=2, registry=registry)
        _engine, _names, waves = _engine_and_waves()
        mode, _results, _error = run_waves(
            _render_batch,
            waves,
            max_workers=2,
            parallel=True,
            initializer=_init_worker,
            initargs=(SOURCE, "main", {}),
            telemetry=telemetry,
        )
        if mode != "parallel":
            pytest.skip(f"process pool unavailable here (mode={mode})")

        serial_registry = MetricsRegistry()
        import repro.obs.metrics as obs_metrics

        saved = obs_metrics._DEFAULT_REGISTRY
        obs_metrics._DEFAULT_REGISTRY = serial_registry
        try:
            mode2, _r2, _e2 = run_waves(
                _render_batch,
                waves,
                parallel=False,
                initializer=_init_worker,
                initargs=(SOURCE, "main", {}),
            )
        finally:
            obs_metrics._DEFAULT_REGISTRY = saved
        assert mode2 == "serial"

        def totals(snapshot, metric):
            by_series = {}
            for series, hist in snapshot["histograms"].items():
                name, labels = parse_series(series)
                if name != metric:
                    continue
                labels.pop("worker", None)
                key = tuple(sorted(labels.items()))
                entry = by_series.setdefault(key, [0, 0.0])
                entry[0] += hist["count"]
                entry[1] += hist["sum"]
            return by_series

        parallel_iters = totals(registry.snapshot(), "fixpoint_iterations")
        serial_iters = totals(serial_registry.snapshot(), "fixpoint_iterations")
        assert parallel_iters, "no worker-side fixpoint metrics folded"
        for key, (count, total) in serial_iters.items():
            assert parallel_iters[key][0] == count, (key, parallel_iters, serial_iters)
            assert parallel_iters[key][1] == pytest.approx(total)

    def test_fanout_stats_cover_waves_workers_and_stragglers(self):
        mode, _trace, telemetry = _fanned_out_run()
        stats = telemetry.to_json_dict()
        assert stats["mode"] == mode
        assert stats["waves"], "no per-wave groups recorded"
        for group in stats["waves"]:
            assert group["tasks"] > 0
            assert group["wall_seconds"] >= 0
        assert stats["workers"], "no per-worker attribution"
        stragglers = stats["stragglers"]
        assert stragglers and stragglers["chunks"] > 0
        assert stragglers["p50_ms"] <= stragglers["p99_ms"] <= stragglers["max_ms"]
        assert stats["utilization"] is None or 0 <= stats["utilization"] <= 1

    def test_serial_mode_still_reports_utilization(self):
        telemetry = FanoutTelemetry(max_workers=1)
        _engine, _names, waves = _engine_and_waves()
        mode, _results, _error = run_waves(
            _render_batch,
            waves,
            parallel=False,
            initializer=_init_worker,
            initargs=(SOURCE, "main", {}),
            telemetry=telemetry,
        )
        assert mode == "serial"
        stats = telemetry.to_json_dict()
        assert stats["mode"] == "serial"
        assert stats["waves"] and stats["workers"]
        assert all(worker.startswith("local:") for worker in stats["workers"])

    def test_render_fanout_is_human_readable(self):
        _mode, _trace, telemetry = _fanned_out_run()
        lines = render_fanout(telemetry.to_json_dict())
        assert lines and lines[0].startswith("fan-out: mode ")
        assert any(line.strip().startswith("worker ") for line in lines)
        assert render_fanout(None) == []


# ---------------------------------------------------------------------------
# Trace noise filter
# ---------------------------------------------------------------------------


class TestFilterSpanTree:
    def _tree(self):
        with start_trace("root") as trace:
            from repro.obs import span

            with span("big"):
                with span("tiny"):
                    pass
            with span("small"):
                pass
        tree = trace.to_dict()["root"]
        # Stamp deterministic self times: structure is what matters here.
        tree["self_ms"] = 10.0
        big, small = tree["children"]
        big["self_ms"] = 5.0
        small["self_ms"] = 0.001
        big["children"][0]["self_ms"] = 0.002
        return tree

    def test_min_self_ms_drops_insignificant_leaves(self):
        tree = self._tree()
        pruned, hidden = filter_span_tree(tree, min_self_ms=1.0)
        assert hidden == 2
        assert [c["name"] for c in pruned["children"]] == ["big"]
        assert pruned["children"][0]["children"] == []

    def test_structure_survives_when_descendant_is_significant(self):
        tree = self._tree()
        tree["children"][0]["self_ms"] = 0.001  # "big" now insignificant...
        tree["children"][0]["children"][0]["self_ms"] = 3.0  # ...but "tiny" is not
        pruned, hidden = filter_span_tree(tree, min_self_ms=1.0)
        assert hidden == 1  # only "small" hidden
        assert [c["name"] for c in pruned["children"]] == ["big"]
        assert [c["name"] for c in pruned["children"][0]["children"]] == ["tiny"]

    def test_max_depth_counts_whole_dropped_subtrees(self):
        tree = self._tree()
        pruned, hidden = filter_span_tree(tree, max_depth=1)
        assert hidden == 1  # "tiny" below depth 1
        assert [c["name"] for c in pruned["children"]] == ["big", "small"]
        pruned0, hidden0 = filter_span_tree(tree, max_depth=0)
        assert pruned0["children"] == [] and hidden0 == 3

    def test_root_always_survives_and_original_untouched(self):
        tree = self._tree()
        pruned, _ = filter_span_tree(tree, min_self_ms=1e9)
        assert pruned["name"] == "root" and pruned["children"] == []
        assert len(tree["children"]) == 2  # input not mutated
        assert render_span_tree(pruned).startswith("root")


# ---------------------------------------------------------------------------
# Prometheus HELP lines
# ---------------------------------------------------------------------------


class TestPrometheusHelp:
    def test_every_family_gets_one_help_line_before_type(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", method="analyze").inc()
        registry.counter("made_up_total").inc()
        registry.histogram("request_seconds", method="analyze").observe(0.01)
        lines = render_prometheus(registry.snapshot()).splitlines()
        for family in ("repro_requests_total", "repro_made_up_total", "repro_request_seconds"):
            helps = [l for l in lines if l.startswith(f"# HELP {family} ")]
            assert len(helps) == 1, f"{family}: {helps}"
            assert lines[lines.index(helps[0]) + 1].startswith(f"# TYPE {family} ")
        # Registered text for known families, generic fallback otherwise.
        assert any(
            l.startswith("# HELP repro_requests_total Protocol requests")
            for l in lines
        )
        assert "# HELP repro_made_up_total repro metric made_up_total." in lines

    def test_help_text_is_escaped(self):
        from repro.obs.export import register_help

        registry = MetricsRegistry()
        registry.counter("weird_total").inc()
        register_help("weird_total", "line one\nline two \\ done")
        try:
            text = render_prometheus(registry.snapshot())
        finally:
            from repro.obs.export import _HELP_TEXTS

            _HELP_TEXTS.pop("weird_total", None)
        assert "# HELP repro_weird_total line one\\nline two \\\\ done\n" in text

    def test_exposition_still_parses_round_trip(self):
        """The quote-aware parser reads label values back despite HELP lines."""
        from repro.obs.metrics import parse_series

        registry = MetricsRegistry()
        registry.counter("cache_get_total", kind='tricky"name', tier="memory").inc(2)
        text = render_prometheus(registry.snapshot())
        series_lines = [
            l for l in text.splitlines() if l.startswith("repro_cache_get_total{")
        ]
        assert len(series_lines) == 1
        series = series_lines[0].rsplit(" ", 1)[0]
        name, labels = parse_series(series[len("repro_"):])
        assert name == "cache_get_total"
        assert labels == {"kind": 'tricky"name', "tier": "memory"}


# ---------------------------------------------------------------------------
# Slow-log worker attribution
# ---------------------------------------------------------------------------


class TestSlowLogAttribution:
    def test_entry_carries_workers_and_trace_path(self):
        log = SlowLog(threshold_ms=1.0)
        retained = log.observe(
            "warm",
            25.0,
            trace_id="a" * 16,
            trace={"name": "warm", "attrs": {}, "children": []},
            workers=["123", "456"],
            trace_path="/tmp/traces/trace-aaaa.json",
        )
        assert retained
        entry = log.entries()[0]
        assert entry["workers"] == ["123", "456"]
        assert entry["trace_path"] == "/tmp/traces/trace-aaaa.json"

    def test_attribution_fields_omitted_when_absent(self):
        log = SlowLog(threshold_ms=1.0)
        log.observe("analyze", 25.0, trace_id="b" * 16)
        entry = log.entries()[0]
        assert "workers" not in entry
        assert "trace_path" not in entry


# ---------------------------------------------------------------------------
# The `repro top` dashboard
# ---------------------------------------------------------------------------


class TestDashboard:
    METRICS = {
        "counters": {
            'cache_get_total{kind="record",tier="memory"}': 6.0,
            'cache_get_total{kind="record",tier="miss"}': 2.0,
            'fanout_chunks_total{worker="111"}': 3.0,
            'fanout_chunks_total{worker="222"}': 1.0,
        },
        "gauges": {"server_inflight": 2.0},
        "histograms": {
            'fanout_busy_seconds{worker="111"}': {"count": 3, "sum": 0.75},
            'fanout_busy_seconds{worker="222"}': {"count": 1, "sum": 0.25},
        },
    }
    HEALTH = {
        "uptime_seconds": 3723.0,
        "requests_total": 100,
        "error_rate": 0.02,
        "inflight": 1,
        "open_connections": 4,
        "methods": {
            "analyze": {"count": 80, "errors": 2, "p50_ms": 3.0, "p95_ms": 9.0, "p99_ms": 20.0},
        },
    }
    SLOWLOG = {
        "threshold_ms": 15.0,
        "entries": [
            {
                "trace_id": "c" * 16,
                "method": "warm",
                "status": "ok",
                "duration_ms": 120.0,
                "workers": ["111", "222"],
            }
        ],
    }

    def test_frame_covers_header_methods_cache_workers_slowlog(self):
        frame = build_frame(self.METRICS, self.HEALTH, self.SLOWLOG)
        text = "\n".join(frame)
        assert "up 1h02m" in text and "100 req" in text and "2.00% err" in text
        assert "inflight 1" in text and "conns 4" in text
        assert "analyze" in text and "9.0ms" in text
        assert "record" in text and "75.0% hit" in text
        assert "worker 111" in text and "75.0%" in text
        assert "worker 222" in text and "25.0%" in text
        assert "workers=111,222" in text
        assert ("c" * 16) in text

    def test_sparkline_trend_appears_after_repeat_frames(self):
        state = TopState()
        build_frame(self.METRICS, self.HEALTH, None, state=state)
        health2 = json.loads(json.dumps(self.HEALTH))
        health2["methods"]["analyze"]["p95_ms"] = 42.0
        frame = build_frame(self.METRICS, health2, None, state=state)
        from repro.obs.history import SPARK_GLYPHS

        line = next(l for l in frame if l.strip().startswith("analyze"))
        assert any(glyph in line for glyph in SPARK_GLYPHS)

    def test_frame_degrades_without_health_or_slowlog(self):
        frame = build_frame(self.METRICS, None, None)
        text = "\n".join(frame)
        assert text.startswith("repro top")
        assert "inflight 2" in text  # falls back to the gauge

    def test_cli_top_renders_frames_against_live_server(self):
        """End to end: a real socket server, two dashboard frames."""
        from repro.cli import main
        from repro.service.server import ThreadedAnalysisServer

        with ThreadedAnalysisServer(port=0, workers=2) as server:
            out = io.StringIO()
            rc = main(
                [
                    "top",
                    "--port", str(server.address[1]),
                    "--interval", "0.01",
                    "--frames", "2",
                    "--no-clear",
                ],
                out=out,
            )
            text = out.getvalue()
        assert rc == 0
        assert text.count("repro top") == 2
        assert "uptime" not in text  # rendered compactly, not raw JSON


# ---------------------------------------------------------------------------
# The analyze CLI round trip
# ---------------------------------------------------------------------------


class TestAnalyzeTraceCli:
    def test_traced_workers_analyze_prints_tree_and_fanout(self, tmp_path):
        from repro.cli import main

        source_path = tmp_path / "prog.mr"
        source_path.write_text(SOURCE)
        chrome_path = tmp_path / "trace.json"
        out = io.StringIO()
        rc = main(
            [
                "analyze", str(source_path),
                "--workers", "2",
                "--trace",
                "--chrome", str(chrome_path),
            ],
            out=out,
        )
        text = out.getvalue()
        assert rc == 0
        assert "// scheduled 7 function(s)" in text
        assert "// trace " in text
        assert "fan-out: mode " in text
        assert chrome_path.exists()
        if "mode: parallel" in text:
            document = json.loads(chrome_path.read_text())
            tids = {e["tid"] for e in document["traceEvents"] if e["ph"] == "X"}
            assert len(tids) >= 2

    def test_untraced_analyze_output_has_no_trace_trailer(self, tmp_path):
        from repro.cli import main

        source_path = tmp_path / "prog.mr"
        source_path.write_text(SOURCE)
        out = io.StringIO()
        rc = main(["analyze", str(source_path), "--workers", "2"], out=out)
        assert rc == 0
        assert "// trace" not in out.getvalue()
        assert "fan-out" not in out.getvalue()

    def test_serial_trace_flag_works_without_workers(self, tmp_path):
        from repro.cli import main

        source_path = tmp_path / "prog.mr"
        source_path.write_text(SOURCE)
        out = io.StringIO()
        rc = main(["analyze", str(source_path), "--trace"], out=out)
        assert rc == 0
        assert "// trace " in out.getvalue()

    def test_trace_cli_noise_filter_reports_hidden_spans(self, tmp_path):
        from repro.cli import main

        source_path = tmp_path / "prog.mr"
        source_path.write_text(SOURCE)
        out = io.StringIO()
        rc = main(
            ["trace", str(source_path), "--min-self-ms", "99999", "--depth", "1"],
            out=out,
        )
        text = out.getvalue()
        assert rc == 0
        assert "hidden by --min-self-ms/--depth" in text
        # The root line always survives the filter.
        assert "analyze" in text
