"""Tests for the focus engine: resolution, tables, rendering, server, CLI.

Includes the focus subsystem's property tests:

* a backward slice always contains the seed's defining span,
* the focus-table entry for a variable equals the union of its per-query
  slices (both directions),
* warm (cache-served) focus results are byte-equal to cold ones.
"""

from __future__ import annotations

import io
import json

import pytest

from helpers import GET_COUNT_SOURCE, HELPER_CALLER_SOURCE, analyze, lowered_from

from repro.apps.slicer import ProgramSlicer, forward_slice_locations
from repro.cli import main
from repro.core.config import MODULAR, WHOLE_PROGRAM
from repro.errors import QueryError, Span
from repro.focus.render import render_focus_markers, render_focus_response
from repro.focus.resolve import place_expr_to_mir, resolve_cursor
from repro.focus.server import FocusServer, serve_jsonrpc, span_to_range
from repro.focus.spans import (
    lines_of_spans,
    location_span,
    normalize_spans,
    spans_of_locations,
)
from repro.focus.table import FocusTable
from repro.mir.validate import span_problems
from repro.service.protocol import AnalysisService
from repro.service.session import AnalysisSession


COMPUTE_SOURCE = """\
fn compute(a: u32, b: u32) -> u32 {
    let x = a + 1;
    let y = b * 2;
    let z = x + y;
    z
}
"""

STRUCT_SOURCE = """\
struct Point { x: u32, y: u32 }

fn shift(p: &mut Point, dx: u32) -> u32 {
    p.x = p.x + dx;
    p.y
}
"""


def find_pos(source: str, needle: str, occurrence: int = 0):
    """(line, col) of the ``occurrence``-th ``needle`` in ``source``, 1-based."""
    count = 0
    for line_no, text in enumerate(source.splitlines(), start=1):
        col = -1
        while True:
            col = text.find(needle, col + 1)
            if col < 0:
                break
            if count == occurrence:
                return line_no, col + 1
            count += 1
    raise AssertionError(f"needle {needle!r}#{occurrence} not found")


# ---------------------------------------------------------------------------
# Span utilities
# ---------------------------------------------------------------------------


class TestSpanUtilities:
    def test_contains_is_half_open(self):
        span = Span(2, 5, 2, 8)
        assert span.contains(2, 5)
        assert span.contains(2, 7)
        assert not span.contains(2, 8)
        assert not span.contains(1, 6)

    def test_dummy_span_contains_nothing(self):
        assert not Span().contains(1, 1)

    def test_contains_span_and_tightness(self):
        outer = Span(1, 1, 3, 10)
        inner = Span(2, 2, 2, 5)
        assert outer.contains_span(inner)
        assert not inner.contains_span(outer)
        assert inner.tightness() < outer.tightness()

    def test_normalize_merges_overlaps_and_drops_dummies(self):
        spans = [Span(1, 1, 1, 5), Span(1, 4, 1, 9), Span(), Span(3, 1, 3, 2)]
        assert normalize_spans(spans) == (Span(1, 1, 1, 9), Span(3, 1, 3, 2))

    def test_normalization_is_canonical(self):
        a = [Span(1, 1, 1, 5), Span(2, 1, 2, 3)]
        assert normalize_spans(a) == normalize_spans(list(reversed(a)))

    def test_span_tuple_round_trip(self):
        span = Span(1, 2, 3, 4)
        assert Span.from_tuple(span.to_tuple()) == span


# ---------------------------------------------------------------------------
# Span fidelity of the lowering (satellite: DUMMY_SPAN audit)
# ---------------------------------------------------------------------------


class TestSpanFidelity:
    @pytest.mark.parametrize(
        "source", [COMPUTE_SOURCE, STRUCT_SOURCE, GET_COUNT_SOURCE, HELPER_CALLER_SOURCE]
    )
    def test_lowered_bodies_are_span_clean(self, source):
        _, lowered = lowered_from(source)
        for body in lowered.bodies.values():
            assert span_problems(body) == []

    def test_terminators_carry_spans(self):
        _, lowered = lowered_from(GET_COUNT_SOURCE)
        body = lowered.body("get_count")
        for block in body.blocks:
            assert not block.terminator.span.is_dummy()

    def test_every_location_maps_to_a_span(self):
        _, lowered = lowered_from(COMPUTE_SOURCE)
        body = lowered.body("compute")
        for location in body.locations():
            assert not location_span(body, location).is_dummy()

    def test_composite_expression_spans_cover_operands(self):
        from repro.lang.parser import parse_expr

        expr = parse_expr("alpha + beta * gamma")
        assert expr.span.start_col == 1
        assert expr.span.end_col == 1 + len("alpha + beta * gamma")


# ---------------------------------------------------------------------------
# Cursor resolution
# ---------------------------------------------------------------------------


class TestResolve:
    def test_cursor_on_variable_use(self):
        checked, lowered = lowered_from(COMPUTE_SOURCE)
        line, col = find_pos(COMPUTE_SOURCE, "x + y")
        target = resolve_cursor(checked, lowered, line, col)
        assert target.fn_name == "compute"
        assert target.label == "x"

    def test_cursor_on_let_binding_name(self):
        checked, lowered = lowered_from(COMPUTE_SOURCE)
        line, col = find_pos(COMPUTE_SOURCE, "let y")
        target = resolve_cursor(checked, lowered, line, col + 4)
        assert target.label == "y"
        assert not target.defining_span.is_dummy()

    def test_cursor_on_parameter(self):
        checked, lowered = lowered_from(COMPUTE_SOURCE)
        line, col = find_pos(COMPUTE_SOURCE, "a: u32")
        target = resolve_cursor(checked, lowered, line, col)
        assert target.label == "a"

    def test_cursor_on_field_access_resolves_projection(self):
        checked, lowered = lowered_from(STRUCT_SOURCE)
        # Cursor on the `x` of the *read* `p.x + dx`.
        line, col = find_pos(STRUCT_SOURCE, "p.x", 1)
        target = resolve_cursor(checked, lowered, line, col + 2)
        assert target.fn_name == "shift"
        # Field access through &mut inserts the auto-deref the lowering uses.
        assert target.place.projection != ()
        assert target.label == "(*p).0"

    def test_position_outside_any_function_is_typed_error(self):
        checked, lowered = lowered_from(COMPUTE_SOURCE)
        with pytest.raises(QueryError) as excinfo:
            resolve_cursor(checked, lowered, 99, 1)
        assert excinfo.value.code == QueryError.POSITION_OUT_OF_RANGE

    def test_position_on_no_place_is_typed_error(self):
        checked, lowered = lowered_from(COMPUTE_SOURCE)
        line, col = find_pos(COMPUTE_SOURCE, "fn compute")
        with pytest.raises(QueryError) as excinfo:
            resolve_cursor(checked, lowered, line, col)
        assert excinfo.value.code == QueryError.NO_PLACE_AT_POSITION

    def test_place_expr_to_mir_unknown_variable(self):
        from repro.lang import ast

        _, lowered = lowered_from(COMPUTE_SOURCE)
        body = lowered.body("compute")
        assert place_expr_to_mir(ast.Var(name="nope"), body) is None


# ---------------------------------------------------------------------------
# Focus tables (property tests)
# ---------------------------------------------------------------------------


def _named_variables(body):
    return [local.name for local in body.user_locals() if local.name is not None]


class TestFocusTableProperties:
    @pytest.mark.parametrize(
        "source,fn_name",
        [
            (COMPUTE_SOURCE, "compute"),
            (STRUCT_SOURCE, "shift"),
            (GET_COUNT_SOURCE, "get_count"),
            (HELPER_CALLER_SOURCE, "caller"),
        ],
    )
    def test_backward_slice_contains_defining_span(self, source, fn_name):
        """Property (a): a let-bound variable's backward slice covers the
        span where the variable was defined."""
        result = analyze(source, fn_name)
        table = FocusTable.build(result)
        for variable in _named_variables(result.body):
            local = result.body.local_by_name(variable)
            if local.is_arg:
                continue  # parameters have no defining statement
            entry = table.entry_for_variable(variable)
            assert any(
                span.contains_span(entry.defining_span)
                for span in entry.backward_spans
            ), f"backward slice of {variable!r} misses its definition"

    @pytest.mark.parametrize("config", [MODULAR, WHOLE_PROGRAM])
    def test_table_equals_per_query_slices(self, config):
        """Property (b): the all-places tabulation answers exactly what the
        per-query slicer computes, variable by variable."""
        for source, fn_name in (
            (COMPUTE_SOURCE, "compute"),
            (STRUCT_SOURCE, "shift"),
            (HELPER_CALLER_SOURCE, "caller"),
        ):
            result = analyze(source, fn_name, config)
            table = FocusTable.build(result)
            for variable in _named_variables(result.body):
                entry = table.entry_for_variable(variable)
                assert frozenset(entry.backward) == result.backward_slice_of_variable(
                    variable
                )
                assert frozenset(entry.forward) == forward_slice_locations(
                    result, variable
                )

    def test_warm_focus_results_byte_equal_to_cold(self):
        """Property (c): a table served from cache yields the same bytes."""
        session = AnalysisSession()
        session.open_unit("main", COMPUTE_SOURCE)
        line, col = find_pos(COMPUTE_SOURCE, "x + y")

        def canonical(response: dict) -> str:
            response = dict(response)
            response.pop("stats", None)  # counters differ between passes
            response.pop("cache", None)
            return json.dumps(response, sort_keys=True)

        cold = session.focus(line=line, col=col)
        warm = session.focus(line=line, col=col)
        assert cold["cache"] == "miss"
        assert warm["cache"] == "hit"
        assert canonical(cold) == canonical(warm)

    def test_table_json_round_trip(self):
        result = analyze(STRUCT_SOURCE, "shift")
        table = FocusTable.build(result, fingerprint="fp", condition="Modular")
        clone = FocusTable.from_json_dict(table.to_json_dict())
        assert clone.to_json_dict() == table.to_json_dict()
        assert clone.labels() == table.labels()

    def test_spans_of_locations_matches_entry_spans(self):
        result = analyze(COMPUTE_SOURCE, "compute")
        table = FocusTable.build(result)
        entry = table.entry_for_variable("z")
        assert spans_of_locations(result.body, entry.backward) == entry.backward_spans

    def test_unknown_variable_is_typed_error(self):
        result = analyze(COMPUTE_SOURCE, "compute")
        table = FocusTable.build(result)
        with pytest.raises(QueryError) as excinfo:
            table.entry_for_variable("nope")
        assert excinfo.value.code == QueryError.UNKNOWN_VARIABLE


# ---------------------------------------------------------------------------
# Session-level focus queries
# ---------------------------------------------------------------------------


class TestSessionFocus:
    def test_cursor_and_name_queries_agree(self):
        session = AnalysisSession()
        session.open_unit("main", COMPUTE_SOURCE)
        line, col = find_pos(COMPUTE_SOURCE, "x + y")
        by_cursor = session.focus(line=line, col=col)
        by_name = session.focus(function="compute", variable="x")
        assert by_cursor["target"] == by_name["target"] == "x"
        assert by_cursor["backward"] == by_name["backward"]
        assert by_cursor["forward"] == by_name["forward"]

    def test_direction_filtering(self):
        session = AnalysisSession()
        session.open_unit("main", COMPUTE_SOURCE)
        bwd = session.focus(function="compute", variable="z", direction="backward")
        assert "backward" in bwd and "forward" not in bwd

    def test_update_unit_invalidates_focus_tables(self):
        """The acceptance-criterion scenario: warm focus, edit, re-focus."""
        session = AnalysisSession()
        session.open_unit("main", COMPUTE_SOURCE)
        line, col = find_pos(COMPUTE_SOURCE, "x + y")
        cold = session.focus(line=line, col=col)
        assert session.focus(line=line, col=col)["cache"] == "hit"

        # An edit that changes x's dependencies: x now also reads b.
        edited = COMPUTE_SOURCE.replace("let x = a + 1;", "let x = a + b + 1;")
        session.update_unit("main", edited)
        after = session.focus(line=line, col=col)
        assert after["cache"] == "miss"  # table was invalidated, not reused
        assert after["backward"] != cold["backward"]
        # And the new table is served warm again afterwards.
        assert session.focus(line=line, col=col)["cache"] == "hit"

    def test_focus_unknown_function_typed_error(self):
        session = AnalysisSession()
        session.open_unit("main", COMPUTE_SOURCE)
        with pytest.raises(QueryError) as excinfo:
            session.focus(function="nope", variable="x")
        assert excinfo.value.code == QueryError.UNKNOWN_FUNCTION

    def test_focus_without_workspace_typed_error(self):
        with pytest.raises(QueryError) as excinfo:
            AnalysisSession().focus(line=1, col=1)
        assert excinfo.value.code == QueryError.NO_WORKSPACE

    def test_focus_needs_cursor_or_name(self):
        session = AnalysisSession()
        session.open_unit("main", COMPUTE_SOURCE)
        with pytest.raises(QueryError) as excinfo:
            session.focus()
        assert excinfo.value.code == QueryError.INVALID_PARAMS

    def test_shadowed_binding_name_lookup_matches_local_by_name(self):
        """Name-based queries answer for the first binding (what
        ``local_by_name`` resolves); later shadows stay cursor-addressable."""
        source = "fn f(a: u32) -> u32 {\n    let x = a + 1;\n    let x = x * 2;\n    x\n}\n"
        result = analyze(source, "f")
        table = FocusTable.build(result)
        first_local = result.body.local_by_name("x")
        entry = table.entry_for_variable("x")
        assert entry.place.local == first_local.index
        assert frozenset(entry.backward) == result.backward_slice_of_variable("x")
        # Both bindings have entries: cursor on the shadowing `x` resolves.
        session = AnalysisSession()
        session.open_unit("main", source)
        shadow = session.focus(line=3, col=9)  # the second `let x`
        assert shadow["target"] == "x"

    def test_multi_unit_cursor_is_unit_relative(self):
        """With several open documents, a cursor + unit addresses that
        document's coordinates, and response spans come back unit-relative."""
        other = "fn alpha(q: u32) -> u32 {\n    let w = q + 7;\n    w\n}\n"
        session = AnalysisSession()
        session.open_unit("lib.mr", other)
        session.open_unit("main.mr", COMPUTE_SOURCE)
        line, col = find_pos(COMPUTE_SOURCE, "x + y")

        scoped = session.focus(line=line, col=col, unit="main.mr")
        assert scoped["function"] == "compute"
        assert scoped["seed_span"][0] == line
        assert all(span[0] >= 1 for span in scoped["backward"]["spans"])

        # The same bare position without a unit hits lib.mr's coordinates.
        unscoped = session.focus(line=2, col=13)
        assert unscoped["function"] == "alpha"

        # Reference: a single-unit session must agree with the scoped query.
        solo = AnalysisSession()
        solo.open_unit("main", COMPUTE_SOURCE)
        reference = solo.focus(line=line, col=col)
        assert scoped["backward"] == reference["backward"]
        assert scoped["forward"] == reference["forward"]

    def test_position_shift_edit_serves_current_spans(self):
        """An edit that shifts a function without changing its MIR must not
        serve stale source spans from the cached focus table."""
        session = AnalysisSession()
        session.open_unit("main", COMPUTE_SOURCE)
        line, col = find_pos(COMPUTE_SOURCE, "x + y")
        before = session.focus(line=line, col=col)

        shifted_source = "// a comment shifting everything down\n" + COMPUTE_SOURCE
        session.update_unit("main", shifted_source)
        after = session.focus(line=line + 1, col=col)
        # Same MIR -> the cached table's locations are reused...
        assert after["cache"] == "hit"
        # ...but every span tracks the text's new position.
        shift = lambda spans: [[s[0] + 1, s[1], s[2] + 1, s[3]] for s in spans]
        assert after["backward"]["spans"] == shift(before["backward"]["spans"])
        assert after["forward"]["spans"] == shift(before["forward"]["spans"])
        assert after["seed_span"][0] == before["seed_span"][0] + 1

        # slice spans and lines must agree with each other post-shift.
        response = session.slice("compute", "z")
        span_lines = {l for s in response["spans"] for l in range(s[0], s[2] + 1)}
        assert set(response["lines"]) <= span_lines

    def test_cursor_on_binding_inside_return_expression(self):
        source = (
            "fn f(a: u32, c: bool) -> u32 {\n"
            "    return if c { let q = a + 1; q } else { a };\n"
            "}\n"
        )
        checked, lowered = lowered_from(source)
        line, col = find_pos(source, "let q")
        target = resolve_cursor(checked, lowered, line, col + 4)
        assert target.label == "q"

    def test_focus_unknown_unit_typed_error(self):
        session = AnalysisSession()
        session.open_unit("main", COMPUTE_SOURCE)
        with pytest.raises(QueryError) as excinfo:
            session.focus(line=1, col=1, unit="nope.mr")
        assert excinfo.value.code == QueryError.UNKNOWN_UNIT

    def test_slice_reports_spans(self):
        session = AnalysisSession()
        session.open_unit("main", COMPUTE_SOURCE)
        response = session.slice("compute", "z")
        assert response["spans"]
        assert response["lines"]


# ---------------------------------------------------------------------------
# Typed protocol errors (satellite: structured errors)
# ---------------------------------------------------------------------------


class TestProtocolErrorCodes:
    def make_service(self) -> AnalysisService:
        session = AnalysisSession()
        session.open_unit("main", COMPUTE_SOURCE)
        return AnalysisService(session)

    def test_unknown_function_code(self):
        response = self.make_service().handle(
            {"id": 1, "method": "slice", "params": {"function": "nope", "variable": "x"}}
        )
        assert not response["ok"]
        assert response["error_code"] == "unknown_function"

    def test_unknown_variable_code(self):
        response = self.make_service().handle(
            {"id": 1, "method": "slice",
             "params": {"function": "compute", "variable": "nope"}}
        )
        assert response["error_code"] == "unknown_variable"

    def test_position_out_of_range_code(self):
        response = self.make_service().handle(
            {"id": 1, "method": "focus", "params": {"line": 99, "col": 1}}
        )
        assert response["error_code"] == "position_out_of_range"

    def test_protocol_error_code(self):
        response = self.make_service().handle({"id": 1, "method": "bogus"})
        assert response["error_code"] == "protocol_error"

    def test_no_workspace_code(self):
        response = AnalysisService().handle({"id": 1, "method": "analyze", "params": {}})
        assert response["error_code"] == "no_workspace"

    def test_focus_request_round_trip(self):
        line, col = find_pos(COMPUTE_SOURCE, "x + y")
        response = self.make_service().handle(
            {"id": 7, "method": "focus", "params": {"line": line, "col": col}}
        )
        assert response["ok"]
        assert response["result"]["target"] == "x"
        assert response["result"]["forward"]["spans"]


# ---------------------------------------------------------------------------
# LSP-lite JSON-RPC server
# ---------------------------------------------------------------------------


class TestFocusServer:
    def run_messages(self, messages):
        in_stream = io.StringIO("\n".join(json.dumps(m) for m in messages) + "\n")
        out_stream = io.StringIO()
        assert serve_jsonrpc(in_stream, out_stream) == 0
        return [json.loads(line) for line in out_stream.getvalue().splitlines()]

    def test_span_to_range_is_zero_based(self):
        assert span_to_range(Span(2, 5, 2, 8)) == {
            "start": {"line": 1, "character": 4},
            "end": {"line": 1, "character": 7},
        }

    def test_full_editor_session(self):
        line, col = find_pos(COMPUTE_SOURCE, "x + y")
        responses = self.run_messages([
            {"jsonrpc": "2.0", "id": 1, "method": "initialize", "params": {}},
            {"jsonrpc": "2.0", "method": "textDocument/didOpen",
             "params": {"textDocument": {"uri": "file:///m.mr", "text": COMPUTE_SOURCE}}},
            {"jsonrpc": "2.0", "id": 2, "method": "repro/focus",
             "params": {"position": {"line": line - 1, "character": col - 1}}},
            {"jsonrpc": "2.0", "id": 3, "method": "shutdown"},
            {"jsonrpc": "2.0", "method": "exit"},
        ])
        # Notifications get no responses: initialize, focus, shutdown only.
        assert [r["id"] for r in responses] == [1, 2, 3]
        assert responses[0]["result"]["capabilities"]["reproFocusProvider"]
        focus = responses[1]["result"]
        assert focus["target"] == "x"
        assert focus["seedRange"]["start"]["line"] == line - 1
        assert focus["forward"]

    def test_edit_through_did_change_invalidates(self):
        line, col = find_pos(COMPUTE_SOURCE, "x + y")
        uri = "file:///m.mr"
        server = FocusServer()
        server.handle({"jsonrpc": "2.0", "method": "textDocument/didOpen",
                       "params": {"textDocument": {"uri": uri, "text": COMPUTE_SOURCE}}})
        first = server.handle({"jsonrpc": "2.0", "id": 1, "method": "repro/focus",
                               "params": {"position": {"line": line - 1, "character": col - 1}}})
        assert first["result"]["cache"] == "miss"
        edited = COMPUTE_SOURCE.replace("let x = a + 1;", "let x = a + b + 1;")
        server.handle({"jsonrpc": "2.0", "method": "textDocument/didChange",
                       "params": {"textDocument": {"uri": uri},
                                  "contentChanges": [{"text": edited}]}})
        second = server.handle({"jsonrpc": "2.0", "id": 2, "method": "repro/focus",
                                "params": {"position": {"line": line - 1, "character": col - 1}}})
        assert second["result"]["cache"] == "miss"
        assert second["result"]["backward"] != first["result"]["backward"]

    def test_typed_error_payloads(self):
        responses = self.run_messages([
            {"jsonrpc": "2.0", "id": 1, "method": "repro/focus",
             "params": {"position": {"line": 0, "character": 0}}},
            {"jsonrpc": "2.0", "id": 2, "method": "nope"},
            {"jsonrpc": "2.0", "method": "exit"},
        ])
        assert responses[0]["error"]["data"]["code"] == "no_workspace"
        assert responses[1]["error"]["code"] == -32601

    def test_focus_scoped_to_addressed_document(self):
        """Two open documents: repro/focus must resolve within the document
        named by textDocument.uri, in that document's coordinates."""
        other = "fn alpha(q: u32) -> u32 {\n    let w = q + 7;\n    w\n}\n"
        line, col = find_pos(COMPUTE_SOURCE, "x + y")
        server = FocusServer()
        for uri, text in (("file:///lib.mr", other), ("file:///main.mr", COMPUTE_SOURCE)):
            server.handle({"jsonrpc": "2.0", "method": "textDocument/didOpen",
                           "params": {"textDocument": {"uri": uri, "text": text}}})
        response = server.handle({
            "jsonrpc": "2.0", "id": 1, "method": "repro/focus",
            "params": {"textDocument": {"uri": "file:///main.mr"},
                       "position": {"line": line - 1, "character": col - 1}},
        })
        result = response["result"]
        assert result["function"] == "compute"
        assert result["seedRange"]["start"]["line"] == line - 1

    def test_unknown_notification_is_ignored(self):
        responses = self.run_messages([
            {"jsonrpc": "2.0", "method": "window/didBlink"},
            {"jsonrpc": "2.0", "id": 1, "method": "repro/stats"},
            {"jsonrpc": "2.0", "method": "exit"},
        ])
        assert len(responses) == 1


# ---------------------------------------------------------------------------
# Rendering and CLI
# ---------------------------------------------------------------------------


class TestRenderAndCli:
    def test_marker_render_places_seed_and_directions(self):
        seed = Span(2, 5, 2, 6)
        rendered = render_focus_markers(
            "ab\nxyz w\n", seed,
            backward=(Span(1, 1, 1, 3),), forward=(Span(2, 1, 2, 4),),
        )
        lines = rendered.splitlines()
        assert lines[0].endswith("ab")
        assert "<<" in lines[1]
        assert ">>>" in lines[2 + 1]
        assert "^" in lines[3]

    def test_render_focus_response_headers(self):
        session = AnalysisSession()
        session.open_unit("main", COMPUTE_SOURCE)
        response = session.focus(function="compute", variable="z")
        text = render_focus_response(COMPUTE_SOURCE, response)
        assert text.startswith("// focus on `z` in compute")
        assert "^" in text

    def test_cli_focus_by_cursor(self, tmp_path, capsys):
        path = tmp_path / "m.mr"
        path.write_text(COMPUTE_SOURCE, encoding="utf-8")
        line, col = find_pos(COMPUTE_SOURCE, "x + y")
        out = io.StringIO()
        code = main(["focus", str(path), "--line", str(line), "--col", str(col)], out=out)
        assert code == 0
        assert "focus on `x`" in out.getvalue()

    def test_cli_focus_json_and_direction_alias(self, tmp_path):
        path = tmp_path / "m.mr"
        path.write_text(COMPUTE_SOURCE, encoding="utf-8")
        out = io.StringIO()
        code = main([
            "focus", str(path), "--function", "compute", "--variable", "y",
            "--direction", "fwd", "--json",
        ], out=out)
        assert code == 0
        payload = json.loads(out.getvalue())
        assert payload["direction"] == "forward"
        assert "backward" not in payload

    def test_cli_focus_error_exits_nonzero(self, tmp_path):
        path = tmp_path / "m.mr"
        path.write_text(COMPUTE_SOURCE, encoding="utf-8")
        out = io.StringIO()
        code = main(["focus", str(path), "--line", "99", "--col", "1"], out=out)
        assert code == 2
        assert "error" in out.getvalue()

    def test_cli_query_focus_warm_repeat(self, tmp_path):
        path = tmp_path / "m.mr"
        path.write_text(COMPUTE_SOURCE, encoding="utf-8")
        line, col = find_pos(COMPUTE_SOURCE, "x + y")
        out = io.StringIO()
        code = main([
            "query", str(path), "--method", "focus",
            "--line", str(line), "--col", str(col), "--repeat", "2",
        ], out=out)
        assert code == 0
        responses = [json.loads(l) for l in out.getvalue().splitlines()]
        assert responses[0]["result"]["cache"] == "miss"
        assert responses[1]["result"]["cache"] == "hit"

    def test_cli_serve_jsonrpc(self, tmp_path):
        path = tmp_path / "m.mr"
        path.write_text(COMPUTE_SOURCE, encoding="utf-8")
        requests = tmp_path / "requests.ndjson"
        line, col = find_pos(COMPUTE_SOURCE, "x + y")
        requests.write_text(
            "\n".join(json.dumps(m) for m in [
                {"jsonrpc": "2.0", "id": 1, "method": "repro/focus",
                 "params": {"position": {"line": line - 1, "character": col - 1}}},
                {"jsonrpc": "2.0", "method": "exit"},
            ]) + "\n",
            encoding="utf-8",
        )
        out = io.StringIO()
        code = main(["serve", str(path), "--jsonrpc", "--input", str(requests)], out=out)
        assert code == 0
        response = json.loads(out.getvalue().splitlines()[0])
        assert response["result"]["target"] == "x"
