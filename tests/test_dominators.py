"""Tests for dominators, post-dominators, and control dependence."""

from repro.dataflow.control_deps import compute_control_deps, control_dependence_matrix
from repro.dataflow.dominators import compute_dominators, compute_post_dominators
from repro.dataflow.graph import exit_augmented_cfg, forward_cfg, reverse_post_order
from repro.mir.ir import SwitchBool

from helpers import lowered_from


DIAMOND = """
extern fn use_value(x: u32);

fn diamond(c: bool, a: u32, b: u32) -> u32 {
    let mut out = 0;
    if c {
        out = a;
    } else {
        out = b;
    }
    out
}
"""

LOOPY = """
fn loopy(n: u32) -> u32 {
    let mut i = 0;
    let mut total = 0;
    while i < n {
        if i % 2 == 0 {
            total = total + i;
        }
        i = i + 1;
    }
    total
}
"""


def body_of(source, name):
    _checked, lowered = lowered_from(source)
    return lowered.body(name)


def switch_blocks(body):
    return [
        index
        for index, block in enumerate(body.blocks)
        if isinstance(block.terminator, SwitchBool)
    ]


# ---------------------------------------------------------------------------
# Traversal and dominators
# ---------------------------------------------------------------------------


def test_reverse_post_order_starts_at_entry_and_covers_graph():
    body = body_of(DIAMOND, "diamond")
    view = forward_cfg(body)
    order = reverse_post_order(view)
    assert order[0] == 0
    assert set(order) == set(range(len(body.blocks)))


def test_entry_dominates_everything():
    body = body_of(DIAMOND, "diamond")
    tree = compute_dominators(body)
    for block in range(len(body.blocks)):
        assert tree.dominates(0, block)


def test_branch_does_not_dominate_join_children_crosswise():
    body = body_of(DIAMOND, "diamond")
    tree = compute_dominators(body)
    switch = switch_blocks(body)[0]
    then_block, else_block = body.blocks[switch].terminator.successors()
    assert tree.dominates(switch, then_block)
    assert tree.dominates(switch, else_block)
    assert not tree.dominates(then_block, else_block)


def test_dominators_of_lists_chain_to_entry():
    body = body_of(DIAMOND, "diamond")
    tree = compute_dominators(body)
    last_block = body.return_blocks()[0]
    chain = tree.dominators_of(last_block)
    assert chain[0] == last_block
    assert 0 in chain


def test_post_dominators_virtual_exit_dominates_all():
    body = body_of(DIAMOND, "diamond")
    tree = compute_post_dominators(body)
    from repro.dataflow.graph import VIRTUAL_EXIT

    for block in range(len(body.blocks)):
        assert tree.dominates(VIRTUAL_EXIT, block)


def test_exit_augmented_cfg_connects_return_blocks():
    body = body_of(DIAMOND, "diamond")
    augmented = exit_augmented_cfg(body)
    from repro.dataflow.graph import VIRTUAL_EXIT

    for return_block in body.return_blocks():
        assert VIRTUAL_EXIT in augmented.successors[return_block]


# ---------------------------------------------------------------------------
# Control dependence (Ferrante et al.)
# ---------------------------------------------------------------------------


def test_branch_arms_are_control_dependent_on_switch():
    body = body_of(DIAMOND, "diamond")
    deps = compute_control_deps(body)
    switch = switch_blocks(body)[0]
    then_block, else_block = body.blocks[switch].terminator.successors()
    assert deps.is_control_dependent(then_block, switch)
    assert deps.is_control_dependent(else_block, switch)


def test_join_block_is_not_control_dependent_on_switch():
    body = body_of(DIAMOND, "diamond")
    deps = compute_control_deps(body)
    switch = switch_blocks(body)[0]
    return_block = body.return_blocks()[0]
    assert not deps.is_control_dependent(return_block, switch)


def test_loop_body_control_dependent_on_loop_condition():
    body = body_of(LOOPY, "loopy")
    deps = compute_control_deps(body)
    switches = switch_blocks(body)
    assert len(switches) == 2  # while condition + inner if
    loop_switch = switches[0]
    controlled = [b for b in range(len(body.blocks)) if deps.is_control_dependent(b, loop_switch)]
    assert controlled  # the loop body blocks


def test_nested_if_accumulates_transitive_control_deps():
    body = body_of(LOOPY, "loopy")
    deps = compute_control_deps(body, transitive=True)
    switches = switch_blocks(body)
    inner_switch = switches[1]
    # Find a block controlled by the inner if; it must also depend on the
    # outer while condition via transitivity.
    inner_controlled = [
        b for b in range(len(body.blocks)) if inner_switch in deps.controlling_blocks(b)
    ]
    assert inner_controlled
    for block in inner_controlled:
        assert switches[0] in deps.controlling_blocks(block)


def test_non_transitive_mode_is_smaller_or_equal():
    body = body_of(LOOPY, "loopy")
    transitive = compute_control_deps(body, transitive=True)
    direct = compute_control_deps(body, transitive=False)
    for block in range(len(body.blocks)):
        assert direct.controlling_blocks(block) <= transitive.controlling_blocks(block)


def test_controlling_locations_point_at_switch_terminators():
    body = body_of(DIAMOND, "diamond")
    deps = compute_control_deps(body)
    switch = switch_blocks(body)[0]
    then_block = body.blocks[switch].terminator.successors()[0]
    locations = deps.controlling_locations(then_block)
    assert len(locations) == 1
    assert locations[0] == body.terminator_location(switch)


def test_control_dependence_matrix_inverts_relation():
    body = body_of(DIAMOND, "diamond")
    deps = compute_control_deps(body)
    matrix = control_dependence_matrix(body)
    switch = switch_blocks(body)[0]
    for controlled in matrix[switch]:
        assert switch in deps.controlling_blocks(controlled)


def test_straight_line_code_has_no_control_deps():
    body = body_of("fn f(a: u32) -> u32 { let b = a + 1; b * 2 }", "f")
    deps = compute_control_deps(body)
    for block in range(len(body.blocks)):
        assert deps.controlling_blocks(block) == set()
