"""Corpus ingestion properties: digests, dedup, and the path-traversal guard.

The mass-evaluation harness is only trustworthy if its corpus layer is:
digests must be byte-stable across runs (they key dedup, manifests, and
cross-run program identity), dedup must be order-independent (the same set
of ``.mrs`` files in any order yields the identical manifest), and every
program-derived file name must land inside the output root it was given.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import ReproError
from repro.eval.corpus import (
    CORPUS_MANIFEST_NAME,
    Corpus,
    CorpusProgram,
    dedup_programs,
    fuzz_sweep_programs,
    ingest_corpus,
    load_corpus_dir,
    program_digest,
    safe_artifact_path,
)

# ---------------------------------------------------------------------------
# Digest stability
# ---------------------------------------------------------------------------


def test_program_digest_byte_stable_across_runs():
    source = "fn main() { let x = 1; }\n"
    assert program_digest(source) == program_digest(source)
    # Known-answer: the digest is plain sha256 over UTF-8 bytes, so it can
    # never drift without a deliberate format break.
    import hashlib

    assert program_digest(source) == hashlib.sha256(source.encode("utf-8")).hexdigest()


def test_program_digest_distinguishes_whitespace():
    assert program_digest("fn main() {}\n") != program_digest("fn main() {}")


def test_fuzz_sweep_digests_stable_across_processes_equivalent():
    # Two independent sweeps over the same (seed, size) are byte-identical,
    # so their digests agree program-for-program.
    first = fuzz_sweep_programs(5, seed=3)
    second = fuzz_sweep_programs(5, seed=3)
    assert [p.digest for p in first] == [p.digest for p in second]
    assert all(p.digest == program_digest(p.source) for p in first)


# ---------------------------------------------------------------------------
# Order-independent dedup
# ---------------------------------------------------------------------------


def _member(name, source, origin="dir", **kwargs):
    return CorpusProgram(
        name=name,
        source=source,
        digest=program_digest(source),
        origin=origin,
        **kwargs,
    )


def test_dedup_is_order_independent():
    members = [
        _member(f"prog_{i}", f"fn main() {{ let x = {i}; }}\n") for i in range(8)
    ]
    members.append(_member("dup_a", members[0].source))
    members.append(_member("dup_b", members[3].source))
    baseline = dedup_programs(list(members)).manifest()
    rng = random.Random(0)
    for _ in range(10):
        shuffled = list(members)
        rng.shuffle(shuffled)
        assert dedup_programs(shuffled).manifest() == baseline


def test_dedup_counts_duplicates_and_keeps_canonical_representative():
    a = _member("zeta", "fn main() { }\n")
    b = _member("alpha", "fn main() { }\n")
    corpus = dedup_programs([a, b])
    assert len(corpus) == 1
    assert corpus.duplicates == 1
    # Representative choice is content-determined, not input-order-determined.
    assert corpus.programs[0].name == "alpha"
    assert dedup_programs([b, a]).manifest() == corpus.manifest()


def test_corpus_dir_manifest_identical_for_any_write_order(tmp_path):
    programs = fuzz_sweep_programs(6, seed=0)
    orders = [list(programs), list(reversed(programs))]
    manifests = []
    for index, order in enumerate(orders):
        root = tmp_path / f"corpus_{index}"
        root.mkdir()
        for program in order:
            (root / f"{program.name}.mrs").write_text(
                program.source, encoding="utf-8"
            )
        manifests.append(dedup_programs(load_corpus_dir(root)).manifest())
    # Names/digests/features identical regardless of on-disk creation order.
    assert manifests[0] == manifests[1]


def test_manifest_digest_tracks_content():
    corpus_a = dedup_programs(fuzz_sweep_programs(4, seed=0))
    corpus_b = dedup_programs(fuzz_sweep_programs(4, seed=0))
    corpus_c = dedup_programs(fuzz_sweep_programs(4, seed=1))
    assert corpus_a.manifest_digest() == corpus_b.manifest_digest()
    assert corpus_a.manifest_digest() != corpus_c.manifest_digest()


# ---------------------------------------------------------------------------
# Directory ingestion + manifest round-trip
# ---------------------------------------------------------------------------


def test_load_corpus_dir_reattaches_manifest_features(tmp_path):
    programs = fuzz_sweep_programs(3, seed=0)
    corpus = dedup_programs(programs)
    for program in programs:
        (tmp_path / f"{program.name}.mrs").write_text(
            program.source, encoding="utf-8"
        )
    corpus.write_manifest(tmp_path)
    loaded = load_corpus_dir(tmp_path)
    by_digest = {p.digest: p for p in loaded}
    for program in programs:
        assert by_digest[program.digest].features == program.features
        assert by_digest[program.digest].seed == program.seed


def test_load_corpus_dir_tolerates_corrupt_manifest(tmp_path):
    (tmp_path / "ok.mrs").write_text("fn main() { }\n", encoding="utf-8")
    (tmp_path / CORPUS_MANIFEST_NAME).write_text("{not json", encoding="utf-8")
    loaded = load_corpus_dir(tmp_path)
    assert len(loaded) == 1
    assert loaded[0].features in (None, {})


def test_load_corpus_dir_missing_directory_raises(tmp_path):
    with pytest.raises(ReproError):
        load_corpus_dir(tmp_path / "nope")


def test_ingest_corpus_merges_sweep_and_dirs(tmp_path):
    programs = fuzz_sweep_programs(2, seed=0)
    for program in programs:
        (tmp_path / f"{program.name}.mrs").write_text(
            program.source, encoding="utf-8"
        )
    (tmp_path / "extra.mrs").write_text(
        "fn main() { let q = 7; }\n", encoding="utf-8"
    )
    merged = ingest_corpus(count=2, seed=0, dirs=[tmp_path])
    # Sweep programs duplicate the on-disk copies; only the extra survives
    # alongside the two unique bodies.
    assert len(merged) == 3
    assert merged.duplicates == 2


def test_write_manifest_round_trips_as_json(tmp_path):
    corpus = dedup_programs(fuzz_sweep_programs(3, seed=0))
    path = corpus.write_manifest(tmp_path)
    data = json.loads(path.read_text(encoding="utf-8"))
    assert data["kind"] == "repro-eval-corpus"
    assert data["count"] == 3
    assert [entry["digest"] for entry in data["programs"]] == [
        p.digest for p in corpus.programs
    ]


# ---------------------------------------------------------------------------
# Output-root containment (the path-traversal guard)
# ---------------------------------------------------------------------------


def test_safe_artifact_path_creates_root_idempotently(tmp_path):
    root = tmp_path / "a" / "b"
    first = safe_artifact_path(root, "report", suffix=".json")
    second = safe_artifact_path(root, "report", suffix=".json")
    assert first == second
    assert root.is_dir()


def test_safe_artifact_path_flattens_separators_and_dotdot(tmp_path):
    for hostile in ("../evil", "../../etc/passwd", "a/b/../c", "..\\evil"):
        path = safe_artifact_path(tmp_path, hostile, suffix=".json")
        assert path.resolve().is_relative_to(tmp_path.resolve())
        assert "/" not in path.name and "\\" not in path.name
        assert not path.name.startswith(".")


def test_safe_artifact_path_never_escapes_root_via_absolute_name(tmp_path):
    path = safe_artifact_path(tmp_path, "/etc/passwd", suffix=".json")
    assert path.resolve().is_relative_to(tmp_path.resolve())


def test_hostile_program_name_lands_inside_out_dir(tmp_path):
    # The end-to-end version of the guard: a corpus member whose *name*
    # attempts traversal still writes its failure artifact under out_dir.
    from repro.fuzz.campaign import write_repro_artifact

    artifact = write_repro_artifact(
        tmp_path / "failures",
        seed=0,
        oracle="validate",
        detail="x",
        source="fn main() { }\n",
        name="../../escape",
    )
    import pathlib

    assert pathlib.Path(artifact).resolve().is_relative_to(tmp_path.resolve())
