"""Tests for the observability subsystem: tracing, metrics, request-scoped
telemetry, exports, and the serve access log."""

from __future__ import annotations

import json
import logging
import time

import pytest

from helpers import GET_COUNT_SOURCE

from repro.obs import (
    MetricsRegistry,
    Trace,
    active_span,
    get_registry,
    is_enabled,
    new_trace_id,
    parse_series,
    render_span_tree,
    series_name,
    set_enabled,
    snapshot_delta,
    span,
    stage,
    start_trace,
)
from repro.obs.export import (
    TraceDirWriter,
    chrome_trace_document,
    render_prometheus,
    write_chrome_trace,
)
from repro.obs.metrics import COUNT_BUCKETS
from repro.service.protocol import AnalysisService


def walk_tree(tree: dict):
    """Preorder walk over a ``Span.to_dict`` tree."""
    yield tree
    for child in tree.get("children", ()):
        yield from walk_tree(child)


@pytest.fixture(autouse=True)
def _obs_enabled():
    """Every test starts (and leaves) the switch in its default-on state."""
    set_enabled(True)
    yield
    set_enabled(True)


# ---------------------------------------------------------------------------
# Tracing core
# ---------------------------------------------------------------------------


class TestTraceCore:
    def test_span_outside_trace_is_inert(self):
        assert active_span() is None
        with span("orphan") as sp:
            assert sp is None
        assert active_span() is None

    def test_nesting_follows_dynamic_structure(self):
        with start_trace("request") as trace:
            with span("outer", layer=1):
                with span("inner", layer=2) as inner:
                    inner.set(extra=True)
            with span("sibling"):
                pass
        root = trace.to_dict()["root"]
        assert [c["name"] for c in root["children"]] == ["outer", "sibling"]
        inner = root["children"][0]["children"][0]
        assert inner["name"] == "inner"
        assert inner["attrs"] == {"layer": 2, "extra": True}

    def test_self_times_telescope_to_root_duration(self):
        with start_trace("request") as trace:
            with span("a"):
                with span("a1"):
                    time.sleep(0.002)
                time.sleep(0.002)
            with span("b"):
                time.sleep(0.002)
        spans = trace.spans()
        total_self = sum(sp.self_ms for sp in spans)
        assert total_self == pytest.approx(trace.root.duration_ms, abs=1e-6)
        # The serialised tree preserves the invariant (modulo rounding).
        tree = trace.to_dict()["root"]
        tree_self = sum(node["self_ms"] for node in walk_tree(tree))
        assert tree_self == pytest.approx(tree["duration_ms"], abs=1e-3)

    def test_disabled_switch_disables_tracing(self):
        set_enabled(False)
        assert not is_enabled()
        with start_trace("request") as trace:
            assert trace is None
            with span("child") as sp:
                assert sp is None

    def test_trace_id_is_honoured_and_generated(self):
        with start_trace("r", trace_id="deadbeef00000000") as trace:
            pass
        assert trace.trace_id == "deadbeef00000000"
        with start_trace("r") as fresh:
            pass
        assert len(fresh.trace_id) == 16
        assert new_trace_id() != new_trace_id()

    def test_chrome_events_shape(self):
        with start_trace("request") as trace:
            with span("work", fn="f"):
                time.sleep(0.001)
        events = trace.to_chrome_events()
        assert len(events) == 2
        assert all(e["ph"] == "X" for e in events)
        root, work = events
        assert root["ts"] == 0
        assert work["args"] == {"fn": "f"}
        # µs timestamps: the child starts within the root and fits inside it.
        assert 0 <= work["ts"] <= root["dur"]
        assert work["dur"] <= root["dur"]
        document = chrome_trace_document(trace)
        assert document["otherData"]["trace_id"] == trace.trace_id
        assert document["traceEvents"] == events

    def test_render_span_tree(self):
        with start_trace("request") as trace:
            with span("child", fn="f"):
                pass
        text = render_span_tree(trace.to_dict()["root"])
        assert "request" in text and "child" in text and "fn=f" in text

    def test_stage_records_histogram_even_untraced(self):
        registry = get_registry()
        before = registry.histogram("stage_seconds", stage="test_stage").count
        with stage("test_stage") as sp:
            assert sp is None  # no active trace
        after = registry.histogram("stage_seconds", stage="test_stage").count
        assert after == before + 1


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_series_identity(self):
        registry = MetricsRegistry()
        registry.counter("hits", kind="a").inc()
        registry.counter("hits", kind="a").inc(2)
        registry.counter("hits", kind="b").inc()
        snap = registry.snapshot()
        assert snap["counters"] == {'hits{kind="a"}': 3.0, 'hits{kind="b"}': 1.0}

    def test_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert registry.snapshot()["gauges"] == {"depth": 3.0}

    def test_histogram_statistics_and_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sizes", buckets=(1, 10, 100))
        for value in (0.5, 5, 50, 500):
            hist.observe(value)
        snap = hist.snapshot_dict()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(555.5)
        assert snap["min"] == 0.5 and snap["max"] == 500
        assert snap["mean"] == pytest.approx(555.5 / 4)
        # Cumulative le-buckets; the +Inf observation only shows in count.
        assert snap["buckets"] == [[1, 1], [10, 2], [100, 3]]

    def test_series_name_round_trip(self):
        series = series_name("cache_get_total", {"tier": "memory", "kind": "record"})
        assert series == 'cache_get_total{kind="record",tier="memory"}'
        assert parse_series(series) == (
            "cache_get_total",
            {"kind": "record", "tier": "memory"},
        )
        assert parse_series("plain") == ("plain", {})

    def test_snapshot_delta(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.histogram("h").observe(1.0)
        before = registry.snapshot()
        registry.counter("a").inc(2)
        registry.counter("b").inc()
        registry.gauge("g").set(7)
        registry.histogram("h").observe(3.0)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["counters"] == {"a": 2.0, "b": 1.0}
        assert delta["gauges"] == {"g": 7.0}
        assert delta["histograms"]["h"] == {"count": 1, "sum": 3.0, "mean": 3.0}

    def test_reset_keeps_interned_handles_valid(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        counter.inc(3)
        registry.reset()
        assert counter.value == 0.0
        counter.inc()
        # The registry still reads through the same object.
        assert registry.snapshot()["counters"] == {"a": 1.0}

    def test_kill_switch_stops_mutation(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        hist = registry.histogram("h")
        gauge = registry.gauge("g")
        set_enabled(False)
        counter.inc()
        hist.observe(1.0)
        gauge.set(3)
        assert counter.value == 0.0 and hist.count == 0 and gauge.value == 0.0
        set_enabled(True)
        counter.inc()
        assert counter.value == 1.0

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("cache_get_total", kind="record", tier="memory").inc(3)
        registry.gauge("server_inflight").set(2)
        registry.histogram("request_seconds", buckets=(0.1, 1.0), method="analyze").observe(0.5)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_cache_get_total counter" in text
        assert 'repro_cache_get_total{kind="record",tier="memory"} 3' in text
        assert "repro_server_inflight 2" in text
        assert 'repro_request_seconds_bucket{le="0.1",method="analyze"} 0' in text
        assert 'repro_request_seconds_bucket{le="1",method="analyze"} 1' in text
        assert 'repro_request_seconds_bucket{le="+Inf",method="analyze"} 1' in text
        assert 'repro_request_seconds_count{method="analyze"} 1' in text

    def test_count_buckets_cover_iteration_shapes(self):
        assert COUNT_BUCKETS[0] == 1 and COUNT_BUCKETS[-1] >= 100

    @pytest.mark.parametrize(
        "value",
        [
            'quo"ted',
            "back\\slash",
            "new\nline",
            'all="three",\\n\n',
            "{braces}",
            "trailing,comma,",
        ],
    )
    def test_adversarial_label_values_round_trip(self, value):
        series = series_name("m_total", {"key": value, "plain": "x"})
        name, labels = parse_series(series)
        assert name == "m_total"
        assert labels == {"key": value, "plain": "x"}

    def test_adversarial_labels_render_escaped_in_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("evil_total", path='a"b\\c\nd').inc()
        text = render_prometheus(registry.snapshot())
        # Exposition format: backslash, quote, and newline escaped; the
        # physical line must not be broken by the embedded newline.
        line = [l for l in text.splitlines() if l.startswith("repro_evil_total{")]
        assert line == ['repro_evil_total{path="a\\"b\\\\c\\nd"} 1']

    def test_type_line_once_per_family_even_interleaved(self):
        # Interleave two counter families in insertion order; each family
        # must render as exactly one # TYPE line followed by all its series.
        registry = MetricsRegistry()
        registry.counter("alpha_total", kind="a").inc()
        registry.counter("beta_total").inc()
        registry.counter("alpha_total", kind="b").inc()
        text = render_prometheus(registry.snapshot())
        lines = text.splitlines()
        assert lines.count("# TYPE repro_alpha_total counter") == 1
        assert lines.count("# TYPE repro_beta_total counter") == 1
        alpha_type = lines.index("# TYPE repro_alpha_total counter")
        assert lines[alpha_type + 1].startswith("repro_alpha_total{")
        assert lines[alpha_type + 2].startswith("repro_alpha_total{")

    def test_conflicting_family_kind_is_dropped_not_contradicted(self):
        snapshot = {
            "counters": {"dual": 1.0},
            "gauges": {"dual": 2.0},
            "histograms": {},
        }
        text = render_prometheus(snapshot)
        assert text.count("# TYPE repro_dual") == 1
        assert "# TYPE repro_dual counter" in text
        assert text.splitlines().count("repro_dual 2") == 0


# ---------------------------------------------------------------------------
# Request-scoped telemetry (the acceptance path)
# ---------------------------------------------------------------------------


class TestRequestTelemetry:
    def test_traced_analyze_covers_pipeline_and_telescopes(self):
        """One NDJSON ``analyze`` with an inline source and ``"trace": true``
        must return a span tree covering parse → fixpoint → cache whose
        self-times sum to the root duration, which in turn accounts for the
        measured request wall time."""
        service = AnalysisService()
        started = time.perf_counter()
        response = service.handle(
            {
                "id": 1,
                "method": "analyze",
                "trace": True,
                "params": {"source": GET_COUNT_SOURCE},
            }
        )
        wall_ms = (time.perf_counter() - started) * 1e3
        assert response["ok"], response
        assert response["trace_id"]
        tree = response["trace"]["root"]
        names = {node["name"] for node in walk_tree(tree)}
        assert {"analyze", "parse", "typecheck", "mir_lower", "cache_get",
                "fixpoint", "cache_put"} <= names
        # Self-times telescope exactly to the root duration...
        total_self = sum(node["self_ms"] for node in walk_tree(tree))
        assert total_self == pytest.approx(tree["duration_ms"], abs=1e-3)
        # ...and the root accounts for the request wall time: it can only be
        # smaller (dispatch overhead outside the trace), not larger.
        assert 0 < tree["duration_ms"] <= wall_ms
        assert wall_ms - tree["duration_ms"] < max(5.0, 0.9 * wall_ms)

    def test_fixpoint_spans_carry_engine_and_density(self):
        service = AnalysisService()
        response = service.handle(
            {"id": 1, "method": "analyze", "trace": True,
             "params": {"source": GET_COUNT_SOURCE}}
        )
        fixpoints = [
            node for node in walk_tree(response["trace"]["root"])
            if node["name"] == "fixpoint"
        ]
        assert fixpoints
        for node in fixpoints:
            assert node["attrs"]["engine"]
            assert node["attrs"]["iterations"] >= 1
            assert 0.0 <= node["attrs"]["density"] <= 1.0

    def test_untraced_request_has_trace_id_but_no_tree(self):
        service = AnalysisService()
        service.handle({"id": 1, "method": "open",
                        "params": {"source": GET_COUNT_SOURCE}})
        response = service.handle({"id": 2, "method": "analyze", "params": {}})
        assert response["ok"]
        assert response["trace_id"]
        assert "trace" not in response

    def test_client_supplied_trace_id_is_echoed(self):
        service = AnalysisService()
        response = service.handle(
            {"id": 1, "method": "ping", "trace_id": "cafe0000cafe0000"}
        )
        assert response["trace_id"] == "cafe0000cafe0000"

    def test_error_responses_carry_trace_ids_and_count_as_errors(self):
        service = AnalysisService()
        registry = get_registry()
        series = 'requests_total{method="nope",protocol="ndjson",status="error"}'
        before = registry.snapshot()["counters"].get(series, 0)
        response = service.handle({"id": 1, "method": "nope"})
        assert not response["ok"]
        assert response["trace_id"]
        assert registry.snapshot()["counters"][series] == before + 1

    def test_metrics_method_returns_registry_and_session_views(self):
        service = AnalysisService()
        service.handle({"id": 1, "method": "open",
                        "params": {"source": GET_COUNT_SOURCE}})
        response = service.handle({"id": 2, "method": "metrics"})
        assert response["ok"]
        snapshot = response["result"]
        assert set(snapshot) == {"counters", "gauges", "histograms", "session"}
        assert any(s.startswith("stage_seconds") for s in snapshot["histograms"])
        assert any(s.startswith("request_seconds") for s in snapshot["histograms"])
        assert "counters" in snapshot["session"] and "store" in snapshot["session"]

    def test_jsonrpc_dialect_mirrors_the_contract(self):
        from repro.focus.server import FocusServer

        server = FocusServer()
        response = server.handle(
            {"jsonrpc": "2.0", "id": 1, "method": "initialize", "trace": True}
        )
        assert "result" in response
        assert response["trace_id"]
        assert response["trace"]["root"]["name"] == "initialize"
        metrics = server.handle(
            {"jsonrpc": "2.0", "id": 2, "method": "repro/metrics"}
        )
        assert set(metrics["result"]) == {"counters", "gauges", "histograms", "session"}


# ---------------------------------------------------------------------------
# Load-harness consumption of server-side metrics
# ---------------------------------------------------------------------------


class _Crate:
    def __init__(self, name, source):
        self.name = name
        self.source = source


class TestLoadTelemetry:
    def test_swarm_reconciles_counts_and_breaks_down_stages(self):
        from repro.eval.load import build_query_plan, run_swarm, start_corpus_server

        server = start_corpus_server([_Crate("ws", GET_COUNT_SOURCE)], workers=4)
        try:
            plan = build_query_plan(server)
            result = run_swarm(server, plan, clients=2)
        finally:
            server.shutdown()
        assert result.errors == 0 and result.consistent
        # The server counted exactly the requests the clients sent.
        assert result.counts_agree, result.server
        assert result.server["requests_by_method"] == (
            result.server["client_requests_by_method"]
        )
        assert sum(result.server["requests_by_method"].values()) == (
            result.requests + 2  # plus one workspace switch per client
        )
        # Per-stage server-side latency: the cold analyses ran fixpoints.
        assert result.server["stage_ms"].get("fixpoint", {}).get("count", 0) > 0
        assert result.server["request_ms"]["analyze"]["count"] > 0
        assert result.to_json_dict()["server"]["counts_agree"] is True


# ---------------------------------------------------------------------------
# Exports
# ---------------------------------------------------------------------------


class TestExports:
    def test_write_chrome_trace(self, tmp_path):
        with start_trace("request") as trace:
            with span("work"):
                pass
        path = write_chrome_trace(tmp_path / "out" / "trace.json", trace)
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["displayTimeUnit"] == "ms"
        assert [e["name"] for e in document["traceEvents"]] == ["request", "work"]

    def test_trace_dir_writer_rotates(self, tmp_path):
        writer = TraceDirWriter(tmp_path, max_files=3)
        assert writer.write(None) is None
        for index in range(5):
            trace = Trace("request", trace_id=f"{index:016x}")
            trace.finish()
            path = writer.write(trace)
            assert path is not None and path.exists()
        files = sorted(tmp_path.glob("trace-*.json"))
        assert len(files) == 3
        assert writer.written == 5
        document = json.loads(files[-1].read_text(encoding="utf-8"))
        assert "traceEvents" in document and "spanTree" in document


# ---------------------------------------------------------------------------
# Serve access log
# ---------------------------------------------------------------------------


class _ListHandler(logging.Handler):
    def __init__(self):
        super().__init__(level=logging.INFO)
        self.records = []

    def emit(self, record):
        self.records.append(record.getMessage())


class TestAccessLog:
    @pytest.fixture()
    def capture(self):
        logger = logging.getLogger("repro.access")
        handler = _ListHandler()
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        try:
            yield handler
        finally:
            logger.removeHandler(handler)
            logger.setLevel(logging.NOTSET)

    def test_one_structured_line_per_request(self, capture):
        from repro.service.server import ConnectionHandler, WorkspaceRegistry

        handler = ConnectionHandler(WorkspaceRegistry(), log_level="info")
        handler.handle_line(json.dumps({"id": 1, "method": "ping"}))
        handler.handle_line(json.dumps({"id": 2, "method": "nope"}))
        assert len(capture.records) == 2
        ok_line, err_line = (json.loads(r) for r in capture.records)
        assert ok_line["method"] == "ping" and ok_line["status"] == "ok"
        assert ok_line["workspace"] == "default"
        assert ok_line["duration_ms"] >= 0
        assert len(ok_line["trace_id"]) == 16
        assert err_line["method"] == "nope" and err_line["status"] == "error"

    def test_quiet_default_emits_nothing(self, capture):
        from repro.service.server import ConnectionHandler, WorkspaceRegistry

        handler = ConnectionHandler(WorkspaceRegistry())
        response = handler.handle_line(json.dumps({"id": 1, "method": "ping"}))
        assert response["ok"]
        assert capture.records == []

    def test_trace_dir_writes_one_file_per_request(self, tmp_path):
        from repro.service.server import ConnectionHandler, WorkspaceRegistry

        writer = TraceDirWriter(tmp_path)
        handler = ConnectionHandler(WorkspaceRegistry(), trace_writer=writer)
        response = handler.handle_line(json.dumps({"id": 1, "method": "ping"}))
        files = list(tmp_path.glob("trace-*.json"))
        assert len(files) == 1
        assert response["trace_id"] in files[0].name
