"""Tests for diagnostics, spans, and the pretty printers."""

import pytest

from repro.errors import (
    DUMMY_SPAN,
    Diagnostic,
    DiagnosticSink,
    LexError,
    ParseError,
    ReproError,
    Severity,
    Span,
    TypeCheckError,
    first_error,
)
from repro.mir.pretty import pretty_body, pretty_location
from repro.mir.ir import Location

from helpers import lowered_from, GET_COUNT_SOURCE


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


def test_span_merge_covers_both_ranges():
    a = Span(1, 2, 1, 9)
    b = Span(3, 1, 4, 5)
    merged = a.merge(b)
    assert merged == Span(1, 2, 4, 5)


def test_span_merge_with_dummy_keeps_real_side():
    real = Span(2, 1, 2, 5)
    assert DUMMY_SPAN.merge(real) == real
    assert real.merge(DUMMY_SPAN) == real


def test_span_contains_line_and_point():
    span = Span(3, 1, 5, 2)
    assert span.contains_line(4)
    assert not span.contains_line(6)
    point = Span.point(7, 1)
    assert point.contains_line(7)
    assert str(point) == "7:1"
    assert str(DUMMY_SPAN) == "<unknown>"


# ---------------------------------------------------------------------------
# Diagnostics
# ---------------------------------------------------------------------------


def test_diagnostic_render_includes_location_and_notes():
    diag = Diagnostic(Severity.ERROR, "something broke", Span(2, 3, 2, 7), ("try this",))
    rendered = diag.render()
    assert "error at 2:3" in rendered
    assert "note: try this" in rendered


def test_sink_collects_and_filters_by_severity():
    sink = DiagnosticSink()
    sink.error("bad")
    sink.warning("meh")
    sink.note("fyi")
    assert len(sink.errors) == 1
    assert len(sink.warnings) == 1
    assert sink.has_errors()
    assert first_error(sink.diagnostics).message == "bad"
    assert "bad" in sink.render()


def test_sink_raise_if_errors_combines_messages():
    sink = DiagnosticSink()
    sink.error("first problem")
    sink.error("second problem")
    with pytest.raises(ReproError) as excinfo:
        sink.raise_if_errors()
    assert "first problem" in str(excinfo.value)
    assert "second problem" in str(excinfo.value)


def test_sink_without_errors_does_not_raise():
    sink = DiagnosticSink()
    sink.warning("only a warning")
    sink.raise_if_errors()
    assert not sink.has_errors()


def test_sink_extend_and_clear():
    a = DiagnosticSink()
    a.error("x")
    b = DiagnosticSink()
    b.extend(a)
    assert b.has_errors()
    b.clear()
    assert not b.has_errors()


def test_error_classes_carry_spans_and_diagnostics():
    for error_class in (LexError, ParseError, TypeCheckError):
        error = error_class("boom", Span(1, 1, 1, 2))
        assert error.span.start_line == 1
        assert error.diagnostic.severity is Severity.ERROR
        assert isinstance(error, ReproError)


# ---------------------------------------------------------------------------
# MIR pretty printing
# ---------------------------------------------------------------------------


def test_pretty_body_names_arguments_and_temporaries():
    _checked, lowered = lowered_from(GET_COUNT_SOURCE)
    body = lowered.body("get_count")
    text = pretty_body(body)
    assert "// argument `h`" in text
    assert "// temporary" in text
    assert "// return place" in text
    assert "// crate: main" in text


def test_pretty_body_uses_user_names_in_instructions():
    _checked, lowered = lowered_from("fn f(total: u32) -> u32 { total + 1 }")
    body = lowered.body("f")
    text = pretty_body(body)
    assert "total + 1" in text


def test_pretty_location_renders_single_instruction():
    _checked, lowered = lowered_from("fn f(a: u32) -> u32 { a }")
    body = lowered.body("f")
    rendered = pretty_location(body, Location(0, 0))
    assert rendered.startswith("bb0[0]:")


def test_pretty_body_terminator_annotations():
    _checked, lowered = lowered_from(GET_COUNT_SOURCE)
    body = lowered.body("get_count")
    switch_block = next(
        index
        for index, block in enumerate(body.blocks)
        if "switch" in block.terminator.pretty(body)
    )
    location = body.terminator_location(switch_block)
    text = pretty_body(body, {location: "controls both branches"})
    assert "controls both branches" in text
