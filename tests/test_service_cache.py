"""Tests for the content-addressed summary store and fingerprint index."""

from __future__ import annotations

import json

import pytest

from helpers import HELPER_CALLER_SOURCE, analyze, lowered_from

from repro.core.config import MODULAR, WHOLE_PROGRAM, AnalysisConfig
from repro.core.engine import FlowEngine
from repro.core.summaries import WholeProgramSummary
from repro.mir.callgraph import build_call_graph
from repro.service.cache import (
    CacheKey,
    FingerprintIndex,
    FunctionRecord,
    SummaryStore,
    condition_is_whole_program,
    config_cache_key,
)


CHAIN_SOURCE = """
fn leaf(x: u32) -> u32 {
    x + 1
}

fn mid(x: u32) -> u32 {
    leaf(x) + 2
}

fn root(x: u32) -> u32 {
    mid(x) + 3
}
"""


def make_key(fn_name="f", fingerprint="abc", condition="wp=0", kind="record"):
    return CacheKey(kind=kind, fn_name=fn_name, fingerprint=fingerprint, condition=condition)


def fingerprints_for(source: str) -> FingerprintIndex:
    checked, lowered = lowered_from(source)
    return FingerprintIndex(
        lowered, checked.signatures, checked.program.local_crate, build_call_graph(lowered)
    )


class TestConfigCacheKey:
    def test_all_fields_distinguish(self):
        base = AnalysisConfig()
        variants = [
            AnalysisConfig(whole_program=True),
            AnalysisConfig(mut_blind=True),
            AnalysisConfig(ref_blind=True),
            AnalysisConfig(max_whole_program_depth=7),
            AnalysisConfig(strong_updates=False),
            AnalysisConfig(track_control_deps=False),
        ]
        keys = {config_cache_key(c) for c in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_whole_program_predicate(self):
        assert condition_is_whole_program(config_cache_key(WHOLE_PROGRAM))
        assert not condition_is_whole_program(config_cache_key(MODULAR))


class TestSummaryStore:
    def test_miss_then_hit(self):
        store = SummaryStore()
        key = make_key()
        assert store.get(key) is None
        store.put(key, {"v": 1})
        assert store.get(key) == {"v": 1}
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.puts == 1

    def test_lru_eviction_order(self):
        store = SummaryStore(max_entries=2)
        a, b, c = (make_key(fingerprint=fp) for fp in ("a", "b", "c"))
        store.put(a, {"v": "a"})
        store.put(b, {"v": "b"})
        assert store.get(a) == {"v": "a"}  # refresh a: b is now LRU
        store.put(c, {"v": "c"})
        assert store.stats.evictions == 1
        assert store.get(b) is None
        assert store.get(a) is not None
        assert store.get(c) is not None

    def test_memory_only_eviction_also_drops_name_index(self):
        store = SummaryStore(max_entries=2)
        for i in range(10):
            store.put(make_key(fingerprint=f"fp{i}"), {"v": i})
        # With no disk tier, evicted keys have nothing left to reclaim and
        # must not accumulate in the per-function key index.
        assert len(store._by_name["f"]) == 2

    def test_disk_tier_survives_store_instance(self, tmp_path):
        key = make_key()
        first = SummaryStore(disk_dir=tmp_path / "cache")
        first.put(key, {"v": 42})
        assert first.stats.disk_writes == 1

        second = SummaryStore(disk_dir=tmp_path / "cache")
        assert second.get(key) == {"v": 42}
        assert second.stats.disk_hits == 1
        # Promoted into memory: a second get is served without disk.
        assert second.get(key) == {"v": 42}
        assert second.stats.disk_hits == 1

    def test_disk_entry_validates_key(self, tmp_path):
        key = make_key()
        store = SummaryStore(disk_dir=tmp_path)
        store.put(key, {"v": 1})
        path = tmp_path / key.file_name()
        payload = json.loads(path.read_text())
        payload["key"]["fingerprint"] = "tampered"
        path.write_text(json.dumps(payload))

        fresh = SummaryStore(disk_dir=tmp_path)
        assert fresh.get(key) is None

    def test_clear_also_wipes_the_disk_tier(self, tmp_path):
        key = make_key()
        store = SummaryStore(disk_dir=tmp_path)
        store.put(key, {"v": 1})
        store.clear()
        assert store.get(key) is None
        assert not (tmp_path / key.file_name()).exists()

    def test_invalidate_function_memory_and_disk(self, tmp_path):
        store = SummaryStore(disk_dir=tmp_path)
        mine = make_key(fn_name="f")
        other = make_key(fn_name="g")
        store.put(mine, {"v": 1})
        store.put(other, {"v": 2})
        removed = store.invalidate_function("f")
        assert removed == 1
        assert store.get(mine) is None
        assert store.get(other) == {"v": 2}
        assert not (tmp_path / mine.file_name()).exists()

    def test_invalidate_with_predicate_is_selective(self):
        store = SummaryStore()
        modular = make_key(condition=config_cache_key(MODULAR))
        whole = make_key(condition=config_cache_key(WHOLE_PROGRAM))
        store.put(modular, {"v": 1})
        store.put(whole, {"v": 2})
        removed = store.invalidate_function(
            "f", predicate=lambda k: condition_is_whole_program(k.condition)
        )
        assert removed == 1
        assert store.get(modular) is not None
        assert store.get(whole) is None


class TestWholeProgramSummaryRoundTrip:
    def test_manual_summary(self):
        summary = WholeProgramSummary(
            callee="helper",
            return_sources=frozenset({1}),
            mutations={(0, (2, 0)): frozenset({0, 1}), (1, ()): frozenset()},
        )
        rebuilt = WholeProgramSummary.from_json_dict(summary.to_json_dict())
        assert rebuilt == summary

    def test_computed_summary_round_trips_through_json_text(self):
        engine = FlowEngine.from_source(HELPER_CALLER_SOURCE, config=WHOLE_PROGRAM)
        provider = engine._provider
        summary = provider.summary_for("helper")
        assert summary is not None
        text = json.dumps(summary.to_json_dict())
        rebuilt = WholeProgramSummary.from_json_dict(json.loads(text))
        assert rebuilt == summary
        assert rebuilt.pretty() == summary.pretty()


class TestFunctionRecord:
    def test_round_trip_preserves_views(self):
        result = analyze(HELPER_CALLER_SOURCE, "caller")
        record = FunctionRecord.from_result(result, "fp", config_cache_key(MODULAR))
        rebuilt = FunctionRecord.from_json_dict(json.loads(json.dumps(record.to_json_dict())))
        assert rebuilt == record
        assert rebuilt.dependency_sizes == result.dependency_sizes()
        assert set(rebuilt.backward_slice_locations("r")) == set(
            result.backward_slice_of_variable("r")
        )

    def test_unknown_variable_raises(self):
        result = analyze(HELPER_CALLER_SOURCE, "caller")
        record = FunctionRecord.from_result(result, "fp", "wp=0")
        with pytest.raises(KeyError):
            record.deps_of("nope")


class TestFingerprintIndex:
    def test_body_edit_changes_only_edited_shallow_fingerprint(self):
        old = fingerprints_for(CHAIN_SOURCE)
        new = fingerprints_for(CHAIN_SOURCE.replace("x + 1", "x + 9"))
        assert old.shallow_fingerprint("leaf") != new.shallow_fingerprint("leaf")
        assert old.shallow_fingerprint("mid") == new.shallow_fingerprint("mid")
        assert old.shallow_fingerprint("root") == new.shallow_fingerprint("root")

    def test_body_edit_changes_cone_of_all_transitive_callers(self):
        old = fingerprints_for(CHAIN_SOURCE)
        new = fingerprints_for(CHAIN_SOURCE.replace("x + 1", "x + 9"))
        for name in ("leaf", "mid", "root"):
            assert old.cone_fingerprint(name) != new.cone_fingerprint(name)

    def test_signature_edit_changes_direct_caller_shallow_fingerprint(self):
        edited = CHAIN_SOURCE.replace(
            "fn leaf(x: u32)", "fn leaf(x: u32, y: u32)"
        ).replace("leaf(x)", "leaf(x, 0)")
        old = fingerprints_for(CHAIN_SOURCE)
        new = fingerprints_for(edited)
        assert old.shallow_fingerprint("mid") != new.shallow_fingerprint("mid")
        # root does not call leaf directly: its modular key is unaffected.
        assert old.shallow_fingerprint("root") == new.shallow_fingerprint("root")

    def test_record_key_selects_fingerprint_kind(self):
        index = fingerprints_for(CHAIN_SOURCE)
        assert (
            index.record_key("root", MODULAR).fingerprint
            == index.shallow_fingerprint("root")
        )
        assert (
            index.record_key("root", WHOLE_PROGRAM).fingerprint
            == index.cone_fingerprint("root")
        )
