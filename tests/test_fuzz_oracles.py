"""The oracle battery: all-pass on generated programs, failure plumbing."""

from __future__ import annotations

import json

import pytest

from repro.fuzz.generator import generate_program
from repro.fuzz.oracles import (
    DEFAULT_ORACLES,
    INJECTED_ORACLES,
    OracleVerdict,
    first_failure,
    oracle_names,
    prepare,
    run_battery,
)

SWEEP = 10  # tier-1 sweep; CI's fuzz-smoke job runs the full 200


# ---------------------------------------------------------------------------
# The battery passes on generated programs
# ---------------------------------------------------------------------------


def test_battery_passes_on_a_seed_sweep():
    for seed in range(SWEEP):
        program = generate_program(seed)
        verdicts = run_battery(program.source, program.crate_name, seed=seed)
        assert [v.oracle for v in verdicts] == list(DEFAULT_ORACLES)
        failing = first_failure(verdicts)
        assert failing is None, (
            f"seed {seed}: {failing.oracle} failed: {failing.detail}"
        )


def test_battery_respects_oracle_selection():
    program = generate_program(0)
    verdicts = run_battery(
        program.source, program.crate_name, oracles=["validate", "focus_agreement"]
    )
    assert [v.oracle for v in verdicts] == ["validate", "focus_agreement"]
    assert all(v.ok for v in verdicts)


def test_unknown_oracle_name_is_rejected():
    from repro.errors import ReproError

    with pytest.raises(ReproError, match="unknown oracle"):
        run_battery("fn f() -> u32 { 1 }", oracles=["no_such_oracle"])


def test_oracle_names_lists_injected_variants():
    names = oracle_names(include_injected=True)
    assert set(DEFAULT_ORACLES) <= set(names)
    for injected in INJECTED_ORACLES:
        assert f"injected:{injected}" in names


# ---------------------------------------------------------------------------
# Front-end failures become validate verdicts (the crash oracle)
# ---------------------------------------------------------------------------


def test_parse_failure_is_a_validate_verdict():
    verdicts = run_battery("fn f( {", crate_name="main")
    assert len(verdicts) == 1
    verdict = verdicts[0]
    assert verdict.oracle == "validate" and not verdict.ok
    assert verdict.kind() == "ParseError"


def test_type_failure_is_a_validate_verdict_with_kind():
    verdicts = run_battery("fn f() -> u32 { true }", crate_name="main")
    assert not verdicts[0].ok
    assert verdicts[0].kind() == "TypeError_"


def test_verdict_json_shape():
    verdict = OracleVerdict("validate", ok=False, detail="ParseError: nope")
    data = json.loads(json.dumps(verdict.to_json_dict()))
    assert data == {"oracle": "validate", "ok": False, "detail": "ParseError: nope"}


# ---------------------------------------------------------------------------
# Injected oracles (the pipeline self-test hooks)
# ---------------------------------------------------------------------------


def test_injected_while_loop_fires_only_on_loops():
    with_loop = """
    fn f(n: u32) -> u32 {
        let mut i = 0;
        while i < n % 4 {
            i = i + 1;
        }
        i
    }
    """
    without_loop = "fn f(n: u32) -> u32 { n + 1 }"
    failing = run_battery(with_loop, "main", oracles=["injected:while_loop"])
    assert not failing[0].ok and failing[0].kind() == "injected_while_loop"
    passing = run_battery(without_loop, "main", oracles=["injected:while_loop"])
    assert passing[0].ok


def test_injected_deref_write_fires_on_deref_assignment():
    source = """
    fn f(a: u32) -> u32 {
        let mut x = a;
        let r = &mut x;
        *r = 7;
        x
    }
    """
    failing = run_battery(source, "main", oracles=["injected:deref_write"])
    assert not failing[0].ok and failing[0].kind() == "injected_deref_write"


# ---------------------------------------------------------------------------
# Individual oracle behaviours worth pinning
# ---------------------------------------------------------------------------


def test_noninterference_oracle_runs_ref_param_functions():
    """Functions with reference parameters are interpreted, not skipped."""
    program = generate_program(1)
    prep = prepare(program.source, program.crate_name)
    entry_fns = [
        fn for fn in prep.checked.program.local.functions()
        if fn.name.startswith("entry_") and fn.body is not None
    ]
    assert entry_fns
    verdicts = run_battery(
        program.source, program.crate_name, oracles=["noninterference"], seed=1
    )
    assert verdicts[0].ok, verdicts[0].detail


def test_cache_oracle_passes_and_uses_the_store():
    program = generate_program(2)
    verdicts = run_battery(
        program.source, program.crate_name, oracles=["cache_equality"]
    )
    assert verdicts[0].ok, verdicts[0].detail


def test_session_snapshot_is_cold_warm_byte_identical():
    """The session-level primitive behind the cache oracle."""
    from repro.service.cache import SummaryStore
    from repro.service.session import AnalysisSession

    program = generate_program(4)
    store = SummaryStore(max_entries=1 << 12)

    def snap() -> bytes:
        session = AnalysisSession(store=store, local_crate=program.crate_name)
        session.open_unit("fuzz", program.source)
        return json.dumps(
            session.snapshot(max_variables_per_function=4), sort_keys=True
        ).encode()

    assert snap() == snap()
    assert store.stats.to_dict()["hits"] > 0
