"""Tests for the MIR data structures (places, conflicts, bodies)."""

from repro.lang.types import Mutability, RefType, StructType, TupleType, U32
from repro.mir.ir import (
    Location,
    Place,
    PlaceElem,
    ProjectionKind,
)

from helpers import lowered_from


def place(local, *elems):
    projection = []
    for elem in elems:
        if elem == "*":
            projection.append(PlaceElem.deref())
        else:
            projection.append(PlaceElem.fld(elem))
    return Place(local, tuple(projection))


# ---------------------------------------------------------------------------
# Places and conflicts (Section 2.1)
# ---------------------------------------------------------------------------


def test_place_prefix_relation():
    assert place(1).is_prefix_of(place(1, 0))
    assert place(1, 0).is_prefix_of(place(1, 0, 1))
    assert not place(1, 0).is_prefix_of(place(1, 1))
    assert not place(1).is_prefix_of(place(2))


def test_conflicts_ancestor_and_descendant():
    # t conflicts with t.1 but t.0 does not conflict with t.1 (paper §2.1).
    t = place(1)
    t0 = place(1, 0)
    t1 = place(1, 1)
    assert t.conflicts_with(t1)
    assert t1.conflicts_with(t)
    assert not t0.conflicts_with(t1)


def test_conflicts_with_deref_projections():
    p = place(1, "*")
    assert p.conflicts_with(place(1, "*", 0))
    assert not place(1, "*", 0).conflicts_with(place(1, "*", 1))


def test_place_projection_helpers():
    base = Place.from_local(3)
    projected = base.project_field(2).project_deref()
    assert projected.projection[0].kind is ProjectionKind.FIELD
    assert projected.projection[1].is_deref()
    assert projected.has_deref()
    assert not base.has_deref()
    assert projected.base_local() == base


def test_place_pretty_printing():
    assert place(2, 0).pretty() == "_2.0"
    assert place(1, "*").pretty() == "(*_1)"
    assert place(1, "*", 1).pretty() == "(*_1).1"


def test_location_ordering_and_pretty():
    a = Location(0, 1)
    b = Location(1, 0)
    assert a < b
    assert a.pretty() == "bb0[1]"


# ---------------------------------------------------------------------------
# Bodies
# ---------------------------------------------------------------------------


SOURCE = """
struct Pair { a: u32, b: u32 }

fn swap_add(p: &mut Pair, extra: u32) -> u32 {
    let total = p.a + p.b + extra;
    p.a = p.b;
    total
}
"""


def get_body():
    _checked, lowered = lowered_from(SOURCE)
    return lowered.body("swap_add")


def test_body_locals_layout():
    body = get_body()
    assert body.locals[0].index == 0  # return place
    assert body.arg_count == 2
    assert [local.name for local in body.arg_locals()] == ["p", "extra"]
    assert body.local_by_name("total") is not None
    assert body.local_by_name("missing") is None


def test_body_place_ty_walks_projections():
    body = get_body()
    p_local = body.local_by_name("p").index
    p = Place.from_local(p_local)
    assert isinstance(body.place_ty(p), RefType)
    pointee = body.place_ty(p.project_deref())
    assert isinstance(pointee, StructType)
    field = body.place_ty(p.project_deref().project_field(0))
    assert field == U32
    assert body.place_ty(p.project_field(3)) is None


def test_body_locations_cover_all_instructions():
    body = get_body()
    locations = list(body.locations())
    assert len(locations) == body.num_instructions()
    # The last location of each block is its terminator.
    for block_index, block in enumerate(body.blocks):
        term_loc = body.terminator_location(block_index)
        assert term_loc.statement == len(block.statements)
        assert body.statement_at(term_loc) is None


def test_body_predecessors_and_returns():
    body = get_body()
    preds = body.predecessors()
    assert set(preds.keys()) == set(range(len(body.blocks)))
    return_blocks = body.return_blocks()
    assert len(return_blocks) == 1
    # Every block except the entry has at least one predecessor.
    for block_index, block_preds in preds.items():
        if block_index != 0:
            assert block_preds


def test_user_locals_have_names():
    body = get_body()
    names = {local.name for local in body.user_locals()}
    assert {"p", "extra", "total"} <= names
