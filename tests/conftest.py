"""Shared fixtures for the test suite.

The reusable sources and construction helpers live in :mod:`helpers`
(``tests/helpers.py``); test modules import them explicitly, which keeps this
file fixture-only and avoids the ``conftest``-as-a-module ambiguity between
``tests/`` and ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from helpers import GET_COUNT_SOURCE, HELPER_CALLER_SOURCE

from repro.core.engine import FlowEngine


@pytest.fixture
def get_count_engine() -> FlowEngine:
    return FlowEngine.from_source(GET_COUNT_SOURCE)


@pytest.fixture
def helper_caller_engine() -> FlowEngine:
    return FlowEngine.from_source(HELPER_CALLER_SOURCE)
