"""Tests for the sampling profiler: span-stack publication, attribution,
collapsed/flamegraph exports, the Chrome trace merge, and the kill switch."""

from __future__ import annotations

import threading
import time

import pytest

from helpers import GET_COUNT_SOURCE

from repro.core.config import MODULAR
from repro.core.engine import FlowEngine
from repro.lang.parser import parse_program
from repro.lang.typeck import check_program
from repro.obs import (
    Profile,
    SamplingProfiler,
    flamegraph_html,
    flamegraph_svg,
    set_enabled,
    span,
    start_trace,
)
from repro.obs import trace as trace_mod
from repro.obs.export import chrome_trace_document
from repro.obs.profile import UNTRACED, attach_profile_to_chrome


@pytest.fixture(autouse=True)
def _obs_enabled():
    set_enabled(True)
    yield
    set_enabled(True)
    # No test may leak span-stack publication or per-thread stacks.
    assert not trace_mod._PUBLISH_STACKS
    assert not trace_mod._THREAD_STACKS


def _analysis_workload(seconds: float = 0.25) -> int:
    """Re-run the real pipeline (parse → typecheck → fixpoint) until the
    clock runs out; returns the number of full passes."""
    passes = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        program = parse_program(GET_COUNT_SOURCE, local_crate="ws")
        checked = check_program(program)
        engine = FlowEngine(checked, config=MODULAR)
        for name in engine.local_function_names():
            engine.analyze_function(name)
        passes += 1
    return passes


# ---------------------------------------------------------------------------
# Profile container
# ---------------------------------------------------------------------------


class TestProfile:
    def test_empty_stack_lands_under_untraced(self):
        profile = Profile()
        profile.add(())
        profile.add((UNTRACED,))
        assert profile.counts == {(UNTRACED,): 2}
        assert profile.root_attribution() == {UNTRACED: 1.0}

    def test_root_attribution_sums_to_one(self):
        profile = Profile()
        profile.add(("analyze", "fixpoint"))
        profile.add(("analyze", "parse"))
        profile.add(("analyze", "parse"))
        profile.add((UNTRACED,))
        attribution = profile.root_attribution()
        assert sum(attribution.values()) == pytest.approx(1.0)
        assert attribution["analyze"] == pytest.approx(0.75)
        assert profile.attributed_fraction(["analyze"]) == pytest.approx(0.75)

    def test_collapsed_round_trip(self):
        profile = Profile()
        profile.add(("analyze", "fixpoint"))
        profile.add(("analyze", "fixpoint"))
        profile.add(("analyze", "parse"))
        profile.add((UNTRACED,))
        text = profile.to_collapsed()
        assert "analyze;fixpoint 2" in text
        back = Profile.from_collapsed(text)
        assert back.counts == profile.counts

    def test_collapsed_sanitises_separator_characters(self):
        profile = Profile()
        profile.add(("bad;frame", "multi\nline"))
        text = profile.to_collapsed()
        assert text == "bad:frame;multi line 1\n"
        back = Profile.from_collapsed(text)
        assert back.counts == {("bad:frame", "multi line"): 1}

    def test_from_collapsed_skips_malformed_lines(self):
        text = "a;b 3\n\nnot-a-count x\njust-one-token\nc 2\n"
        profile = Profile.from_collapsed(text)
        assert profile.counts == {("a", "b"): 3, ("c",): 2}

    def test_event_timestamps_are_bounded(self):
        profile = Profile(max_events=2)
        for index in range(5):
            profile.add(("s",), ts_ns=index)
        assert profile.total_samples == 5  # counts never dropped
        assert len(profile.events) == 2
        assert profile.dropped_events == 3
        assert profile.to_dict()["dropped_events"] == 3


# ---------------------------------------------------------------------------
# Span-stack publication (the trace-side contract)
# ---------------------------------------------------------------------------


class TestSpanStackPublication:
    def test_stacks_published_only_while_attached(self):
        tid = threading.get_ident()
        with start_trace("request"):
            # No profiler attached: the traced path publishes nothing.
            assert trace_mod.thread_span_stack(tid) == ()
        trace_mod._publish_stacks(True)
        try:
            with start_trace("request"):
                with span("child"):
                    assert trace_mod.thread_span_stack(tid) == ("request", "child")
                assert trace_mod.thread_span_stack(tid) == ("request",)
            assert trace_mod.thread_span_stack(tid) == ()
        finally:
            trace_mod._publish_stacks(False)

    def test_push_pop_balance_when_attached_mid_trace(self):
        """A profiler attaching *inside* an open span must not unbalance the
        stack when that span exits (it was never pushed)."""
        tid = threading.get_ident()
        with start_trace("request"):
            with span("outer"):
                trace_mod._publish_stacks(True)
                try:
                    with span("inner"):
                        # Only the spans opened after attach are visible.
                        assert trace_mod.thread_span_stack(tid) == ("inner",)
                    assert trace_mod.thread_span_stack(tid) == ()
                finally:
                    trace_mod._publish_stacks(False)

    def test_refcounted_attach_detach(self):
        trace_mod._publish_stacks(True)
        trace_mod._publish_stacks(True)
        trace_mod._publish_stacks(False)
        assert trace_mod._PUBLISH_STACKS  # still one holder
        trace_mod._publish_stacks(False)
        assert not trace_mod._PUBLISH_STACKS

    def test_unknown_thread_reads_empty(self):
        assert trace_mod.thread_span_stack(999999999) == ()


# ---------------------------------------------------------------------------
# The sampler itself
# ---------------------------------------------------------------------------


class TestSamplingProfiler:
    def test_traced_analysis_attribution_at_least_ninety_percent(self):
        """The acceptance gate: profiling a traced analysis workload must
        attribute ≥90% of samples to the trace's span names."""
        profiler = SamplingProfiler(hz=250.0).start()
        try:
            with start_trace("analyze") as trace:
                passes = _analysis_workload(0.3)
        finally:
            profile = profiler.stop()
        assert trace is not None and passes > 0
        assert profile.total_samples >= 10, "sampler captured too few samples"
        assert profile.attributed_fraction(["analyze"]) >= 0.90
        # Deeper frames carry real span names from the pipeline vocabulary.
        frames = {frame for stack in profile.counts for frame in stack}
        assert "analyze" in frames

    def test_untraced_samples_account_fully(self):
        profiler = SamplingProfiler(hz=200.0).start()
        try:
            deadline = time.perf_counter() + 0.1
            while time.perf_counter() < deadline:
                pass
        finally:
            profile = profiler.stop()
        assert profile.total_samples > 0
        assert profile.root_attribution() == {UNTRACED: 1.0}

    def test_context_manager_and_double_start_are_idempotent(self):
        with SamplingProfiler(hz=100.0) as profiler:
            assert profiler.start() is profiler  # second start is a no-op
            time.sleep(0.05)
        assert profiler.profile.duration_seconds > 0
        assert not trace_mod._PUBLISH_STACKS
        profiler.stop()  # second stop is a no-op too

    def test_kill_switch_keeps_profiler_inert(self):
        set_enabled(False)
        profiler = SamplingProfiler(hz=100.0).start()
        time.sleep(0.03)
        profile = profiler.stop()
        assert profile.total_samples == 0
        assert profile.started_ns is None
        assert not trace_mod._PUBLISH_STACKS

    def test_kill_switch_mid_run_stops_sampling(self):
        profiler = SamplingProfiler(hz=200.0).start()
        time.sleep(0.05)
        set_enabled(False)
        time.sleep(0.05)
        set_enabled(True)
        mid = profiler.profile.total_samples
        time.sleep(0.05)
        profile = profiler.stop()
        # The sampling thread exited at the first disabled tick; re-enabling
        # does not resurrect it.
        assert profile.total_samples == mid

    def test_explicit_thread_ids_sample_other_threads(self):
        ready = threading.Event()
        release = threading.Event()
        holder = {}

        def worker():
            holder["tid"] = threading.get_ident()
            trace_mod._publish_stacks(True)
            try:
                with start_trace("worker-request"):
                    ready.set()
                    release.wait(timeout=5)
            finally:
                trace_mod._publish_stacks(False)

        thread = threading.Thread(target=worker)
        thread.start()
        assert ready.wait(timeout=5)
        profiler = SamplingProfiler(hz=200.0, thread_ids=[holder["tid"]]).start()
        time.sleep(0.1)
        profile = profiler.stop()
        release.set()
        thread.join(timeout=5)
        assert profile.attributed_fraction(["worker-request"]) > 0.5


# ---------------------------------------------------------------------------
# Flamegraph + Chrome exports
# ---------------------------------------------------------------------------


def _sample_profile() -> Profile:
    profile = Profile(hz=97.0)
    for _ in range(6):
        profile.add(("analyze", "fixpoint"), ts_ns=1_000)
    for _ in range(3):
        profile.add(("analyze", "parse"), ts_ns=2_000)
    profile.add((UNTRACED,), ts_ns=3_000)
    profile.started_ns = 0
    profile.ended_ns = 1_000_000_000
    return profile


class TestFlamegraph:
    def test_svg_is_deterministic_and_carries_tooltips(self):
        profile = _sample_profile()
        svg = flamegraph_svg(profile, title="test profile")
        assert svg == flamegraph_svg(profile, title="test profile")
        assert svg.startswith("<svg ")
        assert "test profile — 10 samples" in svg
        assert "analyze — 9 samples (90.0%)" in svg
        assert "fixpoint — 6 samples (60.0%)" in svg
        assert "(untraced) — 1 samples (10.0%)" in svg

    def test_svg_escapes_markup_in_frame_names(self):
        profile = Profile()
        profile.add(('<script>"x"</script>',))
        svg = flamegraph_svg(profile)
        assert "<script>" not in svg
        assert "&lt;script&gt;" in svg

    def test_html_wraps_the_svg(self):
        html = flamegraph_html(_sample_profile(), title="page")
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg " in html and "<title>page</title>" in html

    def test_chrome_merge_shares_the_trace_clock(self):
        with start_trace("request") as trace:
            with span("work"):
                time.sleep(0.005)
        profile = Profile(hz=97.0)
        mid_ns = trace.root.start_ns + (trace.root.end_ns - trace.root.start_ns) // 2
        profile.add(("request", "work"), ts_ns=mid_ns)
        document = chrome_trace_document(trace)
        attach_profile_to_chrome(document, profile, base_ns=trace.root.start_ns)
        assert len(document["samples"]) == 1
        sample = document["samples"][0]
        # The sample's µs timestamp falls inside the root span's event.
        root_event = document["traceEvents"][0]
        assert 0 <= sample["ts"] <= root_event["dur"]
        # stackFrames parent chain: work -> request.
        leaf = document["stackFrames"][sample["sf"]]
        assert leaf["name"] == "work"
        assert document["stackFrames"][leaf["parent"]]["name"] == "request"

    def test_chrome_merge_interns_shared_prefixes(self):
        profile = Profile()
        profile.add(("a", "b", "c"), ts_ns=10)
        profile.add(("a", "b", "d"), ts_ns=20)
        document = attach_profile_to_chrome({"traceEvents": []}, profile, base_ns=0)
        # a, a;b, a;b;c, a;b;d — shared prefixes interned once.
        assert len(document["stackFrames"]) == 4
        parents = [frame.get("parent") for frame in document["stackFrames"].values()]
        assert sum(1 for p in parents if p is None) == 1
