"""Tests for the MiniRust parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse_crate, parse_expr, parse_program
from repro.lang.types import BoolType, Mutability, RefType, StructType, TupleType, U32Type, UnitType


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def test_parse_integer_literal():
    expr = parse_expr("42")
    assert isinstance(expr, ast.Literal)
    assert expr.value == 42


def test_parse_bool_literals():
    assert parse_expr("true").value is True
    assert parse_expr("false").value is False


def test_parse_unit_literal():
    expr = parse_expr("()")
    assert isinstance(expr, ast.Literal)
    assert expr.value is None


def test_arithmetic_precedence():
    expr = parse_expr("1 + 2 * 3")
    assert isinstance(expr, ast.Binary)
    assert expr.op is ast.BinOp.ADD
    assert isinstance(expr.rhs, ast.Binary)
    assert expr.rhs.op is ast.BinOp.MUL


def test_comparison_binds_looser_than_addition():
    expr = parse_expr("a + 1 < b")
    assert expr.op is ast.BinOp.LT
    assert isinstance(expr.lhs, ast.Binary)


def test_logical_operators_precedence():
    expr = parse_expr("a && b || c")
    assert expr.op is ast.BinOp.OR
    assert isinstance(expr.lhs, ast.Binary)
    assert expr.lhs.op is ast.BinOp.AND


def test_unary_not_and_negation():
    expr = parse_expr("!flag")
    assert isinstance(expr, ast.Unary)
    assert expr.op is ast.UnOp.NOT
    neg = parse_expr("-x")
    assert neg.op is ast.UnOp.NEG


def test_parse_deref_and_borrow():
    deref = parse_expr("*p")
    assert isinstance(deref, ast.Deref)
    borrow = parse_expr("&mut x")
    assert isinstance(borrow, ast.Borrow)
    assert borrow.mutable is True
    shared = parse_expr("&x")
    assert shared.mutable is False


def test_field_access_chain():
    expr = parse_expr("a.0.1")
    assert isinstance(expr, ast.FieldAccess)
    assert expr.fld == 1
    assert isinstance(expr.base, ast.FieldAccess)
    assert expr.base.fld == 0


def test_named_field_access():
    expr = parse_expr("point.x")
    assert isinstance(expr, ast.FieldAccess)
    assert expr.fld == "x"


def test_call_with_arguments():
    expr = parse_expr("f(1, x, g(2))")
    assert isinstance(expr, ast.Call)
    assert expr.func == "f"
    assert len(expr.args) == 3
    assert isinstance(expr.args[2], ast.Call)


def test_tuple_expression():
    expr = parse_expr("(1, 2, 3)")
    assert isinstance(expr, ast.TupleExpr)
    assert len(expr.elements) == 3


def test_parenthesised_expression_is_not_tuple():
    expr = parse_expr("(1 + 2)")
    assert isinstance(expr, ast.Binary)


def test_struct_literal():
    expr = parse_expr("Point { x: 1, y: 2 }")
    assert isinstance(expr, ast.StructLit)
    assert expr.struct_name == "Point"
    assert [name for name, _ in expr.fields] == ["x", "y"]


def test_if_expression_with_else():
    expr = parse_expr("if x > 1 { 1 } else { 2 }")
    assert isinstance(expr, ast.If)
    assert expr.else_block is not None


def test_if_else_if_chain():
    expr = parse_expr("if a { 1 } else if b { 2 } else { 3 }")
    assert isinstance(expr.else_block.tail, ast.If)


def test_trailing_input_rejected():
    with pytest.raises(ParseError):
        parse_expr("1 + 2 extra")


# ---------------------------------------------------------------------------
# Types and items
# ---------------------------------------------------------------------------


def test_parse_function_signature_types():
    crate = parse_crate("fn f(a: u32, b: bool, c: (u32, u32), d: &mut u32) -> u32 { a }")
    fn = crate.function("f")
    assert isinstance(fn.params[0].ty, U32Type)
    assert isinstance(fn.params[1].ty, BoolType)
    assert isinstance(fn.params[2].ty, TupleType)
    ref = fn.params[3].ty
    assert isinstance(ref, RefType)
    assert ref.mutability is Mutability.MUT


def test_parse_reference_with_lifetime():
    crate = parse_crate("fn f<'a>(x: &'a u32) -> &'a u32 { x }")
    fn = crate.function("f")
    assert fn.lifetime_params == ["a"]
    assert fn.params[0].ty.lifetime == "a"
    assert fn.ret_type.lifetime == "a"


def test_parse_unit_return_type_defaults():
    crate = parse_crate("fn f(x: u32) { }")
    assert isinstance(crate.function("f").ret_type, UnitType)


def test_parse_struct_definition():
    crate = parse_crate("struct Point { x: u32, y: u32 }")
    struct = crate.structs()[0]
    assert struct.name == "Point"
    assert [f.name for f in struct.fields] == ["x", "y"]
    assert not struct.opaque


def test_parse_opaque_struct():
    crate = parse_crate("struct Vec;")
    assert crate.structs()[0].opaque


def test_parse_extern_function_has_no_body():
    crate = parse_crate("extern fn read(x: &mut u32) -> u32;")
    fn = crate.function("read")
    assert fn.is_extern
    assert fn.body is None


def test_fn_with_semicolon_body_is_extern():
    crate = parse_crate("fn opaque(x: u32) -> u32;")
    assert crate.function("opaque").body is None


def test_parse_program_with_crates():
    program = parse_program(
        """
        crate deps {
            extern fn helper(x: u32) -> u32;
        }
        crate app {
            fn main_fn() -> u32 { helper(1) }
        }
        """,
        local_crate="app",
    )
    assert {c.name for c in program.crates} == {"deps", "app"}
    assert program.local_crate == "app"
    assert program.function("helper") is not None
    assert program.function_crate("main_fn") == "app"


def test_program_without_crate_keyword_goes_to_main():
    program = parse_program("fn f() -> u32 { 1 }")
    assert program.local_crate == "main"
    assert program.local.function("f") is not None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


def body_of(source):
    return parse_crate(source).functions()[0].body


def test_let_statement_with_type_and_mut():
    body = body_of("fn f() { let mut x: u32 = 1; }")
    let = body.stmts[0]
    assert isinstance(let, ast.LetStmt)
    assert let.mutable
    assert isinstance(let.declared_ty, U32Type)


def test_assignment_statement():
    body = body_of("fn f(p: &mut u32) { *p = 3; }")
    assign = body.stmts[0]
    assert isinstance(assign, ast.AssignStmt)
    assert isinstance(assign.target, ast.Deref)


def test_while_with_break_and_continue():
    body = body_of(
        """
        fn f() {
            while true {
                break;
                continue;
            }
        }
        """
    )
    loop_stmt = body.stmts[0]
    assert isinstance(loop_stmt, ast.WhileStmt)
    kinds = [type(s) for s in loop_stmt.body.stmts]
    assert ast.BreakStmt in kinds
    assert ast.ContinueStmt in kinds


def test_return_statement_with_and_without_value():
    body = body_of("fn f(x: u32) -> u32 { return x; }")
    assert isinstance(body.stmts[0], ast.ReturnStmt)
    body2 = body_of("fn f() { return; }")
    assert body2.stmts[0].value is None


def test_tail_expression_detected():
    body = body_of("fn f(x: u32) -> u32 { let y = x; y + 1 }")
    assert body.tail is not None
    assert isinstance(body.tail, ast.Binary)


def test_if_as_statement_without_semicolon():
    body = body_of("fn f(x: u32) { if x > 1 { } let y = 2; }")
    assert isinstance(body.stmts[0], ast.ExprStmt)
    assert isinstance(body.stmts[1], ast.LetStmt)


def test_struct_literal_not_parsed_in_condition():
    # `if x { ... }` must treat x as a variable, not a struct literal start.
    body = body_of("fn f(x: bool) { if x { } let y = 1; }")
    if_expr = body.stmts[0].expr
    assert isinstance(if_expr, ast.If)
    assert isinstance(if_expr.cond, ast.Var)


def test_missing_semicolon_is_parse_error():
    with pytest.raises(ParseError):
        parse_crate("fn f() { let x = 1 let y = 2; }")


def test_unknown_item_is_parse_error():
    with pytest.raises(ParseError):
        parse_crate("impl Foo {}")


def test_walk_block_visits_all_expressions():
    fn = parse_crate("fn f(x: u32) -> u32 { if x > 1 { x } else { x + 1 } }").functions()[0]
    nodes = list(ast.walk_block(fn.body))
    assert any(isinstance(n, ast.Binary) for n in nodes)
    assert any(isinstance(n, ast.If) for n in nodes)


def test_called_functions_helper():
    fn = parse_crate("fn f(x: u32) -> u32 { g(h(x)) }").functions()[0]
    assert sorted(ast.called_functions(fn)) == ["g", "h"]
