"""Tests for the MiniRust type representations."""

from repro.lang.types import (
    BOOL,
    FnType,
    Mutability,
    RefType,
    StructRegistry,
    StructType,
    TupleType,
    U32,
    UNIT,
    num_fields,
    peel_refs,
    projection_type,
    ref,
    ref_depth,
    tuple_of,
    types_compatible,
)


def test_base_types_are_copy():
    assert UNIT.is_copy()
    assert U32.is_copy()
    assert BOOL.is_copy()


def test_shared_ref_is_copy_mut_ref_is_not():
    assert ref(U32, mutable=False).is_copy()
    assert not ref(U32, mutable=True).is_copy()


def test_tuple_copy_depends_on_elements():
    assert tuple_of(U32, BOOL).is_copy()
    assert not tuple_of(U32, ref(U32, mutable=True)).is_copy()


def test_reference_equality_erases_lifetimes():
    a = RefType(U32, Mutability.SHARED, "a")
    b = RefType(U32, Mutability.SHARED, "b")
    assert a == b
    assert hash(a) == hash(b)


def test_reference_equality_distinguishes_mutability():
    assert RefType(U32, Mutability.SHARED) != RefType(U32, Mutability.MUT)


def test_struct_equality_is_nominal():
    a = StructType("Point", (("x", U32),))
    b = StructType("Point", (("x", U32), ("y", U32)))
    c = StructType("Other", (("x", U32),))
    assert a == b
    assert a != c


def test_lifetimes_collects_all_names():
    ty = tuple_of(RefType(U32, Mutability.SHARED, "a"), RefType(BOOL, Mutability.MUT, "b"))
    assert set(ty.lifetimes()) == {"a", "b"}


def test_contains_ref_with_mutability_filter():
    ty = tuple_of(RefType(U32, Mutability.SHARED, "a"), U32)
    assert ty.contains_ref()
    assert ty.contains_ref(Mutability.SHARED)
    assert not ty.contains_ref(Mutability.MUT)


def test_nested_ref_contains_mutable():
    inner = RefType(U32, Mutability.MUT)
    outer = RefType(inner, Mutability.SHARED)
    assert outer.contains_ref(Mutability.MUT)


def test_peel_refs_and_depth():
    ty = RefType(RefType(U32, Mutability.SHARED), Mutability.MUT)
    assert peel_refs(ty) == U32
    assert ref_depth(ty) == 2
    assert ref_depth(U32) == 0


def test_types_compatible_mut_coerces_to_shared():
    assert types_compatible(ref(U32), ref(U32, mutable=True))
    assert not types_compatible(ref(U32, mutable=True), ref(U32))


def test_types_compatible_tuples_recursive():
    expected = tuple_of(U32, ref(U32))
    actual = tuple_of(U32, ref(U32, mutable=True))
    assert types_compatible(expected, actual)
    assert not types_compatible(expected, tuple_of(U32, U32))


def test_projection_type_for_tuple_and_struct():
    tup = tuple_of(U32, BOOL)
    assert projection_type(tup, 1) == BOOL
    assert projection_type(tup, 2) is None
    struct = StructType("S", (("a", U32), ("b", BOOL)))
    assert projection_type(struct, 0) == U32
    assert num_fields(struct) == 2
    assert num_fields(U32) == 0


def test_struct_registry_resolves_nested_types():
    registry = StructRegistry()
    inner = StructType("Inner", (("v", U32),))
    registry.define(inner)
    # Field types are resolved against the registry when the struct is built,
    # mirroring what the type checker's collection passes do.
    registry.define(StructType("Outer", (("i", registry.resolve(StructType("Inner"))),)))
    resolved = registry.resolve(RefType(StructType("Outer"), Mutability.MUT))
    assert isinstance(resolved, RefType)
    assert resolved.pointee.field_type("i").fields == inner.fields


def test_struct_registry_field_lookup():
    struct = StructType("Pair", (("left", U32), ("right", BOOL)))
    assert struct.field_index("right") == 1
    assert struct.field_index("missing") is None
    assert struct.field_names() == ["left", "right"]


def test_fn_type_pretty():
    fn_ty = FnType((U32, BOOL), UNIT)
    assert fn_ty.pretty() == "fn(u32, bool) -> ()"


def test_pretty_printing_round_trip_strings():
    assert ref(U32, mutable=True).pretty() == "&mut u32"
    assert RefType(U32, Mutability.SHARED, "a").pretty() == "&'a u32"
    assert tuple_of(U32, BOOL).pretty() == "(u32, bool)"
    assert tuple_of(U32).pretty() == "(u32,)"
