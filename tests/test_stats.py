"""Tests for the evaluation statistics helpers."""

import math

import pytest

from repro.eval.stats import (
    crate_correlation,
    histogram,
    interaction_regression,
    per_crate_nonzero_counts,
    per_crate_variable_counts,
    percent_differences,
    summarize_differences,
)


def key(crate, fn, var):
    return (crate, fn, var)


def test_percent_differences_basic_formula():
    baseline = {key("c", "f", "x"): 2, key("c", "f", "y"): 4}
    other = {key("c", "f", "x"): 5, key("c", "f", "y"): 4}
    diffs = percent_differences(baseline, other)
    assert diffs[key("c", "f", "x")] == pytest.approx(150.0)
    assert diffs[key("c", "f", "y")] == pytest.approx(0.0)


def test_percent_differences_skips_missing_and_clamps_zero_baseline():
    baseline = {key("c", "f", "x"): 0, key("c", "f", "gone"): 3}
    other = {key("c", "f", "x"): 2}
    diffs = percent_differences(baseline, other)
    assert diffs == {key("c", "f", "x"): pytest.approx(200.0)}


def test_summarize_differences_headline_numbers():
    diffs = {
        key("c", "f", "a"): 0.0,
        key("c", "f", "b"): 0.0,
        key("c", "f", "c"): 50.0,
        key("c", "f", "d"): 150.0,
    }
    summary = summarize_differences(diffs, label="test")
    assert summary.total == 4
    assert summary.num_zero == 2
    assert summary.num_nonzero == 2
    assert summary.fraction_zero == pytest.approx(0.5)
    assert summary.median_nonzero_percent == pytest.approx(100.0)
    assert summary.mean_nonzero_percent == pytest.approx(100.0)
    assert summary.max_percent == pytest.approx(150.0)
    row = summary.row()
    assert row["comparison"] == "test"
    assert row["identical_pct"] == 50.0


def test_summarize_differences_empty_input():
    summary = summarize_differences({}, label="empty")
    assert summary.total == 0
    assert summary.fraction_zero == 1.0
    assert summary.median_nonzero_percent == 0.0


def test_median_with_odd_number_of_nonzero_values():
    diffs = {key("c", "f", str(i)): value for i, value in enumerate([10.0, 20.0, 90.0])}
    summary = summarize_differences(diffs)
    assert summary.median_nonzero_percent == pytest.approx(20.0)


def test_histogram_has_zero_bin_and_counts_everything():
    diffs = {key("c", "f", str(i)): value for i, value in enumerate([0.0, 0.0, 5.0, 50.0, 500.0])}
    bins = histogram(diffs, num_bins=5)
    assert bins[0] == ("0", 2)
    assert sum(count for _label, count in bins[1:]) == 3


def test_histogram_without_positive_values():
    diffs = {key("c", "f", "a"): 0.0}
    bins = histogram(diffs, num_bins=4)
    assert bins == [("0", 1)]


def test_histogram_log_scale_bins_are_monotone():
    diffs = {key("c", "f", str(i)): float(v) for i, v in enumerate([1, 10, 100, 1000])}
    bins = histogram(diffs, num_bins=6, include_zero_bin=False)
    assert sum(count for _label, count in bins) == 4


def test_per_crate_counts():
    diffs = {
        key("a", "f", "x"): 0.0,
        key("a", "f", "y"): 10.0,
        key("b", "g", "z"): 20.0,
    }
    nonzero = per_crate_nonzero_counts(diffs)
    totals = per_crate_variable_counts(diffs.keys())
    assert nonzero == {"a": 1, "b": 1}
    assert totals == {"a": 2, "b": 1}


def test_crate_correlation_perfect_linear_relationship():
    diffs = {}
    for crate_index, crate in enumerate(["c1", "c2", "c3", "c4"]):
        total = 10 * (crate_index + 1)
        nonzero = 2 * (crate_index + 1)
        for i in range(total):
            value = 10.0 if i < nonzero else 0.0
            diffs[key(crate, "f", str(i))] = value
    assert crate_correlation(diffs) == pytest.approx(1.0)


def test_crate_correlation_single_crate_is_one():
    diffs = {key("only", "f", "x"): 1.0}
    assert crate_correlation(diffs) == 1.0


def test_interaction_regression_recovers_additive_effects():
    # Construct synthetic sizes: baseline 10, mut-blind adds 4, ref-blind adds
    # 2, no interaction.  The regression must find significant main effects
    # and an interaction term near zero.
    sizes = {}
    n = 200
    for mut_blind in (False, True):
        for ref_blind in (False, True):
            table = {}
            for i in range(n):
                value = 10 + (4 if mut_blind else 0) + (2 if ref_blind else 0)
                # Small deterministic jitter so the variance is not zero.
                value += (i % 3) - 1
                table[key("c", "f", f"v{i}")] = value
            sizes[(mut_blind, ref_blind)] = table
    regression = interaction_regression(sizes)
    assert regression.n_observations == 4 * n
    assert regression.term("mut_blind").coefficient == pytest.approx(4.0, abs=0.3)
    assert regression.term("ref_blind").coefficient == pytest.approx(2.0, abs=0.3)
    assert abs(regression.term("mut_blind:ref_blind").coefficient) < 0.3
    assert regression.term("mut_blind").significant()
    assert regression.term("ref_blind").significant()
    assert not regression.term("mut_blind:ref_blind").significant()


def test_interaction_regression_unknown_term_raises():
    sizes = {(False, False): {key("c", "f", "x"): 1}}
    regression = interaction_regression(sizes)
    with pytest.raises(KeyError):
        regression.term("nope")


# ---------------------------------------------------------------------------
# Shared latency-percentile helpers (used by perf, load, and the benchmarks)
# ---------------------------------------------------------------------------


def test_percentile_nearest_rank():
    from repro.eval.stats import percentile

    samples = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert percentile(samples, 0.0) == 1.0
    assert percentile(samples, 0.5) == 3.0
    assert percentile(samples, 1.0) == 5.0
    # Nearest-rank: every answer is an actual sample.
    assert percentile(samples, 0.9) in samples
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.99) == 7.0


def test_median_interpolates_even_counts():
    from repro.eval.stats import median

    assert median([]) == 0.0
    assert median([3.0]) == 3.0
    assert median([1.0, 2.0, 4.0]) == 2.0
    assert median([1.0, 2.0, 3.0, 4.0]) == pytest.approx(2.5)


def test_latency_summary_ms_units_and_keys():
    from repro.eval.stats import latency_summary_ms

    samples = [i / 1000.0 for i in range(1, 101)]  # 1ms .. 100ms, in seconds
    summary = latency_summary_ms(samples)
    assert set(summary) == {"p50", "p95", "p99"}
    assert summary["p50"] == pytest.approx(50.0, abs=1.0)
    assert summary["p95"] == pytest.approx(95.0, abs=1.0)
    assert summary["p99"] == pytest.approx(99.0, abs=1.0)
    assert latency_summary_ms([], fractions=(0.5,)) == {"p50": 0.0}


def test_percentile_reexported_from_perf():
    from repro.eval.perf import percentile as perf_percentile
    from repro.eval.stats import percentile

    assert perf_percentile is percentile


# ---------------------------------------------------------------------------
# Totality properties (documented in the stats docstrings, pinned here)
# ---------------------------------------------------------------------------


def _pseudo_random_samples(seed: int, count: int) -> list:
    """Deterministic LCG sample sets — property-style coverage, no RNG deps."""
    state, samples = seed, []
    for _ in range(count):
        state = (state * 1103515245 + 12345) % (2**31)
        samples.append(state / 2**31 * 1000.0)
    return samples


@pytest.mark.parametrize("seed", [1, 7, 42, 1234])
@pytest.mark.parametrize("count", [1, 2, 3, 10, 101])
def test_percentile_result_is_always_an_actual_sample(seed, count):
    from repro.eval.stats import percentile

    samples = _pseudo_random_samples(seed, count)
    for fraction in (0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
        result = percentile(samples, fraction)
        assert result in samples  # nearest-rank, never interpolated
        assert min(samples) <= result <= max(samples)


@pytest.mark.parametrize("seed", [3, 99])
def test_percentile_is_monotone_in_the_fraction(seed):
    from repro.eval.stats import percentile

    samples = _pseudo_random_samples(seed, 50)
    fractions = [i / 20 for i in range(21)]
    results = [percentile(samples, f) for f in fractions]
    assert results == sorted(results)
    assert results[0] == min(samples) and results[-1] == max(samples)


def test_percentile_total_on_degenerate_inputs():
    from repro.eval.stats import percentile

    # Empty input and out-of-range fractions must not raise: the benchmark
    # harness feeds these (zero-sample warm runs, caller-supplied fractions).
    assert percentile([], 0.5) == 0.0
    assert percentile([], 0.0) == 0.0
    assert percentile([2.0], -1.0) == 2.0  # fraction clamps low
    assert percentile([2.0], 7.5) == 2.0  # fraction clamps high
    assert percentile([1.0, 2.0], 7.5) == 2.0
    assert percentile([1.0, 2.0], -7.5) == 1.0


def test_percentile_is_permutation_invariant():
    from repro.eval.stats import percentile

    samples = _pseudo_random_samples(11, 31)
    shuffled = samples[7:] + samples[:7]
    for fraction in (0.1, 0.5, 0.99):
        assert percentile(samples, fraction) == percentile(shuffled, fraction)


@pytest.mark.parametrize("count", [0, 1, 5, 100])
def test_latency_summary_ms_is_total_and_ordered(count):
    from repro.eval.stats import latency_summary_ms

    samples = _pseudo_random_samples(5, count) if count else []
    summary = latency_summary_ms(samples, fractions=(0.50, 0.95, 0.99))
    assert set(summary) == {"p50", "p95", "p99"}
    assert summary["p50"] <= summary["p95"] <= summary["p99"]
    if count == 0:
        assert summary == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    else:
        # Values convert seconds -> ms and stay within the sample envelope
        # (modulo the 4-digit rounding the summary applies).
        assert summary["p99"] <= max(samples) * 1000.0 + 1e-3
        assert summary["p50"] >= min(samples) * 1000.0 - 1e-3
