"""Replay the transcripts of ``docs/PROTOCOL.md`` against a live session.

Every fenced block tagged ``transcript`` in the protocol reference is
executed here: ``>`` lines are sent through a fresh
:class:`~repro.service.server.ConnectionHandler` (the same mux the socket
server uses, so both dialects and the ``workspace`` method are available),
and the JSON on each ``<`` line must be a recursive *subset* of the actual
response.  ``< null`` asserts that a notification produced no response.

Subset semantics: documented objects may omit fields (the volatile
``stats`` block, the release-dependent ``version`` strings); documented
lists must match the actual list exactly in length, element-wise by the
same rule.  This is precisely the compatibility contract the doc promises
clients ("responses grow additively; ignore unknown fields"), so the doc
cannot rot without this test failing.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.service.server import ConnectionHandler, WorkspaceRegistry

PROTOCOL_MD = Path(__file__).resolve().parents[1] / "docs" / "PROTOCOL.md"

BLOCK_RE = re.compile(r"```transcript\n(.*?)```", re.DOTALL)


def extract_transcripts():
    """``(block_index, [(request_json, expected_json_or_None), ...])`` pairs."""
    text = PROTOCOL_MD.read_text(encoding="utf-8")
    blocks = []
    for match in BLOCK_RE.finditer(text):
        steps = []
        pending_request = None
        for line in match.group(1).splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("> "):
                assert pending_request is None, "two requests without a response"
                pending_request = json.loads(line[2:])
            elif line.startswith("< "):
                assert pending_request is not None, "response without a request"
                body = line[2:]
                expected = None if body == "null" else json.loads(body)
                steps.append((pending_request, expected))
                pending_request = None
            else:
                raise AssertionError(f"transcript line must start with > or <: {line!r}")
        assert pending_request is None, "request without a response"
        blocks.append(steps)
    return blocks


def assert_subset(expected, actual, path="$"):
    """``expected`` must be contained in ``actual`` (see module docstring)."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected object, got {type(actual).__name__}"
        for key, value in expected.items():
            assert key in actual, f"{path}: missing key {key!r} (actual keys: {sorted(actual)})"
            assert_subset(value, actual[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: expected array, got {type(actual).__name__}"
        assert len(expected) == len(actual), (
            f"{path}: array length {len(actual)} != documented {len(expected)}"
        )
        for index, (exp, act) in enumerate(zip(expected, actual)):
            assert_subset(exp, act, f"{path}[{index}]")
    else:
        assert expected == actual, f"{path}: documented {expected!r} but got {actual!r}"


TRANSCRIPTS = extract_transcripts()


def test_protocol_doc_has_transcripts():
    assert len(TRANSCRIPTS) >= 7, "docs/PROTOCOL.md lost its transcript blocks"
    assert sum(len(block) for block in TRANSCRIPTS) >= 25


@pytest.mark.parametrize("index", range(len(TRANSCRIPTS)))
def test_transcript_replays(index):
    handler = ConnectionHandler(WorkspaceRegistry())
    for step, (request, expected) in enumerate(TRANSCRIPTS[index]):
        actual = handler.handle_message(request)
        where = f"block {index}, step {step}, request {json.dumps(request)[:80]}"
        if expected is None:
            assert actual is None, f"{where}: expected no response, got {actual}"
        else:
            assert actual is not None, f"{where}: expected a response, got none"
            assert_subset(expected, actual, path=where)
