"""Tests for the ownership-aware type checker."""

import pytest

from repro.errors import TypeCheckError
from repro.lang.parser import parse_program
from repro.lang.typeck import check_program
from repro.lang.types import BoolType, Mutability, RefType, StructType, TupleType, U32Type, UnitType

from helpers import checked_from


def check_err(source):
    with pytest.raises(TypeCheckError) as excinfo:
        checked_from(source)
    return str(excinfo.value)


# ---------------------------------------------------------------------------
# Successful checking and inference
# ---------------------------------------------------------------------------


def test_simple_function_checks():
    checked = checked_from("fn add(a: u32, b: u32) -> u32 { a + b }")
    assert checked.signature("add").arity() == 2


def test_let_infers_type_from_init():
    checked = checked_from("fn f() -> u32 { let x = 41; x + 1 }")
    assert isinstance(checked.function("f").locals["x"], U32Type)


def test_comparison_yields_bool():
    checked = checked_from("fn f(a: u32) -> bool { a < 10 }")
    assert isinstance(checked.signature("f").ret_type, BoolType)


def test_struct_field_access_types():
    checked = checked_from(
        """
        struct Point { x: u32, y: u32 }
        fn get_x(p: &Point) -> u32 { p.x }
        """
    )
    fn = checked.program.function("get_x")
    assert isinstance(fn.body.tail.ty, U32Type)
    assert fn.body.tail.field_index == 0


def test_tuple_field_access_resolution():
    checked = checked_from("fn f(t: (u32, bool)) -> bool { t.1 }")
    assert isinstance(checked.signature("f").ret_type, BoolType)


def test_auto_deref_field_access_through_reference():
    checked = checked_from(
        """
        struct S { v: u32 }
        fn read(s: &S) -> u32 { s.v }
        """
    )
    assert checked.function("read") is not None


def test_borrow_expression_type():
    checked = checked_from("fn f() { let mut x = 1; let r = &mut x; *r = 2; }")
    r_ty = checked.function("f").locals["r"]
    assert isinstance(r_ty, RefType)
    assert r_ty.mutability is Mutability.MUT


def test_call_return_type_is_resolved_struct():
    checked = checked_from(
        """
        struct Vec;
        extern fn vec_new() -> Vec;
        fn f() { let v = vec_new(); }
        """
    )
    v_ty = checked.function("f").locals["v"]
    assert isinstance(v_ty, StructType)
    assert v_ty.opaque


def test_struct_literal_checks_fields():
    checked = checked_from(
        """
        struct Point { x: u32, y: u32 }
        fn make(a: u32) -> Point { Point { x: a, y: 0 } }
        """
    )
    assert checked.signature("make").ret_type.name == "Point"


def test_mut_ref_argument_coerces_to_shared_param():
    checked = checked_from(
        """
        struct Vec;
        extern fn vec_len(v: &Vec) -> u32;
        fn f(v: &mut Vec) -> u32 { vec_len(v) }
        """
    )
    assert checked.function("f") is not None


def test_if_expression_branches_unify():
    checked = checked_from("fn f(c: bool) -> u32 { if c { 1 } else { 2 } }")
    assert isinstance(checked.signature("f").ret_type, U32Type)


# ---------------------------------------------------------------------------
# Signature elaboration (lifetime elision)
# ---------------------------------------------------------------------------


def test_elision_names_every_input_reference():
    checked = checked_from("extern fn f(a: &u32, b: &mut u32);")
    sig = checked.signature("f")
    lifetimes = [ty.lifetime for ty in sig.param_types]
    assert all(lifetime is not None for lifetime in lifetimes)
    assert lifetimes[0] != lifetimes[1]


def test_elision_single_input_lifetime_propagates_to_output():
    checked = checked_from("extern fn first(v: &u32) -> &u32;")
    sig = checked.signature("first")
    assert sig.param_types[0].lifetime == sig.ret_type.lifetime


def test_explicit_lifetimes_are_preserved():
    checked = checked_from("extern fn pick<'a>(a: &'a u32, b: &u32) -> &'a u32;")
    sig = checked.signature("pick")
    assert sig.param_types[0].lifetime == "a"
    assert sig.ret_type.lifetime == "a"
    assert sig.param_types[1].lifetime != "a"


def test_signature_pretty_includes_lifetimes():
    checked = checked_from("extern fn f<'a>(x: &'a mut u32) -> &'a u32;")
    rendered = checked.signature("f").pretty()
    assert "'a" in rendered
    assert "&'a mut u32" in rendered


# ---------------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------------


def test_unknown_variable_is_error():
    message = check_err("fn f() -> u32 { missing }")
    assert "unknown variable" in message


def test_unknown_function_is_error():
    message = check_err("fn f() { g(1); }")
    assert "unknown function" in message


def test_arity_mismatch_is_error():
    message = check_err(
        """
        fn g(a: u32) -> u32 { a }
        fn f() -> u32 { g(1, 2) }
        """
    )
    assert "expects 1 arguments" in message


def test_argument_type_mismatch_is_error():
    message = check_err(
        """
        fn g(a: u32) -> u32 { a }
        fn f(b: bool) -> u32 { g(b) }
        """
    )
    assert "argument 0" in message


def test_assign_to_immutable_binding_is_error():
    message = check_err("fn f() { let x = 1; x = 2; }")
    assert "immutable binding" in message


def test_assign_through_shared_reference_is_error():
    message = check_err("fn f(p: &u32) { *p = 1; }")
    assert "shared reference" in message


def test_assign_field_through_shared_reference_is_error():
    message = check_err(
        """
        struct S { v: u32 }
        fn f(s: &S) { s.v = 1; }
        """
    )
    assert "shared reference" in message


def test_condition_must_be_bool():
    message = check_err("fn f(x: u32) { if x { } }")
    assert "must be bool" in message


def test_while_condition_must_be_bool():
    message = check_err("fn f(x: u32) { while x { } }")
    assert "must be bool" in message


def test_arithmetic_on_bool_is_error():
    message = check_err("fn f(a: bool) -> u32 { a + 1 }")
    assert "must be u32" in message


def test_return_type_mismatch_is_error():
    message = check_err("fn f() -> u32 { return true; }")
    assert "return type mismatch" in message


def test_unknown_struct_field_is_error():
    message = check_err(
        """
        struct Point { x: u32 }
        fn f(p: &Point) -> u32 { p.z }
        """
    )
    assert "no field" in message


def test_missing_struct_literal_field_is_error():
    message = check_err(
        """
        struct Point { x: u32, y: u32 }
        fn f() -> Point { Point { x: 1 } }
        """
    )
    assert "missing field" in message


def test_unknown_type_is_error():
    message = check_err("fn f(x: Unknown) { }")
    assert "unknown type" in message


def test_duplicate_function_is_error():
    message = check_err(
        """
        fn f() { }
        fn f() { }
        """
    )
    assert "duplicate function" in message


def test_deref_of_non_reference_is_error():
    message = check_err("fn f(x: u32) -> u32 { *x }")
    assert "dereference" in message


def test_cannot_assign_mismatched_type():
    message = check_err("fn f() { let mut x = 1; x = true; }")
    assert "mismatched types" in message


# ---------------------------------------------------------------------------
# Checked program structure
# ---------------------------------------------------------------------------


def test_local_functions_excludes_dependency_crates():
    checked = check_program(
        parse_program(
            """
            crate deps { extern fn ext(x: u32) -> u32; fn dep_fn() -> u32 { 1 } }
            crate app { fn local_fn() -> u32 { ext(2) } }
            """,
            local_crate="app",
        )
    )
    local_names = {f.decl.name for f in checked.local_functions()}
    assert local_names == {"local_fn"}
    assert checked.fn_crates["dep_fn"] == "deps"


def test_functions_with_bodies_spans_all_crates():
    checked = check_program(
        parse_program(
            """
            crate deps { fn dep_fn() -> u32 { 1 } }
            crate app { fn local_fn() -> u32 { dep_fn() } }
            """,
            local_crate="app",
        )
    )
    names = {f.decl.name for f in checked.functions_with_bodies()}
    assert names == {"dep_fn", "local_fn"}
