"""Tests for the NDJSON protocol and the `repro serve` / `repro query` CLI."""

from __future__ import annotations

import io
import json

import pytest

from helpers import GET_COUNT_SOURCE, HELPER_CALLER_SOURCE

from repro.cli import main
from repro.service.protocol import AnalysisService, condition_from_params, serve
from repro.service.session import AnalysisSession


def run_requests(requests, session=None):
    """Feed requests through the serve loop; returns parsed responses."""
    in_stream = io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
    out_stream = io.StringIO()
    code = serve(in_stream, out_stream, session)
    assert code == 0
    return [json.loads(line) for line in out_stream.getvalue().splitlines()]


class TestConditionParsing:
    def test_default_is_none(self):
        assert condition_from_params({}) is None

    def test_flags_round_trip(self):
        config = condition_from_params({"condition": {"whole_program": True}})
        assert config.whole_program and not config.mut_blind

    def test_unknown_flag_rejected(self):
        service = AnalysisService()
        response = service.handle(
            {"id": 9, "method": "analyze", "params": {"condition": {"bogus": True}}}
        )
        assert not response["ok"]
        assert "bogus" in response["error"]


class TestServeLoop:
    def test_analyze_twice_second_served_from_store(self):
        responses = run_requests(
            [
                {"id": 1, "method": "open", "params": {"source": GET_COUNT_SOURCE}},
                {"id": 2, "method": "analyze", "params": {"function": "get_count"}},
                {"id": 3, "method": "analyze", "params": {"function": "get_count"}},
                {"id": 4, "method": "shutdown"},
            ]
        )
        assert [r["ok"] for r in responses] == [True] * 4
        assert responses[1]["result"]["functions"]["get_count"]["cache"] == "miss"
        assert responses[2]["result"]["functions"]["get_count"]["cache"] == "hit"
        # The acceptance check: the hit is observable in the response stats.
        assert responses[2]["result"]["stats"]["hits"] >= 1
        assert responses[3]["result"]["shutdown"] is True

    def test_edit_between_queries_invalidates(self):
        edited = HELPER_CALLER_SOURCE.replace("y + 1", "y + 2")
        responses = run_requests(
            [
                {"id": 1, "method": "open", "params": {"source": HELPER_CALLER_SOURCE}},
                {"id": 2, "method": "analyze", "params": {"function": "helper"}},
                {"id": 3, "method": "update", "params": {"source": edited}},
                {"id": 4, "method": "analyze", "params": {"function": "helper"}},
            ]
        )
        assert responses[2]["result"]["body_changed"] == ["helper"]
        assert responses[3]["result"]["functions"]["helper"]["cache"] == "miss"

    def test_slice_ifc_stats_and_condition(self):
        responses = run_requests(
            [
                {"id": 1, "method": "open", "params": {"source": HELPER_CALLER_SOURCE}},
                {
                    "id": 2,
                    "method": "analyze",
                    "params": {"function": "caller", "condition": {"whole_program": True}},
                },
                {
                    "id": 3,
                    "method": "slice",
                    "params": {"function": "caller", "variable": "r"},
                },
                {"id": 4, "method": "ifc", "params": {"sinks": []}},
                {"id": 5, "method": "stats"},
            ]
        )
        assert all(r["ok"] for r in responses)
        assert responses[1]["result"]["condition"] == "Whole-program"
        assert responses[2]["result"]["size"] > 0
        assert responses[3]["result"]["count"] == 0
        stats = responses[4]["result"]
        assert stats["counters"]["analyze_queries"] == 1
        assert stats["counters"]["slice_queries"] == 1
        assert stats["store_entries"] >= 1

    def test_errors_do_not_kill_the_loop(self):
        in_stream = io.StringIO(
            "this is not json\n"
            + json.dumps({"id": 2, "method": "frobnicate"})
            + "\n"
            + json.dumps({"id": 3, "method": "analyze"})
            + "\n"
            + json.dumps({"id": 4, "method": "ping"})
            + "\n"
        )
        out_stream = io.StringIO()
        serve(in_stream, out_stream)
        responses = [json.loads(line) for line in out_stream.getvalue().splitlines()]
        assert [r["ok"] for r in responses] == [False, False, False, True]
        assert "invalid JSON" in responses[0]["error"]
        assert "unknown method" in responses[1]["error"]
        assert "no sources opened" in responses[2]["error"]
        assert responses[3]["result"]["pong"] is True

    def test_failed_open_rolls_back_local_crate(self):
        service = AnalysisService()
        ok = service.handle(
            {"id": 1, "method": "open",
             "params": {"source": "fn f(x: u32) -> u32 { x }", "local_crate": "main"}}
        )
        assert ok["ok"]
        bad = service.handle(
            {"id": 2, "method": "open",
             "params": {"unit": "other", "source": "fn broken( {", "local_crate": "elsewhere"}}
        )
        assert not bad["ok"]
        assert service.session.local_crate == "main"
        # The surviving workspace still analyses under its original crate.
        after = service.handle({"id": 3, "method": "analyze"})
        assert after["ok"] and list(after["result"]["functions"]) == ["f"]

    def test_unexpected_exception_does_not_kill_the_loop(self, monkeypatch):
        service = AnalysisService()
        monkeypatch.setattr(
            service.session, "stats", lambda: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        responses = [
            service.handle({"id": 1, "method": "stats"}),
            service.handle({"id": 2, "method": "ping"}),
        ]
        assert not responses[0]["ok"]
        assert "internal error: RuntimeError: boom" in responses[0]["error"]
        assert responses[1]["ok"]

    def test_blank_lines_are_ignored(self):
        in_stream = io.StringIO("\n\n" + json.dumps({"id": 1, "method": "ping"}) + "\n\n")
        out_stream = io.StringIO()
        serve(in_stream, out_stream)
        assert len(out_stream.getvalue().splitlines()) == 1


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "program.mrs"
    path.write_text(GET_COUNT_SOURCE, encoding="utf-8")
    return str(path)


class TestCli:
    def test_serve_subcommand_with_input_file(self, tmp_path, source_file):
        requests = tmp_path / "requests.ndjson"
        requests.write_text(
            json.dumps({"id": 1, "method": "analyze", "params": {"function": "get_count"}})
            + "\n"
            + json.dumps({"id": 2, "method": "analyze", "params": {"function": "get_count"}})
            + "\n"
            + json.dumps({"id": 3, "method": "shutdown"})
            + "\n",
            encoding="utf-8",
        )
        out = io.StringIO()
        code = main(["serve", source_file, "--input", str(requests)], out=out)
        assert code == 0
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert responses[0]["result"]["functions"]["get_count"]["cache"] == "miss"
        assert responses[1]["result"]["functions"]["get_count"]["cache"] == "hit"
        assert responses[1]["result"]["stats"]["hits"] == 1

    def test_query_repeat_shows_warm_hits(self, source_file):
        out = io.StringIO()
        code = main(
            ["query", source_file, "--method", "analyze", "--function", "get_count",
             "--repeat", "2"],
            out=out,
        )
        assert code == 0
        first, second = [json.loads(line) for line in out.getvalue().splitlines()]
        assert first["result"]["cache_hits"] == 0
        assert second["result"]["cache_hits"] == 1

    def test_query_slice(self, source_file):
        out = io.StringIO()
        code = main(
            ["query", source_file, "--method", "slice", "--function", "get_count",
             "--variable", "k"],
            out=out,
        )
        assert code == 0
        response = json.loads(out.getvalue())
        assert response["ok"] and response["result"]["direction"] == "backward"

    def test_query_slice_missing_args_fails(self, source_file):
        out = io.StringIO()
        assert main(["query", source_file, "--method", "slice"], out=out) == 2

    def test_query_cache_dir_persists_across_invocations(self, tmp_path, source_file):
        cache_dir = str(tmp_path / "cache")
        out1, out2 = io.StringIO(), io.StringIO()
        main(["query", source_file, "--cache-dir", cache_dir], out=out1)
        main(["query", source_file, "--cache-dir", cache_dir], out=out2)
        cold = json.loads(out1.getvalue())
        warm = json.loads(out2.getvalue())
        assert cold["result"]["cache_hits"] == 0
        assert warm["result"]["cache_hits"] == len(warm["result"]["functions"])
        assert warm["result"]["stats"]["disk_hits"] >= 1
