"""Replay the JSON blocks of ``docs/EVALUATION.md`` against real artifacts.

Every fenced block tagged ``eval-report`` is asserted to be a recursive
*subset* of the actual (volatile-stripped) aggregate report produced by
running the committed mini-corpus through the harness; ``eval-manifest``
and ``eval-manifest-entry`` blocks are matched against the committed
manifest the same way.  Subset semantics mirror ``test_protocol_docs``:
documented objects may omit fields, documented lists must match exactly.
The documented schema cannot rot without this file failing.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
EVALUATION_MD = REPO / "docs" / "EVALUATION.md"
MINI_CORPUS = REPO / "tests" / "data" / "mini_corpus"
GOLDEN = REPO / "tests" / "data" / "massrun_mini50_golden.json"

BLOCK_RE = re.compile(r"```(eval-[a-z-]+)\n(.*?)```", re.DOTALL)


def extract_blocks():
    text = EVALUATION_MD.read_text(encoding="utf-8")
    return [(m.group(1), json.loads(m.group(2))) for m in BLOCK_RE.finditer(text)]


def assert_subset(expected, actual, path="$"):
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected object"
        for key, value in expected.items():
            assert key in actual, f"{path}: missing key {key!r}"
            assert_subset(value, actual[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: expected array"
        assert len(expected) == len(actual), (
            f"{path}: array length {len(actual)} != documented {len(expected)}"
        )
        for index, (exp, act) in enumerate(zip(expected, actual)):
            assert_subset(exp, act, f"{path}[{index}]")
    else:
        assert expected == actual, f"{path}: documented {expected!r}, got {actual!r}"


BLOCKS = extract_blocks()


def test_doc_has_all_block_kinds():
    kinds = [kind for kind, _ in BLOCKS]
    assert "eval-report" in kinds
    assert "eval-manifest" in kinds
    assert "eval-manifest-entry" in kinds


def test_manifest_blocks_match_committed_manifest():
    manifest = json.loads(
        (MINI_CORPUS / "corpus_manifest.json").read_text(encoding="utf-8")
    )
    for kind, expected in BLOCKS:
        if kind == "eval-manifest":
            assert_subset(expected, manifest, path=kind)
        elif kind == "eval-manifest-entry":
            by_name = {entry["name"]: entry for entry in manifest["programs"]}
            assert expected["name"] in by_name, f"{kind}: unknown program"
            assert_subset(expected, by_name[expected["name"]], path=kind)


def test_report_blocks_match_golden():
    # The golden IS the stripped report of the mini-corpus run — and
    # test_massrun proves the golden matches a live run exactly, so the
    # doc → golden → live chain is closed without re-running 50 programs.
    golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
    for kind, expected in BLOCKS:
        if kind == "eval-report":
            assert_subset(expected, golden, path=kind)


def test_documented_flags_exist_in_cli():
    """Every `--flag` named in the doc is a real `repro eval run` flag."""
    from repro.cli import build_parser

    parser = build_parser()
    text = EVALUATION_MD.read_text(encoding="utf-8")
    documented = set(re.findall(r"`(--[a-z-]+)(?: [A-Za-z,|]+)?`", text))
    eval_flags = set()
    for action in parser._subparsers._group_actions:
        run_parser = action.choices["eval"]
        for sub_action in run_parser._subparsers._group_actions:
            for sub in sub_action.choices.values():
                for option in sub._option_string_actions:
                    eval_flags.add(option)
    missing = {flag for flag in documented if flag not in eval_flags}
    assert not missing, f"doc names flags the CLI lacks: {sorted(missing)}"
