"""Tests for the concurrent workspace server (locks, registry, mux, sockets,
persistence, graceful shutdown)."""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from helpers import GET_COUNT_SOURCE

from repro.obs import MetricsRegistry
from repro.service.locks import RWLock
from repro.service.persist import (
    has_workspace,
    list_workspaces,
    load_workspace,
    save_workspace,
)
from repro.service.server import (
    ConnectionHandler,
    ThreadedAnalysisServer,
    WorkspaceRegistry,
)
from repro.service.session import AnalysisSession
from repro.version import __version__


SECOND_SOURCE = """
fn double(x: u32) -> u32 { x + x }
"""


# ---------------------------------------------------------------------------
# RWLock
# ---------------------------------------------------------------------------


class TestRWLock:
    def test_readers_are_concurrent(self):
        lock = RWLock()
        inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()  # both readers must be inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = RWLock()
        order = []
        lock.acquire_write()

        def reader():
            with lock.read_locked():
                order.append("reader")

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        order.append("writer-done")
        lock.release_write()
        t.join(timeout=5)
        assert order == ["writer-done", "reader"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        got_write = threading.Event()

        def writer():
            with lock.write_locked():
                got_write.set()

        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.05)
        # A new reader must queue behind the waiting writer.
        late_reader_entered = threading.Event()

        def late_reader():
            with lock.read_locked():
                late_reader_entered.set()

        r = threading.Thread(target=late_reader)
        r.start()
        time.sleep(0.05)
        assert not late_reader_entered.is_set()
        lock.release_read()
        w.join(timeout=5)
        r.join(timeout=5)
        assert got_write.is_set() and late_reader_entered.is_set()

    def test_wait_and_hold_histograms_advance_under_contention(self):
        registry = MetricsRegistry()
        lock = RWLock(registry=registry)

        # A writer holds the lock while a reader waits: the reader's wait
        # time must reflect the writer's hold time.
        lock.acquire_write()
        reader_done = threading.Event()

        def reader():
            with lock.read_locked():
                reader_done.set()

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        lock.release_write()
        t.join(timeout=5)
        assert reader_done.is_set()

        snap = registry.snapshot()["histograms"]
        write_hold = snap['lock_hold_seconds{mode="write"}']
        read_wait = snap['lock_wait_seconds{mode="read"}']
        read_hold = snap['lock_hold_seconds{mode="read"}']
        assert write_hold["count"] == 1 and write_hold["sum"] >= 0.05
        assert read_wait["count"] == 1 and read_wait["sum"] >= 0.04
        assert read_hold["count"] == 1

        # The reverse: readers hold while a writer waits.
        lock.acquire_read()
        writer_done = threading.Event()

        def writer():
            with lock.write_locked():
                writer_done.set()

        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.05)
        lock.release_read()
        w.join(timeout=5)
        assert writer_done.is_set()
        snap = registry.snapshot()["histograms"]
        assert snap['lock_wait_seconds{mode="write"}']["sum"] >= 0.04
        assert snap['lock_hold_seconds{mode="read"}']["count"] == 2

    def test_uncontended_acquisitions_record_near_zero_waits(self):
        registry = MetricsRegistry()
        lock = RWLock(registry=registry)
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass
        snap = registry.snapshot()["histograms"]
        for mode in ("read", "write"):
            wait = snap[f'lock_wait_seconds{{mode="{mode}"}}']
            assert wait["count"] == 1 and wait["max"] < 0.05

    def test_metrics_snapshot_is_safe_under_concurrent_lock_traffic(self):
        """Snapshots taken while many threads hammer the same lock's
        histograms must never raise and must observe monotone counts."""
        registry = MetricsRegistry()
        lock = RWLock(registry=registry)
        stop = threading.Event()
        failures = []

        def worker():
            while not stop.is_set():
                with lock.read_locked():
                    pass

        def snapshotter():
            last = 0
            while not stop.is_set():
                try:
                    snap = registry.snapshot()
                except Exception as error:  # pragma: no cover - the failure mode
                    failures.append(error)
                    return
                hist = snap["histograms"].get('lock_hold_seconds{mode="read"}')
                if hist is not None:
                    assert hist["count"] >= last
                    last = hist["count"]

        threads = [threading.Thread(target=worker) for _ in range(4)]
        threads.append(threading.Thread(target=snapshotter))
        for t in threads:
            t.start()
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join(timeout=5)
        assert not failures
        final = registry.snapshot()["histograms"]['lock_hold_seconds{mode="read"}']
        assert final["count"] > 0


# ---------------------------------------------------------------------------
# Write/read classification
# ---------------------------------------------------------------------------


class TestIsWriteRequest:
    def test_ndjson_methods(self):
        from repro.service.server import is_write_request

        for method in ("open", "update", "close", "warm"):
            assert is_write_request({"method": method})
        for method in ("analyze", "slice", "focus", "stats", "metrics", "ping"):
            assert not is_write_request({"method": method})

    def test_analyze_with_inline_source_takes_the_write_lock(self):
        from repro.service.server import is_write_request

        assert is_write_request(
            {"method": "analyze", "params": {"source": "fn f() -> u32 { 1 }"}}
        )
        assert not is_write_request({"method": "analyze", "params": {"function": "f"}})

    def test_jsonrpc_methods(self):
        from repro.service.server import is_write_request

        assert is_write_request(
            {"jsonrpc": "2.0", "method": "textDocument/didChange"}
        )
        assert not is_write_request({"jsonrpc": "2.0", "method": "repro/focus"})


# ---------------------------------------------------------------------------
# Registry + connection mux (no sockets)
# ---------------------------------------------------------------------------


class TestConnectionHandler:
    def test_registry_shares_one_session_per_workspace(self):
        registry = WorkspaceRegistry()
        a = ConnectionHandler(registry)
        b = ConnectionHandler(registry)
        assert a.handle_ref.session is b.handle_ref.session

    def test_mux_routes_both_dialects_to_one_session(self):
        registry = WorkspaceRegistry()
        handler = ConnectionHandler(registry)
        opened = handler.handle_line(
            json.dumps({"id": 1, "method": "open", "params": {"source": GET_COUNT_SOURCE}})
        )
        assert opened["ok"]
        # The JSON-RPC dialect sees the workspace the NDJSON dialect opened.
        response = handler.handle_line(
            json.dumps({"jsonrpc": "2.0", "id": 2, "method": "repro/stats"})
        )
        assert response["jsonrpc"] == "2.0"
        assert response["result"]["functions"] == 1

    def test_jsonrpc_initialize_reports_package_version(self):
        handler = ConnectionHandler(WorkspaceRegistry())
        response = handler.handle_line(
            json.dumps({"jsonrpc": "2.0", "id": 1, "method": "initialize"})
        )
        assert response["result"]["serverInfo"]["version"] == __version__

    def test_hello_carries_version_and_protocols(self):
        handler = ConnectionHandler(WorkspaceRegistry())
        hello = handler.hello()
        assert hello["version"] == __version__
        assert set(hello["protocols"]) == {"ndjson", "jsonrpc-2.0"}

    def test_workspace_method_switches_and_lists(self):
        registry = WorkspaceRegistry()
        handler = ConnectionHandler(registry)
        handler.handle_line(
            json.dumps({"id": 1, "method": "open", "params": {"source": SECOND_SOURCE}})
        )
        # A typo cannot silently create a workspace...
        typo = handler.handle_line(
            json.dumps({"id": 9, "method": "workspace", "params": {"name": "scratch"}})
        )
        assert typo["ok"] is False and typo["error_code"] == "unknown_workspace"
        # ...but an explicit create works.
        switched = handler.handle_line(
            json.dumps({"id": 2, "method": "workspace",
                        "params": {"name": "scratch", "create": True}})
        )
        assert switched["ok"]
        assert switched["result"]["workspace"] == "scratch"
        assert switched["result"]["units"] == []
        assert switched["result"]["workspaces"] == ["default", "scratch"]
        # Switching back finds the original workspace intact.
        back = handler.handle_line(json.dumps({"id": 3, "method": "workspace",
                                               "params": {"name": "default"}}))
        assert back["result"]["functions"] == 1

    def test_parse_error_is_answered_not_raised(self):
        handler = ConnectionHandler(WorkspaceRegistry())
        response = handler.handle_line("{nope")
        assert response["ok"] is False and response["error_code"] == "parse_error"

    def test_version_method(self):
        handler = ConnectionHandler(WorkspaceRegistry())
        response = handler.handle_line(json.dumps({"id": 5, "method": "version"}))
        assert response["ok"] and response["result"]["version"] == __version__


# ---------------------------------------------------------------------------
# The socket server
# ---------------------------------------------------------------------------


def connect(server):
    sock = socket.create_connection(server.address, timeout=10)
    rfile = sock.makefile("r", encoding="utf-8", newline="\n")
    wfile = sock.makefile("w", encoding="utf-8", newline="\n")
    hello = json.loads(rfile.readline())
    return sock, rfile, wfile, hello


def request(rfile, wfile, payload):
    wfile.write(json.dumps(payload, sort_keys=True) + "\n")
    wfile.flush()
    return json.loads(rfile.readline())


class TestThreadedServer:
    def test_hello_and_basic_round_trip(self):
        with ThreadedAnalysisServer(port=0, workers=2) as server:
            sock, rfile, wfile, hello = connect(server)
            assert hello == {
                "hello": "repro-flowistry",
                "version": __version__,
                "protocols": ["ndjson", "jsonrpc-2.0"],
                "workspace": "default",
            }
            pong = request(rfile, wfile, {"id": 1, "method": "ping"})
            assert pong["ok"] and pong["result"]["version"] == __version__
            sock.close()

    def test_many_clients_share_one_warm_cache(self):
        with ThreadedAnalysisServer(port=0, workers=4) as server:
            sock, rfile, wfile, _ = connect(server)
            request(rfile, wfile,
                    {"id": 1, "method": "open", "params": {"source": GET_COUNT_SOURCE}})
            first = request(rfile, wfile,
                            {"id": 2, "method": "analyze",
                             "params": {"function": "get_count"}})
            assert first["result"]["functions"]["get_count"]["cache"] == "miss"
            sock.close()

            # A *different* client connects and is served from the same cache.
            sock2, rfile2, wfile2, _ = connect(server)
            second = request(rfile2, wfile2,
                             {"id": 1, "method": "analyze",
                              "params": {"function": "get_count"}})
            assert second["result"]["functions"]["get_count"]["cache"] == "hit"
            sock2.close()

    def test_concurrent_clients_get_identical_answers(self):
        with ThreadedAnalysisServer(port=0, workers=8) as server:
            sock, rfile, wfile, _ = connect(server)
            request(rfile, wfile,
                    {"id": 1, "method": "open", "params": {"source": GET_COUNT_SOURCE}})
            sock.close()

            results = []
            errors = []

            def client():
                try:
                    csock, crfile, cwfile, _ = connect(server)
                    response = request(
                        crfile, cwfile,
                        {"id": 1, "method": "slice",
                         "params": {"function": "get_count", "variable": "h"}},
                    )
                    payload = response["result"]
                    payload.pop("cache", None)
                    payload.pop("stats", None)
                    results.append(payload)
                    csock.close()
                except Exception as error:  # surfaced via the errors list
                    errors.append(error)

            threads = [threading.Thread(target=client) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=20)
            assert not errors
            assert len(results) == 6
            assert all(r == results[0] for r in results)

    def test_edits_interleaved_with_queries_stay_coherent(self):
        with ThreadedAnalysisServer(port=0, workers=8) as server:
            sock, rfile, wfile, _ = connect(server)
            request(rfile, wfile,
                    {"id": 0, "method": "open", "params": {"source": GET_COUNT_SOURCE}})

            stop = threading.Event()
            problems = []

            def reader():
                try:
                    csock, crfile, cwfile, _ = connect(server)
                    while not stop.is_set():
                        response = request(
                            crfile, cwfile,
                            {"id": 1, "method": "analyze",
                             "params": {"function": "get_count"}},
                        )
                        if not response.get("ok"):
                            problems.append(response)
                            break
                    csock.close()
                except Exception as error:
                    problems.append(error)

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for t in threads:
                t.start()
            # Writer: toggle an edit (whitespace change => body fingerprints
            # shift through re-lowering of spans) a few times mid-traffic.
            for i in range(4):
                edited = GET_COUNT_SOURCE + ("\n" * (i % 2))
                response = request(
                    rfile, wfile,
                    {"id": 10 + i, "method": "update",
                     "params": {"unit": "main", "source": edited}},
                )
                assert response["ok"]
            stop.set()
            for t in threads:
                t.join(timeout=20)
            sock.close()
            assert not problems

    def test_over_capacity_client_is_rejected_not_queued(self):
        with ThreadedAnalysisServer(port=0, workers=1) as server:
            sock, rfile, wfile, _ = connect(server)  # occupies the only slot
            extra = socket.create_connection(server.address, timeout=10)
            line = extra.makefile("r", encoding="utf-8").readline()
            rejection = json.loads(line)
            assert rejection["ok"] is False
            assert rejection["error_code"] == "server_busy"
            extra.close()
            # The occupying client is still fully served.
            pong = request(rfile, wfile, {"id": 1, "method": "ping"})
            assert pong["ok"]
            assert server.stats()["connections_rejected"] == 1
            sock.close()

    def test_graceful_shutdown_drains_and_disconnects(self):
        server = ThreadedAnalysisServer(port=0, workers=2).start()
        sock, rfile, wfile, _ = connect(server)
        request(rfile, wfile,
                {"id": 1, "method": "open", "params": {"source": SECOND_SOURCE}})
        summaries = server.shutdown()
        assert summaries == []  # no persist dir
        # The held connection sees EOF rather than a hang.
        assert rfile.readline() == ""
        sock.close()
        assert server.stats()["draining"] is True
        # Idempotent.
        assert server.shutdown() == []

    def test_corrupt_workspace_is_answered_not_dropped(self, tmp_path):
        persist = tmp_path / "persist"
        (persist / "broken").mkdir(parents=True)
        (persist / "broken" / "manifest.json").write_text("{not json", encoding="utf-8")
        with ThreadedAnalysisServer(port=0, workers=2, persist_dir=str(persist)) as server:
            sock, rfile, wfile, _ = connect(server)
            # exists() sees the manifest, loading it fails: typed error, and
            # the connection (and its capacity slot) survives.
            response = request(rfile, wfile, {"id": 1, "method": "workspace",
                                              "params": {"name": "broken"}})
            assert response["ok"] is False
            assert response["error_code"] == "unknown_workspace"
            pong = request(rfile, wfile, {"id": 2, "method": "ping"})
            assert pong["ok"]
            sock.close()

    def test_corrupt_default_workspace_reports_load_failure(self, tmp_path):
        persist = tmp_path / "persist"
        (persist / "default").mkdir(parents=True)
        (persist / "default" / "manifest.json").write_text("{not json", encoding="utf-8")
        with ThreadedAnalysisServer(port=0, workers=2, persist_dir=str(persist)) as server:
            sock = socket.create_connection(server.address, timeout=10)
            line = json.loads(sock.makefile("r", encoding="utf-8").readline())
            assert line["ok"] is False
            assert line["error_code"] == "workspace_load_failed"
            sock.close()
            # The failed bind released its capacity slot (the server-side
            # cleanup runs just after the error line is flushed).
            deadline = time.time() + 5
            while server.stats()["open_connections"] and time.time() < deadline:
                time.sleep(0.02)
            assert server.stats()["open_connections"] == 0

    def test_persist_dir_server_restarts_warm(self, tmp_path):
        persist = str(tmp_path / "persist")
        with ThreadedAnalysisServer(port=0, workers=2, persist_dir=persist) as server:
            sock, rfile, wfile, _ = connect(server)
            request(rfile, wfile,
                    {"id": 1, "method": "open", "params": {"source": GET_COUNT_SOURCE}})
            warm = request(rfile, wfile, {"id": 2, "method": "analyze", "params": {}})
            assert warm["ok"]
            sock.close()
        assert has_workspace(persist, "default")

        with ThreadedAnalysisServer(port=0, workers=2, persist_dir=persist) as server:
            sock, rfile, wfile, _ = connect(server)
            response = request(rfile, wfile, {"id": 1, "method": "analyze", "params": {}})
            assert response["ok"]
            assert response["result"]["cache_misses"] == 0
            assert all(f["cache"] == "hit"
                       for f in response["result"]["functions"].values())
            sock.close()


# ---------------------------------------------------------------------------
# Workspace persistence (direct API)
# ---------------------------------------------------------------------------


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        session = AnalysisSession()
        session.open_unit("main", GET_COUNT_SOURCE)
        session.analyze()  # populate the (memory-only) store
        summary = save_workspace(session, tmp_path, "ws")
        assert summary["units"] == ["main"]
        assert summary["cache_entries_flushed"] >= 1

        restored = load_workspace(tmp_path, "ws")
        assert restored.unit_names() == ["main"]
        result = restored.analyze()
        assert result["cache_misses"] == 0
        assert result["stats"]["disk_hits"] >= 1

    def test_open_units_is_transactional_and_order_safe(self):
        # caller/callee split across units: opening both at once must work...
        session = AnalysisSession()
        caller = "fn use_it(x: u32) -> u32 { helper(x) }"
        callee = "fn helper(x: u32) -> u32 { x + 1 }"
        info = session.open_units([("caller", caller), ("callee", callee)])
        assert info["functions"] == 2
        # ...and a failing batch must leave the workspace untouched.
        with pytest.raises(Exception):
            session.open_units([("bad", "fn broken(")])
        assert session.unit_names() == ["caller", "callee"]

    def test_list_workspaces(self, tmp_path):
        session = AnalysisSession()
        session.open_unit("main", SECOND_SOURCE)
        save_workspace(session, tmp_path, "alpha")
        save_workspace(session, tmp_path, "beta")
        listed = list_workspaces(tmp_path)
        assert [w["workspace"] for w in listed] == ["alpha", "beta"]
        assert all(w["version"] == __version__ for w in listed)

    def test_load_missing_workspace_is_a_typed_error(self, tmp_path):
        from repro.errors import QueryError

        with pytest.raises(QueryError) as excinfo:
            load_workspace(tmp_path, "nope")
        assert excinfo.value.code == "unknown_workspace"


# ---------------------------------------------------------------------------
# Slow-request log + health (mux methods, tail-based retention)
# ---------------------------------------------------------------------------


class TestSlowLogUnit:
    def test_explicit_threshold_retains_only_slow_requests(self):
        from repro.obs import SlowLog

        log = SlowLog(capacity=4, threshold_ms=50.0)
        assert not log.observe("ping", 10.0, trace_id="t1")
        assert log.observe("analyze", 80.0, trace_id="t2", trace={"root": {}})
        snapshot = log.snapshot()
        assert snapshot["observed"] == 2 and snapshot["kept"] == 1
        assert not snapshot["adaptive"]
        (entry,) = snapshot["entries"]
        assert entry["trace_id"] == "t2" and entry["method"] == "analyze"
        assert entry["trace"] == {"root": {}}
        # Traces can be elided from the snapshot without losing the entry.
        assert "trace" not in log.snapshot(include_traces=False)["entries"][0]

    def test_adaptive_threshold_calibrates_before_judging(self):
        from repro.obs import SlowLog

        log = SlowLog(capacity=8, min_samples=10)
        # During calibration nothing is slow — not even a huge outlier.
        assert not log.observe("analyze", 10_000.0, trace_id="warmup")
        for index in range(9):
            log.observe("ping", 1.0, trace_id=f"w{index}")
        assert log.kept == 0
        # Calibrated: the rolling p99 is dominated by the warmup outlier at
        # first, but a fresh outlier above the bar is kept.  The threshold
        # is read before the sample joins the window, so the outlier cannot
        # hide itself.
        for index in range(60):
            log.observe("ping", 1.0, trace_id=f"s{index}")
        assert log.current_threshold_ms() is not None
        assert log.observe("analyze", 50_000.0, trace_id="slow")
        assert log.entries()[0]["trace_id"] == "slow"

    def test_ring_is_bounded_newest_first(self):
        from repro.obs import SlowLog

        log = SlowLog(capacity=2, threshold_ms=0.0)
        for index in range(5):
            log.observe("m", float(index + 1), trace_id=f"t{index}")
        entries = log.entries()
        assert [e["trace_id"] for e in entries] == ["t4", "t3"]
        assert log.snapshot(limit=1)["entries"][0]["trace_id"] == "t4"
        assert log.kept == 5 and log.capacity == 2


class TestHealthTrackerUnit:
    def test_counts_errors_and_percentiles(self):
        from repro.obs import HealthTracker

        tracker = HealthTracker(window=16, started_at=1000.0)
        for duration in (1.0, 2.0, 3.0, 4.0):
            tracker.observe("analyze", duration)
        tracker.observe("nope", 5.0, ok=False)
        health = tracker.snapshot(now=1010.0, extra={"inflight": 2})
        assert health["status"] == "ok"
        assert health["uptime_seconds"] == 10.0
        assert health["requests_total"] == 5 and health["errors_total"] == 1
        assert health["error_rate"] == 0.2
        assert health["inflight"] == 2
        analyze = health["methods"]["analyze"]
        assert analyze["count"] == 4 and analyze["errors"] == 0
        assert analyze["p50_ms"] == 2.0 or analyze["p50_ms"] == 3.0
        assert analyze["max_ms"] == 4.0
        assert health["methods"]["nope"]["errors"] == 1


class TestSlowLogOverTheWire:
    def test_handler_tail_retention_and_mux_methods(self):
        from repro.obs import HealthTracker, SlowLog

        slow_log = SlowLog(capacity=4, threshold_ms=0.0)  # everything is slow
        health = HealthTracker()
        handler = ConnectionHandler(
            WorkspaceRegistry(), slow_log=slow_log, health=health
        )
        handler.handle_line(json.dumps({"id": 1, "method": "ping"}))
        handler.handle_line(json.dumps({"id": 2, "method": "nope"}))

        slowlog = handler.handle_message({"id": 3, "method": "slowlog"})
        assert slowlog["ok"]
        result = slowlog["result"]
        assert result["observed"] == 2 and result["kept"] == 2
        newest, oldest = result["entries"]
        assert oldest["method"] == "ping" and oldest["status"] == "ok"
        assert newest["method"] == "nope" and newest["status"] == "error"
        # Tail-based sampling retained the span tree of the wire requests.
        assert oldest["trace"]["root"]["name"] == "ping"
        assert len(oldest["trace_id"]) == 16

        checked = handler.handle_message({"id": 4, "method": "health"})
        assert checked["ok"]
        payload = checked["result"]
        assert payload["requests_total"] == 2 and payload["errors_total"] == 1
        assert payload["inflight"] == 0
        assert payload["methods"]["ping"]["count"] == 1

    def test_fast_requests_are_observed_but_not_retained(self):
        from repro.obs import SlowLog

        slow_log = SlowLog(capacity=4, threshold_ms=60_000.0)
        handler = ConnectionHandler(WorkspaceRegistry(), slow_log=slow_log)
        handler.handle_line(json.dumps({"id": 1, "method": "ping"}))
        snapshot = handler.handle_message({"id": 2, "method": "slowlog"})["result"]
        assert snapshot["observed"] == 1
        assert snapshot["kept"] == 0 and snapshot["entries"] == []

    def test_disabled_slowlog_is_a_typed_error(self):
        handler = ConnectionHandler(WorkspaceRegistry(), slow_log=None)
        response = handler.handle_message({"id": 1, "method": "slowlog"})
        assert not response["ok"]
        assert response["error_code"] == "slowlog_disabled"
        # Health stays available: it has no per-request retention to disable.
        assert handler.handle_message({"id": 2, "method": "health"})["ok"]

    def test_socket_server_shares_one_slowlog_across_connections(self):
        with ThreadedAnalysisServer(
            port=0, workers=2, slowlog_threshold_ms=0.0
        ) as server:
            sock, rfile, wfile, _ = connect(server)
            request(rfile, wfile, {"id": 1, "method": "ping"})
            sock.close()

            sock2, rfile2, wfile2, _ = connect(server)
            request(rfile2, wfile2, {"id": 1, "method": "ping"})
            snapshot = request(rfile2, wfile2, {"id": 2, "method": "slowlog"})
            health = request(rfile2, wfile2, {"id": 3, "method": "health"})
            sock2.close()

        assert snapshot["ok"]
        # Both connections' pings were retained by the shared log; the
        # slowlog request itself is observed only *after* its snapshot is
        # taken, so it cannot appear in its own answer.
        assert snapshot["result"]["observed"] >= 2
        assert {e["method"] for e in snapshot["result"]["entries"]} == {"ping"}
        assert health["ok"]
        assert health["result"]["requests_total"] >= 2
        assert health["result"]["uptime_seconds"] >= 0.0
        assert "open_connections" in health["result"]

    def test_no_slowlog_server_flag(self):
        with ThreadedAnalysisServer(port=0, workers=2, slowlog=False) as server:
            sock, rfile, wfile, _ = connect(server)
            response = request(rfile, wfile, {"id": 1, "method": "slowlog"})
            assert not response["ok"]
            assert response["error_code"] == "slowlog_disabled"
            sock.close()
