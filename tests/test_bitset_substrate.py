"""Unit tests for the indexed dataflow substrate.

Covers the three layers introduced by the bitset refactor: the interning
tables (:mod:`repro.mir.indices`), the bitset/matrix storage
(:mod:`repro.dataflow.bitset`), and the indexed dependency context
(:class:`repro.core.theta.IndexedDependencyContext`) — the last one by
mirroring the object-domain semantics tests of ``test_theta.py``.
"""

import pytest

from repro.core.theta import (
    DependencyContext,
    IndexedDependencyContext,
    IndexedThetaLattice,
    arg_location,
)
from repro.dataflow.bitset import BitSet, IndexMatrix, iter_bits, mask_of, popcount
from repro.mir.indices import BodyIndex, LocationDomain, PlaceDomain, index_body
from repro.mir.ir import Location, Place


def loc(block, stmt):
    return Location(block, stmt)


def place(local, *fields):
    p = Place.from_local(local)
    for index in fields:
        p = p.project_field(index)
    return p


def make_domain():
    locations = LocationDomain(
        [arg_location(i) for i in range(4)]
        + [Location(b, s) for b in range(10) for s in range(4)]
    )
    return BodyIndex(None, PlaceDomain(), locations)


# ---------------------------------------------------------------------------
# BitSet / IndexMatrix
# ---------------------------------------------------------------------------


def test_popcount_and_iter_bits():
    bits = mask_of([0, 3, 17, 64])
    assert popcount(bits) == 4
    assert list(iter_bits(bits)) == [0, 3, 17, 64]


def test_bitset_add_and_ior_report_dirty_bit():
    a = BitSet()
    assert a.add(3)
    assert not a.add(3)
    b = BitSet.from_indices([3, 5])
    assert a.ior(b)
    assert not a.ior(b)  # no new bits: clean
    assert sorted(a) == [3, 5]
    assert 5 in a and 4 not in a
    assert len(a) == 2


def test_bitset_subset_and_fingerprint():
    a = BitSet.from_indices([1, 2])
    b = BitSet.from_indices([1, 2, 9])
    assert a.is_subset_of(b)
    assert not b.is_subset_of(a)
    assert a.fingerprint() == BitSet.from_indices([2, 1]).fingerprint()
    assert a.fingerprint() != b.fingerprint()


def test_index_matrix_or_row_dirty_bit_and_row_materialisation():
    m = IndexMatrix()
    assert m.or_row(2, 0)  # row materialised even when empty
    assert 2 in m
    assert not m.or_row(2, 0)
    assert m.or_row(2, 0b101)
    assert not m.or_row(2, 0b001)
    assert m.row(2) == 0b101
    assert m.row(7) == 0


def test_index_matrix_union_into_returns_dirty_bit():
    a = IndexMatrix({1: 0b01})
    b = IndexMatrix({1: 0b10, 2: 0b11})
    assert a.union_into(b)
    assert a.rows == {1: 0b11, 2: 0b11}
    assert not a.union_into(b)
    assert a.keys_mask == mask_of([1, 2])


def test_index_matrix_fingerprint_is_insertion_order_free():
    a = IndexMatrix()
    a.set_row(1, 0b1)
    a.set_row(2, 0b10)
    b = IndexMatrix()
    b.set_row(2, 0b10)
    b.set_row(1, 0b1)
    assert a == b
    assert a.fingerprint() == b.fingerprint()
    b.or_row(1, 0b100)
    assert a.fingerprint() != b.fingerprint()


def test_index_matrix_density_and_popcount():
    m = IndexMatrix({0: 0b111, 1: 0b1})
    assert m.popcount_total() == 4
    assert m.density(2, 4) == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# PlaceDomain / LocationDomain
# ---------------------------------------------------------------------------


def test_place_domain_interning_is_stable_and_extensible():
    domain = PlaceDomain()
    a = domain.index(place(1))
    b = domain.index(place(1, 0))
    assert domain.index(place(1)) == a
    assert domain.place_of(b) == place(1, 0)
    assert len(domain) == 2
    # Late interning still updates the existing places' masks.
    c = domain.index(place(1, 0, 2))
    assert domain.descendants_mask(a) == mask_of([a, b, c])
    assert domain.ancestors_mask(c) == mask_of([a, b, c])
    assert domain.conflicts_mask(b) == mask_of([a, b, c])


def test_place_domain_siblings_do_not_conflict():
    domain = PlaceDomain()
    root = domain.index(place(1))
    left = domain.index(place(1, 0))
    right = domain.index(place(1, 1))
    other = domain.index(place(2))
    assert not (domain.conflicts_mask(left) >> right) & 1
    assert not (domain.conflicts_mask(left) >> other) & 1
    assert (domain.conflicts_mask(left) >> root) & 1


def test_place_domain_projection_memos():
    domain = PlaceDomain()
    base = domain.index(place(3))
    fld = domain.project_field_index(base, 1)
    assert domain.place_of(fld) == place(3, 1)
    assert domain.project_field_index(base, 1) == fld
    deref = domain.project_deref_index(base)
    assert domain.place_of(deref) == place(3).project_deref()
    assert domain.base_index(3) == base


def test_place_domain_digest_tracks_index_order():
    a = PlaceDomain([place(1), place(2)])
    b = PlaceDomain([place(1), place(2)])
    c = PlaceDomain([place(2), place(1)])
    assert a.digest() == b.digest()
    assert a.digest() != c.digest()


def test_location_domain_monotone_iteration_is_sorted_without_sorting():
    domain = LocationDomain(
        [arg_location(0), arg_location(1), loc(0, 0), loc(0, 1), loc(2, 0)]
    )
    assert domain.is_monotone
    bits = domain.mask([loc(2, 0), arg_location(1), loc(0, 0)])
    assert domain.locations_of(bits) == [arg_location(1), loc(0, 0), loc(2, 0)]
    assert domain.arg_tag_mask == domain.mask([arg_location(0), arg_location(1)])


def test_location_domain_out_of_order_interning_falls_back_to_sorting():
    domain = LocationDomain([loc(5, 0)])
    domain.index(loc(1, 0))  # out of order
    assert not domain.is_monotone
    bits = domain.mask([loc(5, 0), loc(1, 0)])
    assert domain.locations_of(bits) == [loc(1, 0), loc(5, 0)]


def test_location_cached_hash_and_total_order():
    a, b = loc(1, 2), loc(1, 2)
    assert hash(a) == hash(b)
    assert a == b
    assert loc(0, 5) < loc(1, 0) < loc(1, 1)
    assert arg_location(0) < loc(0, 0)  # tags sort before real locations


# ---------------------------------------------------------------------------
# IndexedDependencyContext ≡ DependencyContext
# ---------------------------------------------------------------------------


def both_contexts():
    return DependencyContext(), IndexedDependencyContext(make_domain())


def assert_same(obj_theta, idx_theta):
    assert dict(obj_theta.items()) == dict(idx_theta.items())


def test_indexed_read_conflicts_matches_object():
    for theta in both_contexts():
        theta.set(place(1), [loc(0, 0)])
        theta.set(place(1, 0), [loc(0, 1)])
        theta.set(place(1, 1), [loc(0, 2)])
        theta.set(place(2), [loc(9, 9)])
        assert theta.read_conflicts(place(1)) == {loc(0, 0), loc(0, 1), loc(0, 2)}
        assert theta.read_conflicts(place(1, 0)) == {loc(0, 1)}
        # Untracked place: nearest tracked ancestor.
        assert theta.read_conflicts(place(1, 0, 2)) == {loc(0, 1)}
        assert theta.read_conflicts(place(7)) == frozenset()


def test_indexed_writes_match_object():
    obj, idx = both_contexts()
    for theta in (obj, idx):
        theta.set(place(1), [loc(0, 0)])
        theta.set(place(1, 0), [loc(0, 0)])
        theta.set(place(1, 1), [loc(0, 0)])
        theta.write_weak(place(1, 1), [loc(2, 0)])
        theta.write_strong(place(1, 0), [loc(5, 0)])
    assert_same(obj, idx)
    assert loc(2, 0) in idx.get(place(1))
    assert loc(2, 0) not in idx.get(place(1, 0))
    assert idx.get(place(1, 0)) == {loc(5, 0)}


def test_indexed_join_and_lattice_dirty_bit():
    domain = make_domain()
    lattice = IndexedThetaLattice(domain)
    a = lattice.bottom()
    a.set(place(1), [loc(0, 0)])
    b = lattice.bottom()
    b.set(place(1), [loc(1, 0)])
    b.set(place(2), [loc(2, 0)])
    joined = lattice.join(a, b)
    assert joined.get(place(1)) == {loc(0, 0), loc(1, 0)}
    assert joined.get(place(2)) == {loc(2, 0)}
    # Inputs are not mutated by the out-of-place join.
    assert a.get(place(1)) == {loc(0, 0)}
    # In-place join reports the dirty bit, and is idempotent.
    assert lattice.join_into(a, b)
    assert not lattice.join_into(a, b)
    assert lattice.equals(a, joined)


def test_indexed_copy_restrict_total_size_and_pretty():
    _, idx = both_contexts()
    idx.set(place(1), [loc(0, 0), loc(0, 1)])
    idx.set(place(2, 0), [loc(0, 0)])
    copied = idx.copy()
    copied.add(place(1), [loc(3, 0)])
    assert idx.get(place(1)) == {loc(0, 0), loc(0, 1)}
    restricted = idx.restrict_to_locals([1])
    assert place(1) in restricted and place(2, 0) not in restricted
    assert idx.total_size() == 3
    assert "_1" in idx.pretty()


def test_indexed_sorted_iteration_via_domain():
    _, idx = both_contexts()
    idx.set(place(1), [loc(2, 0), loc(0, 1), arg_location(1)])
    bits = idx.get_bits(idx.domain.places.index(place(1)))
    assert idx.domain.locations.locations_of(bits) == [
        arg_location(1),
        loc(0, 1),
        loc(2, 0),
    ]


def test_index_body_seeds_locals_and_monotone_locations():
    from helpers import lowered_from

    _, lowered = lowered_from(
        "fn f(a: u32, b: u32) -> u32 { let c = a + b; if c > 3 { c } else { a } }"
    )
    body = lowered.body("f")
    tables = index_body(body)
    # Every local is pre-interned; the location table is arg tags + every
    # body location, monotone in location order.
    for local in body.locals:
        assert Place.from_local(local.index) in tables.places
    assert tables.locations.is_monotone
    assert len(tables.locations) == body.num_instructions() + body.arg_count
    assert tables.digest() == index_body(body).digest()
    # Statement seeding only adds places (it never changes existing indices).
    seeded = index_body(body, seed_statements=True)
    assert len(seeded.places) >= len(tables.places)
