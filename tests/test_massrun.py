"""Mass-evaluation harness: end-to-end runs, the committed mini-corpus
golden, feature coverage, and the failure path.

The 50-program mini-corpus under ``tests/data/mini_corpus`` is replayed
through the full battery and compared — volatile keys stripped — against
``tests/data/massrun_mini50_golden.json``, asserting the pass-rate
arithmetic and per-feature bucket counts exactly.  Injected oracles must
surface as gate failures with replayable per-program repro artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.dataflow.vecbitset import HAVE_NUMPY
from repro.errors import ReproError
from repro.eval.massrun import (
    MassRunConfig,
    evaluate_program,
    gate_problems,
    load_report,
    render_mass_report,
    run_mass_evaluation,
    strip_volatile,
)
from repro.fuzz.generator import GENERATOR_FEATURES

DATA = Path(__file__).parent / "data"
MINI_CORPUS = DATA / "mini_corpus"
GOLDEN = DATA / "massrun_mini50_golden.json"


# ---------------------------------------------------------------------------
# End-to-end: serial fuzz sweep
# ---------------------------------------------------------------------------


def test_sweep_all_oracles_pass_serially(tmp_path):
    config = MassRunConfig(count=6, seed=0, workers=0, out_dir=str(tmp_path))
    report = run_mass_evaluation(config)
    data = report.to_json_dict()
    assert data["pass_rate"] == 1.0
    assert report.passed()
    assert sorted(data["oracles"]) == [
        "cache_equality",
        "engine_equivalence",
        "focus_agreement",
        "noninterference",
        "validate",
    ]
    for counts in data["oracles"].values():
        assert counts == {"pass": 6, "fail": 0, "rate": 1.0}
    # Every passing program carries a snapshot digest and a precision sample.
    for program in data["programs"]:
        assert program["ok"] and program["snapshot_digest"]
    assert gate_problems(data) == []


def test_report_and_manifest_written_under_out_dir(tmp_path):
    out_dir = tmp_path / "nested" / "out"
    config = MassRunConfig(count=2, seed=0, out_dir=str(out_dir))
    report = run_mass_evaluation(config)
    assert Path(report.report_path).is_relative_to(out_dir)
    assert Path(report.manifest_path).is_relative_to(out_dir)
    loaded = load_report(report.report_path)
    assert loaded["corpus"]["programs"] == 2
    # Running again into the same directory is idempotent, not an error.
    run_mass_evaluation(config)


def test_empty_corpus_raises():
    with pytest.raises(ReproError):
        run_mass_evaluation(MassRunConfig(count=0))


def test_parallel_and_serial_agree_on_everything_nonvolatile(tmp_path):
    serial = run_mass_evaluation(MassRunConfig(count=4, seed=0, workers=0))
    parallel = run_mass_evaluation(
        MassRunConfig(count=4, seed=0, workers=2, chunk_size=2)
    )
    assert parallel.mode in ("parallel", "serial-fallback")
    serial_data = strip_volatile(serial.to_json_dict())
    parallel_data = strip_volatile(parallel.to_json_dict())
    # The worker count is honest config, not volatility; all *results*
    # (verdicts, digests, buckets, failures) must be identical.
    serial_data.pop("config")
    parallel_data.pop("config")
    assert serial_data == parallel_data


# ---------------------------------------------------------------------------
# The engine axis
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
def test_vector_engine_sweep_passes_and_is_reported(tmp_path):
    # An --engine vector mass run doubles as an at-scale differential pass:
    # the engine_equivalence oracle compares all tiers on every program.
    config = MassRunConfig(count=6, seed=0, engine="vector", out_dir=str(tmp_path))
    report = run_mass_evaluation(config)
    data = report.to_json_dict()
    assert data["config"]["engine"] == "vector"
    assert data["pass_rate"] == 1.0
    assert gate_problems(data) == []


def test_unknown_engine_fails_fast():
    with pytest.raises(ReproError):
        run_mass_evaluation(MassRunConfig(count=1, engine="quantum"))


def test_vector_engine_without_numpy_fails_fast(monkeypatch):
    from repro.dataflow import vecbitset

    monkeypatch.setattr(vecbitset, "HAVE_NUMPY", False)
    with pytest.raises(ReproError) as excinfo:
        run_mass_evaluation(MassRunConfig(count=1, engine="vector"))
    assert "requires numpy" in str(excinfo.value)


# ---------------------------------------------------------------------------
# The committed mini-corpus golden
# ---------------------------------------------------------------------------


def test_mini_corpus_matches_golden_report_exactly():
    report = run_mass_evaluation(
        MassRunConfig(count=0, dirs=[str(MINI_CORPUS)], workers=0)
    )
    actual = strip_volatile(report.to_json_dict())
    golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert actual == golden


def test_golden_report_arithmetic_is_consistent():
    golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
    programs = golden["corpus"]["programs"]
    assert programs == 50
    passed = sum(1 for p in golden["programs"] if p["ok"])
    assert golden["pass_rate"] == round(passed / programs, 6) == 1.0
    for counts in golden["oracles"].values():
        assert counts["pass"] + counts["fail"] == programs
        assert counts["rate"] == round(counts["pass"] / programs, 6)
    # Feature buckets: programs counted per feature never exceed the corpus,
    # occurrences bound programs from above, and nothing is missing at 50.
    for feature, bucket in golden["features"].items():
        assert 0 <= bucket["programs"] <= programs
        assert bucket["occurrences"] >= bucket["programs"] or bucket["programs"] == 0
        assert bucket["failed_programs"] == 0
    assert golden["features_missing"] == []
    assert set(GENERATOR_FEATURES) <= set(golden["features"])


def test_mini_corpus_files_match_manifest_digests():
    manifest = json.loads(
        (MINI_CORPUS / "corpus_manifest.json").read_text(encoding="utf-8")
    )
    from repro.eval.corpus import program_digest

    by_name = {entry["name"]: entry for entry in manifest["programs"]}
    mrs_files = sorted(MINI_CORPUS.glob("*.mrs"))
    assert len(mrs_files) == 50
    for path in mrs_files:
        entry = by_name[path.stem]
        assert program_digest(path.read_text(encoding="utf-8")) == entry["digest"]


# ---------------------------------------------------------------------------
# Feature coverage
# ---------------------------------------------------------------------------


def test_feature_buckets_cover_every_generator_feature(tmp_path):
    report = run_mass_evaluation(MassRunConfig(count=12, seed=0))
    data = report.to_json_dict()
    assert set(data["features"]) >= set(GENERATOR_FEATURES)
    assert data["features_missing"] == []
    for feature in GENERATOR_FEATURES:
        assert data["features"][feature]["programs"] > 0, feature


def test_generator_features_constant_is_exactly_the_emitted_vocabulary():
    # GENERATOR_FEATURES promises to be the complete note() vocabulary: a
    # 50-seed sweep must emit every listed feature and nothing unlisted.
    from repro.eval.corpus import fuzz_sweep_programs

    emitted = set()
    for program in fuzz_sweep_programs(50, seed=0):
        emitted.update(program.features)
    assert emitted == set(GENERATOR_FEATURES)
    assert tuple(sorted(GENERATOR_FEATURES)) == GENERATOR_FEATURES


def test_unannotated_corpus_has_no_missing_features(tmp_path):
    # A foreign corpus with no feature histograms must not trip the
    # empty-bucket gate: coverage is only judged when histograms exist.
    (tmp_path / "plain.mrs").write_text(
        "fn main() { let x = 1; }\n", encoding="utf-8"
    )
    report = run_mass_evaluation(MassRunConfig(count=0, dirs=[str(tmp_path)]))
    data = report.to_json_dict()
    assert data["features_missing"] == []
    assert gate_problems(data) == []


# ---------------------------------------------------------------------------
# Failure path: injected oracles
# ---------------------------------------------------------------------------


def test_injected_oracle_fails_gate_with_replayable_artifacts(tmp_path):
    config = MassRunConfig(
        count=3, seed=0, inject="while_loop", out_dir=str(tmp_path)
    )
    report = run_mass_evaluation(config)
    data = report.to_json_dict()
    assert data["pass_rate"] == 0.0
    assert len(data["failures"]) == 3
    problems = gate_problems(data)
    assert any("injected:while_loop" in problem for problem in problems)
    from repro.fuzz.campaign import replay_artifact

    for failure in data["failures"]:
        artifact = Path(failure["artifact"])
        assert artifact.is_relative_to(tmp_path)
        assert replay_artifact(artifact).reproduced


def test_injected_failures_render_with_replay_hint(tmp_path):
    config = MassRunConfig(
        count=2, seed=0, inject="deref_write", out_dir=str(tmp_path)
    )
    data = run_mass_evaluation(config).to_json_dict()
    rendered = render_mass_report(data)
    assert "repro fuzz repro" in rendered
    assert "injected:deref_write" in rendered


def test_front_end_crash_is_a_verdict_not_an_exception():
    result = evaluate_program(
        {
            "name": "broken",
            "source": "fn main( {",
            "digest": "x",
            "loc": 1,
        },
        oracles=["validate"],
    )
    assert not result["ok"]
    assert result["verdicts"][0]["oracle"] == "validate"


# ---------------------------------------------------------------------------
# Ledger integration
# ---------------------------------------------------------------------------


def test_run_records_massrun_row_in_bench_ledger(tmp_path):
    config = MassRunConfig(count=2, seed=0, ledger_dir=str(tmp_path / "ledger"))
    report = run_mass_evaluation(config)
    assert report.ledger is not None
    from repro.obs.history import HistoryLedger

    records = HistoryLedger(tmp_path / "ledger").read()
    metrics = {record.metric for record in records}
    assert "massrun.pass_rate" in metrics
    pass_rate = next(r for r in records if r.metric == "massrun.pass_rate")
    assert pass_rate.value == 1.0
    assert all(r.run_id == report.ledger["run_id"] for r in records)


def test_massrun_pass_rate_is_a_gated_bench_metric():
    from repro.eval.bench import policy_for

    policy = policy_for("massrun.pass_rate")
    assert policy.gate and policy.direction == "higher"
    assert not policy_for("massrun.programs_per_second").gate
