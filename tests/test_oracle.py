"""Tests for the alias oracles (precise vs Ref-blind type-based aliasing)."""

from repro.borrowck.oracle import PreciseAliasOracle, TypeBlindAliasOracle, make_oracle
from repro.mir.ir import Place

from helpers import lowered_from


SOURCE = """
struct Node { weight: u32 }

fn rewire(parent: &mut Node, child: &mut Node, w: u32) -> u32 {
    parent.weight = w;
    child.weight
}

fn local_borrows(c: bool) -> u32 {
    let mut a = Node { weight: 1 };
    let mut b = Node { weight: 2 };
    let r = &mut a;
    r.weight = 5;
    b.weight
}
"""


def oracles_for(fn_name, ref_blind):
    checked, lowered = lowered_from(SOURCE)
    body = lowered.body(fn_name)
    return body, make_oracle(body, checked.signatures, ref_blind=ref_blind)


def named_place(body, name):
    return Place.from_local(body.local_by_name(name).index)


def test_make_oracle_selects_implementation():
    _body, precise = oracles_for("rewire", ref_blind=False)
    _body2, blind = oracles_for("rewire", ref_blind=True)
    assert isinstance(precise, PreciseAliasOracle)
    assert isinstance(blind, TypeBlindAliasOracle)


def test_precise_oracle_keeps_disjoint_mut_refs_separate():
    body, oracle = oracles_for("rewire", ref_blind=False)
    parent = named_place(body, "parent").project_deref()
    child = named_place(body, "child").project_deref()
    assert oracle.resolve(parent) == frozenset({parent})
    assert oracle.resolve(child) == frozenset({child})


def test_ref_blind_oracle_conflates_same_typed_references():
    # Without lifetimes, *parent may alias *child (the rg3d example of §5.3.3).
    body, oracle = oracles_for("rewire", ref_blind=True)
    parent = named_place(body, "parent").project_deref()
    child = named_place(body, "child").project_deref()
    resolved = oracle.resolve(parent)
    assert child in resolved


def test_ref_blind_includes_borrowed_locals_of_same_type():
    body, oracle = oracles_for("local_borrows", ref_blind=True)
    r = named_place(body, "r")
    resolved = oracle.resolve(r.project_deref())
    a = named_place(body, "a")
    assert a in resolved


def test_precise_oracle_resolves_local_borrow_uniquely():
    body, oracle = oracles_for("local_borrows", ref_blind=False)
    r = named_place(body, "r")
    assert oracle.resolve(r.project_deref()) == frozenset({named_place(body, "a")})


def test_aliases_known_reflects_ambiguity():
    body, precise = oracles_for("local_borrows", ref_blind=False)
    body_blind, blind = oracles_for("local_borrows", ref_blind=True)
    r_precise = named_place(body, "r").project_deref()
    r_blind = named_place(body_blind, "r").project_deref()
    assert precise.aliases_known(r_precise)
    assert not blind.aliases_known(r_blind)


def test_conflicting_filters_candidates_through_aliases():
    body, oracle = oracles_for("local_borrows", ref_blind=False)
    r_deref = named_place(body, "r").project_deref()
    a = named_place(body, "a")
    b = named_place(body, "b")
    conflicts = oracle.conflicting(r_deref, [a, b, a.project_field(0)])
    assert a in conflicts
    assert a.project_field(0) in conflicts
    assert b not in conflicts


def test_plain_local_resolution_is_identity():
    body, oracle = oracles_for("local_borrows", ref_blind=True)
    a = named_place(body, "a")
    assert oracle.resolve(a) == frozenset({a})
