"""Tests for the experiment runner, metrics, reports, and perf study.

These run on a heavily scaled-down corpus so the whole module finishes in a
few seconds; the full-scale versions live in ``benchmarks/``.
"""

import pytest

from repro.core.config import MODULAR, MUT_BLIND, REF_BLIND, WHOLE_PROGRAM
from repro.eval.corpus import CrateSpec, generate_corpus
from repro.eval.experiments import (
    crate_boundary_study,
    primary_experiment_conditions,
    run_conditions,
    run_full_experiment,
)
from repro.eval.metrics import collect_metrics, dataset_table
from repro.eval.perf import compare_deep_call_graph, deep_call_graph_program, render_perf_report
from repro.eval.report import (
    render_boundary_study,
    render_figure2,
    render_figure3,
    render_figure4,
    render_summary_table,
    render_table1,
    render_table2,
)
from repro.eval.stats import summarize_differences


TINY_SPECS = [
    CrateSpec(name="alpha", seed=11, n_structs=2, n_compute_helpers=2, n_getters=2,
              n_setters=2, n_passthrough=1, n_partial=1, n_disjoint=1, n_workers=5),
    CrateSpec(name="beta", seed=22, n_structs=2, n_compute_helpers=2, n_getters=2,
              n_setters=2, n_passthrough=1, n_partial=1, n_disjoint=1, n_workers=7,
              p_shared_read=0.8),
]


@pytest.fixture(scope="module")
def tiny_corpus():
    return generate_corpus(specs=TINY_SPECS)


@pytest.fixture(scope="module")
def experiment(tiny_corpus):
    return run_conditions(tiny_corpus, primary_experiment_conditions())


# ---------------------------------------------------------------------------
# Metrics (Table 1 / Table 2)
# ---------------------------------------------------------------------------


def test_metrics_cover_all_crates(tiny_corpus):
    metrics = collect_metrics(tiny_corpus)
    assert {m.name for m in metrics.crates} == {"alpha", "beta"}
    for crate_metrics in metrics.crates:
        assert crate_metrics.loc > 0
        assert crate_metrics.num_functions > 0
        assert crate_metrics.num_variables > crate_metrics.num_functions
        assert crate_metrics.avg_instrs_per_fn > 1


def test_dataset_table_has_total_row(tiny_corpus):
    rows = dataset_table(tiny_corpus)
    assert rows[-1]["crate"] == "Total"
    assert rows[-1]["funcs"] == sum(row["funcs"] for row in rows[:-1])


# ---------------------------------------------------------------------------
# Experiment data
# ---------------------------------------------------------------------------


def test_all_conditions_measure_the_same_variables(experiment):
    sizes_by_condition = [run.sizes for run in experiment.runs.values()]
    keys = set(sizes_by_condition[0])
    for sizes in sizes_by_condition[1:]:
        assert set(sizes) == keys
    assert keys  # non-empty


def test_whole_program_never_less_precise_than_modular(experiment):
    modular = experiment.sizes(MODULAR)
    whole = experiment.sizes(WHOLE_PROGRAM)
    assert all(whole[k] <= modular[k] for k in modular)


def test_ablations_never_more_precise_than_modular(experiment):
    modular = experiment.sizes(MODULAR)
    for condition in (MUT_BLIND, REF_BLIND):
        ablated = experiment.sizes(condition)
        violations = [k for k in modular if ablated[k] < modular[k]]
        assert not violations, violations[:5]


def test_comparison_shapes_match_paper_ordering(experiment):
    wp_vs_mod = summarize_differences(experiment.comparison(WHOLE_PROGRAM, MODULAR))
    mut = summarize_differences(experiment.comparison(MODULAR, MUT_BLIND))
    # The ablation degrades precision for more variables than the modular
    # approximation loses relative to whole-program (the paper's key shape).
    assert mut.fraction_nonzero > wp_vs_mod.fraction_nonzero
    # And the vast majority of variables are identical between Modular and
    # Whole-program.
    assert wp_vs_mod.fraction_zero > 0.8


def test_function_times_are_recorded(experiment):
    run = experiment.run(MODULAR)
    assert run.function_times
    assert run.median_function_time() > 0
    assert run.total_seconds > 0
    assert run.num_variables() == len(run.sizes)


def test_boundary_study_is_consistent(experiment):
    study = crate_boundary_study(experiment)
    assert study.total_variables == len(experiment.sizes(MODULAR))
    assert 0 <= study.fraction_boundary <= 1
    assert study.nonzero_with_boundary + study.nonzero_without_boundary <= study.total_variables
    row = study.row()
    assert set(row) == {
        "variables",
        "hit_crate_boundary_pct",
        "nonzero_diff_rate_with_boundary_pct",
        "nonzero_diff_rate_without_boundary_pct",
    }


def test_run_full_experiment_wires_generation_and_conditions():
    data = run_full_experiment(scale=0.1, conditions=[MODULAR], corpus=None)
    assert "Modular" in data.runs
    assert data.corpus


# ---------------------------------------------------------------------------
# Report rendering
# ---------------------------------------------------------------------------


def test_render_table1_contains_crates_and_total(tiny_corpus):
    text = render_table1(tiny_corpus)
    assert "alpha" in text and "beta" in text and "Total" in text


def test_render_table2_lists_generation_config(tiny_corpus):
    text = render_table2(tiny_corpus)
    assert "seed" in text
    assert "alpha" in text


def test_render_figure2_reports_identical_fraction(experiment):
    text = render_figure2(experiment)
    assert "identical dependency sets" in text
    assert "[paper: 94%]" in text


def test_render_figure3_covers_three_comparisons(experiment):
    text = render_figure3(experiment)
    assert "Mut-blind - Modular" in text
    assert "Ref-blind - Modular" in text
    assert "Modular - Whole-program" in text


def test_render_figure4_reports_r_squared(experiment):
    text = render_figure4(experiment)
    assert "R^2" in text
    assert "alpha" in text


def test_render_boundary_and_summary(experiment):
    assert "crate boundary" in render_boundary_study(experiment)
    assert "measured vs paper" in render_summary_table(experiment)


# ---------------------------------------------------------------------------
# Performance study
# ---------------------------------------------------------------------------


def test_deep_call_graph_program_is_well_formed():
    source = deep_call_graph_program(depth=3, fanout=2)
    from helpers import lowered_from

    checked, lowered = lowered_from(source)
    assert lowered.body("game_engine_render") is not None
    # 2^0 + 2^1 + 2^2 + 2^3 internal passes plus the wrapper.
    assert len(lowered.local_bodies()) == 16 or len(lowered.local_bodies()) >= 15


def test_compare_deep_call_graph_shows_whole_program_slowdown():
    comparison = compare_deep_call_graph(depth=4, fanout=2)
    assert comparison.call_graph_size > 10
    assert comparison.whole_program_seconds > comparison.modular_seconds
    assert comparison.slowdown > 1
    row = comparison.row()
    assert row["function"] == "game_engine_render"


def test_render_perf_report_mentions_slowdown(experiment):
    comparison = compare_deep_call_graph(depth=3, fanout=2)
    text = render_perf_report(list(experiment.runs.values()), comparison)
    assert "median per-function analysis time" in text
    assert "slowdown" in text
