"""Tests for the synthetic evaluation corpus generator."""

import pytest

from repro.eval.corpus import (
    CrateSpec,
    PAPER_CRATE_SPECS,
    generate_corpus,
    generate_crate,
    generate_crate_source,
)
from repro.lang.typeck import check_program
from repro.mir.lower import lower_program
from repro.mir.validate import validate_body


SMALL_SPEC = CrateSpec(
    name="testcrate",
    seed=7,
    n_structs=2,
    n_compute_helpers=2,
    n_getters=2,
    n_setters=2,
    n_passthrough=1,
    n_partial=1,
    n_disjoint=1,
    n_workers=4,
)


def test_paper_presets_cover_ten_crates_with_expected_names():
    names = [spec.name for spec in PAPER_CRATE_SPECS]
    assert len(names) == 10
    assert "hyper" in names and "rustpython" in names and "image" in names
    assert len(set(spec.seed for spec in PAPER_CRATE_SPECS)) == 10


def test_generation_is_deterministic_in_the_seed():
    first = generate_crate_source(SMALL_SPEC)
    second = generate_crate_source(SMALL_SPEC)
    assert first == second


def test_different_seeds_give_different_programs():
    import dataclasses

    other = dataclasses.replace(SMALL_SPEC, seed=8)
    assert generate_crate_source(SMALL_SPEC) != generate_crate_source(other)


def test_generated_crate_parses_and_typechecks():
    generated = generate_crate(SMALL_SPEC)
    checked = check_program(generated.program)
    assert checked.program.local_crate == "testcrate"
    # Every generated helper/worker has a body; the per-struct auditors are
    # signature-only and therefore not part of total_functions().
    assert len(checked.local_functions()) == SMALL_SPEC.total_functions()
    extern_locals = [f for f in generated.program.local.functions() if f.body is None]
    assert len(extern_locals) == SMALL_SPEC.n_structs


def test_generated_crate_lowers_to_valid_mir():
    generated = generate_crate(SMALL_SPEC)
    checked = check_program(generated.program)
    lowered = lower_program(checked)
    for body in lowered.local_bodies():
        assert validate_body(body) == [], body.fn_name


def test_generated_crate_has_dependency_crate_with_externs():
    generated = generate_crate(SMALL_SPEC)
    deps = generated.program.crate("depslib")
    assert deps is not None
    extern_names = {f.name for f in deps.functions() if f.body is None}
    assert {"vec_push", "vec_get", "buf_peek"} <= extern_names


def test_local_crate_contains_style_pattern_helpers():
    source = generate_crate_source(SMALL_SPEC)
    assert "testcrate_view_0" in source  # permission pass-through
    assert "testcrate_try_apply_0" in source  # partially-used inputs
    assert "testcrate_link_0" in source  # disjoint &mut pair
    assert "extern fn testcrate_audit_0" in source  # signature-only auditor


def test_scaled_spec_reduces_function_counts():
    scaled = PAPER_CRATE_SPECS[0].scaled(0.25)
    assert scaled.n_workers < PAPER_CRATE_SPECS[0].n_workers
    assert scaled.n_workers >= 2
    assert scaled.total_functions() < PAPER_CRATE_SPECS[0].total_functions()


def test_generate_corpus_respects_custom_specs_and_scale():
    corpus = generate_corpus(scale=0.5, specs=[SMALL_SPEC])
    assert len(corpus) == 1
    generated = corpus[0]
    assert generated.name == "testcrate"
    assert generated.loc() > 0


@pytest.mark.parametrize("spec", PAPER_CRATE_SPECS, ids=lambda s: s.name)
def test_every_paper_crate_generates_valid_small_scale_program(spec):
    generated = generate_crate(spec.scaled(0.12))
    checked = check_program(generated.program)
    lowered = lower_program(checked)
    assert lowered.local_bodies(), spec.name
    for body in lowered.local_bodies():
        assert validate_body(body) == [], f"{spec.name}:{body.fn_name}"
