"""End-to-end CLI coverage for `repro eval run` / `repro eval report`."""

from __future__ import annotations

import io
import json
from pathlib import Path

from repro.cli import main

MINI_CORPUS = Path(__file__).parent / "data" / "mini_corpus"


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_eval_run_sweep_passes_and_writes_report(tmp_path):
    code, output = run_cli(
        "eval", "run", "--count", "3", "--seed", "0",
        "--out-dir", str(tmp_path / "out"), "--no-ledger",
    )
    assert code == 0
    assert "mass evaluation: 3 programs" in output
    assert "pass rate: 100.00%" in output
    report = json.loads(
        (tmp_path / "out" / "massrun_report.json").read_text(encoding="utf-8")
    )
    assert report["kind"] == "repro-mass-eval"
    assert report["pass_rate"] == 1.0
    assert (tmp_path / "out" / "corpus_manifest.json").is_file()


def test_eval_run_json_output(tmp_path):
    code, output = run_cli(
        "eval", "run", "--count", "2", "--json",
        "--out-dir", str(tmp_path / "out"), "--no-ledger",
    )
    assert code == 0
    data = json.loads(output)
    assert data["corpus"]["programs"] == 2
    assert data["oracles"]["validate"]["rate"] == 1.0


def test_eval_run_dir_ingestion(tmp_path):
    code, output = run_cli(
        "eval", "run", "--dir", str(MINI_CORPUS), "--oracles", "validate",
        "--out-dir", str(tmp_path / "out"), "--no-ledger", "--json",
    )
    assert code == 0
    data = json.loads(output)
    assert data["corpus"]["programs"] == 50
    assert list(data["oracles"]) == ["validate"]


def test_eval_run_gate_fails_on_injected_oracle(tmp_path):
    code, output = run_cli(
        "eval", "run", "--count", "2", "--inject", "while_loop", "--gate",
        "--out-dir", str(tmp_path / "out"), "--no-ledger",
    )
    assert code == 1
    assert "gate: oracle injected:while_loop" in output
    artifacts = list((tmp_path / "out" / "failures").glob("*.json"))
    assert len(artifacts) == 2
    # The artifacts replay through the existing `repro fuzz repro` path
    # (exit 0 = the recorded failure reproduced as recorded).
    replay_code, replay_output = run_cli("fuzz", "repro", str(artifacts[0]))
    assert replay_code == 0
    assert "reproduced as recorded" in replay_output


def test_eval_run_without_gate_reports_failures_but_exits_zero(tmp_path):
    code, output = run_cli(
        "eval", "run", "--count", "1", "--inject", "deref_write",
        "--out-dir", str(tmp_path / "out"), "--no-ledger",
    )
    assert code == 0
    assert "failures:" in output


def test_eval_run_empty_corpus_is_a_cli_error(tmp_path):
    code, output = run_cli(
        "eval", "run", "--out-dir", str(tmp_path / "out"), "--no-ledger"
    )
    assert code == 2
    assert "non-empty corpus" in output


def test_eval_report_renders_and_gates(tmp_path):
    # count=6 at seed 0 exercises every generator feature, so the coverage
    # gate passes alongside the oracle gate; validate-only keeps it fast.
    run_cli(
        "eval", "run", "--count", "6", "--oracles", "validate",
        "--out-dir", str(tmp_path / "out"), "--no-ledger",
    )
    report_path = str(tmp_path / "out" / "massrun_report.json")
    code, output = run_cli("eval", "report", report_path)
    assert code == 0
    assert "oracle battery:" in output
    code, output = run_cli("eval", "report", report_path, "--gate")
    assert code == 0
    assert "gate: ok" in output
    code, output = run_cli("eval", "report", report_path, "--json")
    assert json.loads(output)["kind"] == "repro-mass-eval"


def test_eval_report_rejects_foreign_json(tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"kind": "something-else"}), encoding="utf-8")
    code, output = run_cli("eval", "report", str(bogus))
    assert code == 2
    assert "not a mass-evaluation report" in output


def test_eval_run_records_ledger_row(tmp_path):
    code, output = run_cli(
        "eval", "run", "--count", "2",
        "--out-dir", str(tmp_path / "out"),
        "--ledger-dir", str(tmp_path / "ledger"),
    )
    assert code == 0
    assert "ledger:" in output
    from repro.obs.history import HistoryLedger

    metrics = {record.metric for record in HistoryLedger(tmp_path / "ledger").read()}
    assert "massrun.pass_rate" in metrics
    # The row trends in `repro bench report` alongside the suite metrics.
    code, output = run_cli(
        "bench", "--ledger-dir", str(tmp_path / "ledger"), "report"
    )
    assert code == 0
    assert "massrun.pass_rate" in output


def test_eval_run_unknown_injected_oracle_is_a_cli_error(tmp_path):
    code, output = run_cli(
        "eval", "run", "--count", "1", "--inject", "nope",
        "--out-dir", str(tmp_path / "out"), "--no-ledger",
    )
    assert code == 2
    assert "unknown injected oracle" in output
