"""End-to-end tests for the per-function information flow analysis.

These tests exercise the behaviours Section 2 and Figure 1 of the paper call
out: field-sensitivity, mutation through references, the modular call rule
(mutability + lifetimes), and indirect flows via control dependence.
"""

from repro.core.config import AnalysisConfig
from repro.core.theta import is_arg_location
from repro.mir.ir import CallTerminator, Place

from helpers import GET_COUNT_SOURCE, analyze


def deps_of(result, name):
    return result.deps_of_variable(name)


def arg_tags(deps):
    return {d.statement for d in deps if is_arg_location(d)}


def real_locations(deps):
    return {d for d in deps if not is_arg_location(d)}


def call_location(result, fn_name):
    for index, block in enumerate(result.body.blocks):
        if isinstance(block.terminator, CallTerminator) and block.terminator.func == fn_name:
            return result.body.terminator_location(index)
    raise AssertionError(f"no call to {fn_name}")


# ---------------------------------------------------------------------------
# Direct flows
# ---------------------------------------------------------------------------


def test_variable_depends_on_its_initializer_argument():
    result = analyze("fn f(a: u32, b: u32) -> u32 { let x = a + 1; x }", "f")
    assert arg_tags(deps_of(result, "x")) == {0}
    assert arg_tags(result.deps_of_return()) == {0}


def test_unused_argument_does_not_flow():
    result = analyze("fn f(a: u32, b: u32) -> u32 { a }", "f")
    assert arg_tags(result.deps_of_return()) == {0}


def test_field_sensitivity_of_tuple_assignment():
    # The §2.1 example: mutating t.1 must not pollute t.0.
    source = """
    fn f(a: u32, b: u32) -> u32 {
        let mut t = (a, b);
        t.1 = 3;
        t.0
    }
    """
    result = analyze(source, "f")
    assert arg_tags(result.deps_of_return()) == {0}


def test_whole_tuple_read_sees_both_fields():
    source = """
    fn f(a: u32, b: u32) -> (u32, u32) {
        let mut t = (a, 0);
        t.1 = b;
        t
    }
    """
    result = analyze(source, "f")
    assert arg_tags(result.deps_of_return()) == {0, 1}


def test_struct_field_mutation_is_field_sensitive():
    source = """
    struct P { x: u32, y: u32 }
    fn f(a: u32, b: u32) -> u32 {
        let mut p = P { x: a, y: 0 };
        p.y = b;
        p.x
    }
    """
    result = analyze(source, "f")
    assert arg_tags(result.deps_of_return()) == {0}


def test_strong_update_forgets_old_dependency():
    source = """
    fn f(a: u32, b: u32) -> u32 {
        let mut x = a;
        x = b;
        x
    }
    """
    result = analyze(source, "f")
    assert arg_tags(result.deps_of_return()) == {1}


def test_additive_updates_when_strong_updates_disabled():
    source = """
    fn f(a: u32, b: u32) -> u32 {
        let mut x = a;
        x = b;
        x
    }
    """
    result = analyze(source, "f", AnalysisConfig(strong_updates=False))
    assert arg_tags(result.deps_of_return()) == {0, 1}


# ---------------------------------------------------------------------------
# References and mutation (T-AssignDeref)
# ---------------------------------------------------------------------------


def test_mutation_through_reference_reaches_referent():
    source = """
    fn f(a: u32) -> u32 {
        let mut x = 0;
        let r = &mut x;
        *r = a;
        x
    }
    """
    result = analyze(source, "f")
    assert arg_tags(result.deps_of_return()) == {0}


def test_reborrowed_field_mutation_is_field_sensitive():
    # The §2.2 example: *z := 1 where z points to x.1 must not affect x.0.
    source = """
    fn f(a: u32) -> (u32, u32) {
        let mut x = (0, 0);
        let y = &mut x;
        let z = &mut y.1;
        *z = a;
        x
    }
    """
    result = analyze(source, "f")
    body = result.body
    x_local = body.local_by_name("x").index
    x0_deps = result.deps_of_place(Place.from_local(x_local).project_field(0))
    x1_deps = result.deps_of_place(Place.from_local(x_local).project_field(1))
    assert 0 not in arg_tags(x0_deps)
    assert 0 in arg_tags(x1_deps)


def test_conditional_pointer_target_weakly_updates_both():
    source = """
    fn f(c: bool, v: u32) -> u32 {
        let mut a = 1;
        let mut b = 2;
        let mut r = &mut a;
        if c {
            r = &mut b;
        }
        *r = v;
        a
    }
    """
    result = analyze(source, "f")
    # `a` may or may not have been written: it keeps its old deps and gains v's.
    a_deps = arg_tags(deps_of(result, "a"))
    assert 1 in a_deps


# ---------------------------------------------------------------------------
# Calls: the modular rule (T-App)
# ---------------------------------------------------------------------------


def test_call_mutates_only_mutable_reference_arguments():
    source = """
    extern fn combine(dst: &mut u32, src: &u32, k: u32);
    fn f(a: u32, b: u32) -> u32 {
        let mut x = a;
        let y = b;
        combine(&mut x, &y, 3);
        y
    }
    """
    result = analyze(source, "f")
    # y was only passed by shared reference: it must keep exactly its own deps.
    assert arg_tags(deps_of(result, "y")) == {1}
    # x was passed by &mut: it now depends on everything readable (a and b).
    assert arg_tags(deps_of(result, "x")) == {0, 1}


def test_mut_blind_treats_shared_refs_as_mutable():
    source = """
    extern fn inspect(v: &u32);
    fn f(a: u32, b: u32) -> u32 {
        let x = a;
        inspect(&x);
        x
    }
    """
    precise = analyze(source, "f")
    blind = analyze(source, "f", AnalysisConfig(mut_blind=True))
    inspect_loc = call_location(blind, "inspect")
    assert inspect_loc not in real_locations(precise.deps_of_return())
    assert inspect_loc in real_locations(blind.deps_of_return())


def test_call_return_value_depends_on_all_readable_inputs():
    source = """
    extern fn mix(a: &u32, b: u32) -> u32;
    fn f(p: u32, q: u32) -> u32 {
        let r = mix(&p, q);
        r
    }
    """
    result = analyze(source, "f")
    assert arg_tags(result.deps_of_return()) == {0, 1}


def test_call_mutation_through_argument_pointee_includes_all_inputs():
    source = """
    struct Buf;
    extern fn write(b: &mut Buf, value: u32);
    fn f(b: &mut Buf, secret: u32) {
        write(b, secret);
    }
    """
    result = analyze(source, "f")
    b_local = result.body.local_by_name("b").index
    pointee_deps = result.deps_of_place(Place.from_local(b_local).project_deref())
    assert 1 in arg_tags(pointee_deps)


def test_ref_blind_conflates_disjoint_mut_arguments():
    source = """
    struct Node { w: u32 }
    extern fn touch(n: &mut Node, v: u32);
    fn f(parent: &mut Node, child: &mut Node, v: u32) -> u32 {
        touch(parent, v);
        child.w
    }
    """
    precise = analyze(source, "f")
    blind = analyze(source, "f", AnalysisConfig(ref_blind=True))
    touch_loc = call_location(blind, "touch")
    assert touch_loc not in real_locations(precise.deps_of_return())
    assert touch_loc in real_locations(blind.deps_of_return())


# ---------------------------------------------------------------------------
# Control dependence (indirect flows)
# ---------------------------------------------------------------------------


def test_mutation_inside_branch_picks_up_condition():
    source = """
    fn f(c: bool, v: u32) -> u32 {
        let mut x = 0;
        if c {
            x = v;
        }
        x
    }
    """
    result = analyze(source, "f")
    assert arg_tags(result.deps_of_return()) == {0, 1}


def test_control_deps_can_be_disabled():
    source = """
    fn f(c: bool, v: u32) -> u32 {
        let mut x = 0;
        if c {
            x = v;
        }
        x
    }
    """
    result = analyze(source, "f", AnalysisConfig(track_control_deps=False))
    assert arg_tags(result.deps_of_return()) == {1}


def test_loop_carried_dependencies_reach_fixpoint():
    source = """
    fn f(n: u32, seed: u32) -> u32 {
        let mut acc = seed;
        let mut i = 0;
        while i < n {
            acc = acc + i;
            i = i + 1;
        }
        acc
    }
    """
    result = analyze(source, "f")
    assert arg_tags(result.deps_of_return()) == {0, 1}


def test_get_count_indirect_flow_matches_figure1():
    result = analyze(GET_COUNT_SOURCE, "get_count")
    h_deps = real_locations(deps_of(result, "h"))
    insert_loc = call_location(result, "insert")
    contains_loc = call_location(result, "contains_key")
    # The map depends on the insert call (direct mutation) and on the
    # contains_key result via the switch (indirect/control flow).
    assert insert_loc in h_deps
    assert contains_loc in h_deps
    # k is never mutated: it depends only on itself.
    assert arg_tags(deps_of(result, "k")) == {1}
    assert real_locations(deps_of(result, "k")) == set()


# ---------------------------------------------------------------------------
# Result API
# ---------------------------------------------------------------------------


def test_dependency_sizes_reports_every_local():
    result = analyze(GET_COUNT_SOURCE, "get_count")
    sizes = result.dependency_sizes()
    assert "<return>" in sizes
    assert "h" in sizes and "k" in sizes
    assert all(isinstance(size, int) for size in sizes.values())
    without_temps = result.dependency_sizes(include_temporaries=False)
    assert set(without_temps) <= set(sizes)


def test_backward_slice_excludes_argument_tags():
    result = analyze(GET_COUNT_SOURCE, "get_count")
    for location in result.backward_slice_of_variable("h"):
        assert location.block >= 0


def test_forward_slice_contains_source_and_downstream():
    source = """
    fn f(a: u32) -> u32 {
        let x = a + 1;
        let y = x * 2;
        let z = 7;
        y
    }
    """
    result = analyze(source, "f")
    body = result.body
    x_local = body.local_by_name("x").index
    x_def = None
    for location in body.locations():
        stmt = body.statement_at(location)
        if stmt is not None and stmt.place is not None and stmt.place.local == x_local:
            x_def = location
            break
    forward = result.forward_slice(x_def)
    assert x_def in forward
    # y is downstream of x, z is not.
    y_local = body.local_by_name("y").index
    z_local = body.local_by_name("z").index
    written_locals = set()
    for location in forward:
        stmt = body.statement_at(location)
        if stmt is not None and stmt.place is not None:
            written_locals.add(stmt.place.local)
    assert y_local in written_locals
    assert z_local not in written_locals


def test_annotations_cover_assignments():
    result = analyze("fn f(a: u32) -> u32 { let x = a; x }", "f")
    annotations = result.annotations()
    assert annotations
    assert all("Θ(" in text for text in annotations.values())


def test_theta_at_location_reconstructs_intermediate_states():
    source = """
    fn f(a: u32, b: u32) -> u32 {
        let mut x = a;
        x = x + b;
        x
    }
    """
    result = analyze(source, "f")
    body = result.body
    x_local = body.local_by_name("x").index
    locations = [
        location
        for location in body.locations()
        if body.statement_at(location) is not None
        and body.statement_at(location).place is not None
        and body.statement_at(location).place.local == x_local
    ]
    first, second = locations[0], locations[1]
    before_second = result.theta_at(second).read_conflicts(Place.from_local(x_local))
    after_second = result.theta_after(second).read_conflicts(Place.from_local(x_local))
    assert arg_tags(before_second) == {0}
    assert arg_tags(after_second) == {0, 1}
