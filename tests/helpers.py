"""Shared sources and construction helpers for the test suite.

These used to live in ``conftest.py``, but test modules importing them via
``from conftest import ...`` broke as soon as another ``conftest.py``
(``benchmarks/``) shadowed the name on ``sys.path``.  Import them explicitly
from this module instead.
"""

from __future__ import annotations

from repro.core.config import AnalysisConfig
from repro.core.engine import FlowEngine
from repro.lang.parser import parse_program
from repro.lang.typeck import check_program
from repro.mir.lower import lower_program


# The paper's Figure 1 example, used across many tests.
GET_COUNT_SOURCE = """
struct HashMap;

extern fn contains_key(h: &HashMap, k: u32) -> bool;
extern fn insert(h: &mut HashMap, k: u32, v: u32);
extern fn get(h: &HashMap, k: u32) -> u32;

fn get_count(h: &mut HashMap, k: u32) -> u32 {
    if !contains_key(h, k) {
        insert(h, k, 0);
        0
    } else {
        get(h, k)
    }
}
"""

# A program exercising Modular vs Whole-program differences: `helper` does
# not mutate its &mut argument and its result depends only on `y`.
HELPER_CALLER_SOURCE = """
fn helper(x: &mut u32, y: u32) -> u32 {
    y + 1
}

fn caller(a: u32, b: u32) -> u32 {
    let mut x = a;
    let r = helper(&mut x, b);
    x + r
}
"""


def checked_from(source: str):
    """Parse + type check helper used by many tests."""
    return check_program(parse_program(source))


def lowered_from(source: str):
    """Parse + check + lower helper used by many tests."""
    checked = checked_from(source)
    return checked, lower_program(checked)


def analyze(source: str, fn_name: str, config: AnalysisConfig | None = None):
    """End-to-end helper: analyse one function of a source snippet."""
    engine = FlowEngine.from_source(source, config=config)
    return engine.analyze_function(fn_name)
