"""Tests for the Whole-program analysis condition and its call summaries."""

from repro.core.config import AnalysisConfig, MODULAR, WHOLE_PROGRAM
from repro.core.engine import FlowEngine
from repro.core.theta import is_arg_location

from helpers import HELPER_CALLER_SOURCE


def arg_tags(deps):
    return {d.statement for d in deps if is_arg_location(d)}


def analyze_with(source, fn_name, config):
    engine = FlowEngine.from_source(source, config=config)
    return engine.analyze_function(fn_name)


# ---------------------------------------------------------------------------
# Precision gains over the modular approximation
# ---------------------------------------------------------------------------


def test_unmutated_mut_ref_argument_stays_clean():
    # `helper` takes &mut x but never writes it; whole-program sees that.
    modular = analyze_with(HELPER_CALLER_SOURCE, "caller", MODULAR)
    whole = analyze_with(HELPER_CALLER_SOURCE, "caller", WHOLE_PROGRAM)
    assert arg_tags(modular.deps_of_variable("x")) == {0, 1}
    assert arg_tags(whole.deps_of_variable("x")) == {0}


def test_return_depends_only_on_used_parameter():
    # helper's result only depends on y (the nalgebra pattern of §5.3.1).
    modular = analyze_with(HELPER_CALLER_SOURCE, "caller", MODULAR)
    whole = analyze_with(HELPER_CALLER_SOURCE, "caller", WHOLE_PROGRAM)
    assert arg_tags(modular.deps_of_variable("r")) == {0, 1}
    assert arg_tags(whole.deps_of_variable("r")) == {1}


CROP_SOURCE = """
struct Image { pixels: u32, width: u32 }

// The image::crop pattern (§5.3.1): takes &mut, returns a mutable view,
// mutates nothing.
fn crop(image: &mut Image, x: u32) -> &mut u32 {
    &mut image.pixels
}

fn thumbnail(image: &mut Image, size: u32) -> u32 {
    let view = crop(image, size);
    image.width
}
"""


def test_crop_pattern_whole_program_sees_no_mutation():
    modular = analyze_with(CROP_SOURCE, "thumbnail", MODULAR)
    whole = analyze_with(CROP_SOURCE, "thumbnail", WHOLE_PROGRAM)
    modular_sizes = modular.dependency_sizes()
    whole_sizes = whole.dependency_sizes()
    # The return value reads image.width; under Modular the crop call is
    # assumed to have mutated the image, so the return set is strictly larger.
    assert whole_sizes["<return>"] < modular_sizes["<return>"]


ACTUAL_MUTATION_SOURCE = """
struct Counter { value: u32 }

fn bump(c: &mut Counter, amount: u32) {
    c.value = c.value + amount;
}

fn track(amount: u32) -> u32 {
    let mut c = Counter { value: 0 };
    bump(&mut c, amount);
    c.value
}
"""


def test_real_mutations_are_preserved_by_whole_program():
    # Whole-program must not *lose* flows that actually happen.
    whole = analyze_with(ACTUAL_MUTATION_SOURCE, "track", WHOLE_PROGRAM)
    assert arg_tags(whole.deps_of_return()) == {0}


def test_flow_between_arguments_is_translated():
    source = """
    fn copy_into(dst: &mut u32, src: &u32) {
        *dst = *src;
    }
    fn f(a: u32, b: u32) -> u32 {
        let mut out = a;
        copy_into(&mut out, &b);
        out
    }
    """
    whole = analyze_with(source, "f", WHOLE_PROGRAM)
    assert 1 in arg_tags(whole.deps_of_variable("out"))


def test_transitive_whole_program_recursion():
    source = """
    fn inner(x: &mut u32, y: u32) -> u32 { y }
    fn middle(x: &mut u32, y: u32) -> u32 { inner(x, y) }
    fn outer(a: u32, b: u32) -> u32 {
        let mut x = a;
        let r = middle(&mut x, b);
        x
    }
    """
    modular = analyze_with(source, "outer", MODULAR)
    whole = analyze_with(source, "outer", WHOLE_PROGRAM)
    assert arg_tags(modular.deps_of_return()) == {0, 1}
    # Neither inner nor middle mutates x, and whole-program sees through both.
    assert arg_tags(whole.deps_of_return()) == {0}


def test_recursive_function_falls_back_to_modular():
    source = """
    fn rec(x: &mut u32, n: u32) -> u32 {
        if n == 0 { 0 } else { rec(x, n - 1) }
    }
    fn f(a: u32, n: u32) -> u32 {
        let mut x = a;
        rec(&mut x, n);
        x
    }
    """
    whole = analyze_with(source, "f", WHOLE_PROGRAM)
    # The cycle forces the modular rule for the recursive call, which assumes
    # x is mutated with all inputs; the analysis terminates and stays sound.
    assert arg_tags(whole.deps_of_variable("x")) == {0, 1}


def test_depth_limit_forces_modular_fallback():
    source = """
    fn inner(x: &mut u32, y: u32) -> u32 { y }
    fn middle(x: &mut u32, y: u32) -> u32 { inner(x, y) }
    fn outer(a: u32, b: u32) -> u32 {
        let mut x = a;
        middle(&mut x, b);
        x
    }
    """
    limited = analyze_with(source, "outer", AnalysisConfig(whole_program=True, max_whole_program_depth=0))
    assert arg_tags(limited.deps_of_variable("x")) == {0, 1}


# ---------------------------------------------------------------------------
# Crate boundaries (Section 5.4.2)
# ---------------------------------------------------------------------------


CROSS_CRATE_SOURCE = """
crate deps {
    fn dep_helper(x: &mut u32, y: u32) -> u32 { y }
}
crate app {
    fn local_helper(x: &mut u32, y: u32) -> u32 { y }

    fn uses_local(a: u32, b: u32) -> u32 {
        let mut x = a;
        local_helper(&mut x, b);
        x
    }

    fn uses_dep(a: u32, b: u32) -> u32 {
        let mut x = a;
        dep_helper(&mut x, b);
        x
    }
}
"""


def test_whole_program_cannot_see_across_crate_boundary():
    from repro.lang.parser import parse_program

    program = parse_program(CROSS_CRATE_SOURCE, local_crate="app")
    engine = FlowEngine.from_program(program, config=WHOLE_PROGRAM)
    local = engine.analyze_function("uses_local")
    dep = engine.analyze_function("uses_dep")
    # Within the crate, the callee body is available and x stays clean.
    assert arg_tags(local.deps_of_variable("x")) == {0}
    # Across the boundary only the signature is available: x is assumed mutated.
    assert arg_tags(dep.deps_of_variable("x")) == {0, 1}


def test_boundary_call_locations_are_recorded():
    from repro.lang.parser import parse_program

    program = parse_program(CROSS_CRATE_SOURCE, local_crate="app")
    engine = FlowEngine.from_program(program, config=WHOLE_PROGRAM)
    dep = engine.analyze_function("uses_dep")
    local = engine.analyze_function("uses_local")
    assert dep.boundary_call_locations()
    assert not local.boundary_call_locations()
    assert dep.variable_hits_boundary("x")
    assert not local.variable_hits_boundary("x")


# ---------------------------------------------------------------------------
# Summary contents
# ---------------------------------------------------------------------------


def test_summary_reports_mutations_and_sources():
    source = """
    fn scale(dst: &mut u32, factor: u32, unused: &u32) {
        *dst = *dst * factor;
    }
    fn f(a: u32) -> u32 { a }
    """
    engine = FlowEngine.from_source(source, config=WHOLE_PROGRAM)
    provider = engine._provider
    summary = provider.summary_for("scale")
    assert summary is not None
    assert summary.mutated_params() == {0}
    ((param, _path), sources), = summary.mutations.items()
    assert param == 0
    assert 1 in sources  # factor flows into the mutation
    assert "scale" in summary.pretty()


def test_summary_return_sources_subset_of_params():
    source = """
    fn pick(a: u32, b: u32, c: u32) -> u32 { b }
    fn f(a: u32) -> u32 { a }
    """
    engine = FlowEngine.from_source(source, config=WHOLE_PROGRAM)
    summary = engine._provider.summary_for("pick")
    assert summary.return_sources == frozenset({1})
    assert summary.mutations == {}


def test_summary_for_extern_function_is_none():
    source = """
    extern fn mystery(x: &mut u32);
    fn f(a: u32) -> u32 { a }
    """
    engine = FlowEngine.from_source(source, config=WHOLE_PROGRAM)
    assert engine._provider.summary_for("mystery") is None
    assert engine._provider.is_crate_boundary("mystery")
