"""Tests for signature summaries (the modular analysis's only view of callees)."""

from repro.lang.types import Mutability
from repro.borrowck.signatures import summarize_signature

from helpers import checked_from


def signature_of(source, name):
    return checked_from(source).signature(name)


def summary_of(source, name):
    return summarize_signature(signature_of(source, name))


def test_scalar_params_have_no_refs():
    summary = summary_of("extern fn f(a: u32, b: bool);", "f")
    assert summary.all_refs_of_param(0) == []
    assert summary.all_refs_of_param(1) == []
    assert summary.mutated_param_indices() == []


def test_mutable_reference_param_is_mutable():
    summary = summary_of("extern fn f(a: &mut u32, b: &u32);", "f")
    assert summary.param_may_be_mutated(0)
    assert not summary.param_may_be_mutated(1)
    assert summary.mutated_param_indices() == [0]


def test_refs_nested_in_tuples_are_found_with_paths():
    summary = summary_of("extern fn f(pair: (&mut u32, &u32));", "f")
    refs = summary.all_refs_of_param(0)
    assert len(refs) == 2
    paths = {info.path: info.mutability for info in refs}
    assert paths[(0,)] is Mutability.MUT
    assert paths[(1,)] is Mutability.SHARED
    assert [info.path for info in summary.mutable_refs_of_param(0)] == [(0,)]


def test_refs_nested_in_structs_are_found():
    summary = summary_of(
        """
        struct Holder { data: &'a mut u32, tag: u32 }
        extern fn f<'a>(h: Holder);
        """,
        "f",
    )
    refs = summary.all_refs_of_param(0)
    assert len(refs) == 1
    assert refs[0].path == (0,)
    assert refs[0].is_mutable()


def test_opaque_struct_params_are_not_traversed():
    summary = summary_of(
        """
        struct Vec;
        extern fn f(v: Vec);
        """,
        "f",
    )
    assert summary.all_refs_of_param(0) == []


def test_return_without_refs_has_no_tied_params():
    summary = summary_of("extern fn f(a: &u32) -> u32;", "f")
    assert not summary.return_contains_ref()
    assert summary.return_alias_params() == set()


def test_return_tied_to_single_elided_input():
    # Elision: the single input lifetime flows to the output (Vec::iter style).
    summary = summary_of(
        """
        struct Vec;
        struct Iter;
        extern fn iter(v: &Vec) -> &Vec;
        """,
        "iter",
    )
    assert summary.return_contains_ref()
    assert summary.return_alias_params() == {0}


def test_return_tied_only_to_matching_explicit_lifetime():
    summary = summary_of(
        "extern fn pick<'a, 'b>(a: &'a u32, b: &'b u32, n: u32) -> &'a u32;", "pick"
    )
    assert summary.return_alias_params() == {0}


def test_return_with_unmatched_lifetime_ties_to_all_ref_params():
    # No lifetime in common: the conservative fallback ties the return to
    # every reference-carrying parameter (but not the scalar).
    summary = summary_of(
        "extern fn merge(a: &u32, b: &mut u32, n: u32) -> &u32;", "merge"
    )
    assert summary.return_alias_params() == {0, 1}


def test_get_mut_style_signature():
    # fn get_mut<'a>(&'a mut self, i: usize) -> &'a mut T  (Section 8 example)
    summary = summary_of(
        """
        struct Vec;
        extern fn get_mut<'a>(v: &'a mut Vec, i: u32) -> &'a mut u32;
        """,
        "get_mut",
    )
    assert summary.param_may_be_mutated(0)
    assert not summary.param_may_be_mutated(1)
    assert summary.return_alias_params() == {0}


def test_readable_params_lists_all():
    summary = summary_of("extern fn f(a: &u32, b: u32);", "f")
    assert summary.readable_param_indices() == [0, 1]


def test_push_and_iter_signatures_from_paper_intro():
    # fn push(&mut self, value: i32) / fn iter<'a>(&'a self) -> Iter<'a, i32>
    source = """
    struct Vec;
    struct Iter { ptr: &'a u32 }
    extern fn push(v: &mut Vec, value: u32);
    extern fn iter<'a>(v: &'a Vec) -> Iter;
    """
    push = summary_of(source, "push")
    assert push.mutated_param_indices() == [0]
    iter_summary = summary_of(source, "iter")
    assert not iter_summary.param_may_be_mutated(0)
