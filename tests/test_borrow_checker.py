"""Tests for the lightweight ownership-safety (borrow) checker."""

import pytest

from repro.borrowck.checker import check_all_bodies, check_body
from repro.mir.lower import lower_program

from helpers import lowered_from


def violations_for(source, fn_name):
    checked, lowered = lowered_from(source)
    return check_body(lowered.body(fn_name), checked.signatures)


# ---------------------------------------------------------------------------
# Programs that must be accepted
# ---------------------------------------------------------------------------


def test_plain_arithmetic_is_safe():
    assert violations_for("fn f(a: u32) -> u32 { a + 1 }", "f") == []


def test_sequential_borrows_do_not_conflict():
    source = """
    fn f() -> u32 {
        let mut x = 1;
        let r1 = &mut x;
        *r1 = 2;
        let r2 = &mut x;
        *r2 = 3;
        x
    }
    """
    assert violations_for(source, "f") == []


def test_shared_borrows_of_same_place_coexist():
    source = """
    extern fn both(a: &u32, b: &u32) -> u32;
    fn f() -> u32 {
        let x = 1;
        both(&x, &x)
    }
    """
    assert violations_for(source, "f") == []


def test_disjoint_field_borrows_coexist():
    source = """
    fn f() -> u32 {
        let mut t = (1, 2);
        let a = &mut t.0;
        let b = &mut t.1;
        *a = 10;
        *b = 20;
        t.0 + t.1
    }
    """
    assert violations_for(source, "f") == []


def test_mutation_after_loan_expires_is_safe():
    source = """
    fn f() -> u32 {
        let mut x = 1;
        let r = &x;
        let y = *r;
        x = 2;
        x + y
    }
    """
    assert violations_for(source, "f") == []


def test_mutation_through_mut_ref_argument_is_safe():
    source = """
    struct S { v: u32 }
    fn f(s: &mut S, n: u32) { s.v = n; }
    """
    assert violations_for(source, "f") == []


# ---------------------------------------------------------------------------
# Programs that must be rejected
# ---------------------------------------------------------------------------


def test_assign_while_shared_borrow_is_live():
    source = """
    fn f() -> u32 {
        let mut x = 1;
        let r = &x;
        x = 2;
        *r
    }
    """
    violations = violations_for(source, "f")
    assert violations
    assert violations[0].kind == "assign-while-borrowed"
    assert "borrowed" in violations[0].message


def test_two_live_mutable_borrows_conflict():
    source = """
    extern fn use_both(a: &mut u32, b: &mut u32);
    fn f() {
        let mut x = 1;
        let r1 = &mut x;
        let r2 = &mut x;
        use_both(r1, r2);
    }
    """
    violations = violations_for(source, "f")
    assert any(v.kind == "conflicting-borrow" for v in violations)


def test_shared_and_mutable_borrow_conflict():
    source = """
    extern fn use_both(a: &u32, b: &mut u32);
    fn f() {
        let mut x = 1;
        let shared = &x;
        let unique = &mut x;
        use_both(shared, unique);
    }
    """
    violations = violations_for(source, "f")
    assert any(v.kind == "conflicting-borrow" for v in violations)


def test_borrow_of_whole_conflicts_with_borrow_of_field():
    source = """
    extern fn use_both(a: &mut u32, b: &mut (u32, u32));
    fn f() {
        let mut t = (1, 2);
        let field_ref = &mut t.0;
        let whole_ref = &mut t;
        use_both(field_ref, whole_ref);
    }
    """
    violations = violations_for(source, "f")
    assert any(v.kind == "conflicting-borrow" for v in violations)


def test_violation_renders_as_diagnostic():
    source = """
    fn f() -> u32 {
        let mut x = 1;
        let r = &x;
        x = 2;
        *r
    }
    """
    violations = violations_for(source, "f")
    diagnostic = violations[0].to_diagnostic()
    assert "assign-while-borrowed" in diagnostic.render()


# ---------------------------------------------------------------------------
# Whole-program helpers and the corpus
# ---------------------------------------------------------------------------


def test_check_all_bodies_reports_only_offenders():
    source = """
    fn good(a: u32) -> u32 { a }
    fn bad() -> u32 {
        let mut x = 1;
        let r = &x;
        x = 2;
        *r
    }
    """
    checked, lowered = lowered_from(source)
    report = check_all_bodies(lowered, checked.signatures)
    assert set(report) == {"bad"}


def test_generated_corpus_is_ownership_safe():
    from repro.eval.corpus import CrateSpec, generate_crate
    from repro.lang.typeck import check_program

    spec = CrateSpec(name="bcheck", seed=5, n_structs=2, n_compute_helpers=2,
                     n_getters=2, n_setters=2, n_passthrough=1, n_partial=1,
                     n_disjoint=1, n_workers=6)
    generated = generate_crate(spec)
    checked = check_program(generated.program)
    lowered = lower_program(checked)
    report = check_all_bodies(lowered, checked.signatures)
    assert report == {}, report
