"""Tests for the dependency context Θ and its lattice structure."""

from repro.core.theta import DependencyContext, ThetaLattice, arg_location, is_arg_location
from repro.mir.ir import Location, Place


def loc(block, stmt):
    return Location(block, stmt)


def place(local, *fields):
    p = Place.from_local(local)
    for index in fields:
        p = p.project_field(index)
    return p


def test_get_of_unknown_place_is_empty():
    theta = DependencyContext()
    assert theta.get(place(1)) == frozenset()


def test_set_and_add_accumulate():
    theta = DependencyContext()
    theta.set(place(1), [loc(0, 0)])
    theta.add(place(1), [loc(0, 1)])
    assert theta.get(place(1)) == {loc(0, 0), loc(0, 1)}


def test_read_of_whole_place_includes_tracked_fields():
    theta = DependencyContext()
    theta.set(place(1), [loc(0, 0)])
    theta.set(place(1, 0), [loc(0, 1)])
    theta.set(place(1, 1), [loc(0, 2)])
    theta.set(place(2), [loc(9, 9)])
    # Reading the whole tuple sees every field; other locals are unrelated.
    assert theta.read_conflicts(place(1)) == {loc(0, 0), loc(0, 1), loc(0, 2)}
    assert loc(9, 9) not in theta.read_conflicts(place(1))


def test_read_of_tracked_field_is_field_sensitive():
    theta = DependencyContext()
    theta.set(place(1), [loc(0, 0)])
    theta.set(place(1, 0), [loc(0, 1)])
    theta.set(place(1, 1), [loc(0, 2)])
    # A tracked field sees only its own entry (and tracked sub-places), not
    # the root's accumulated dependencies nor its sibling's.
    assert theta.read_conflicts(place(1, 0)) == {loc(0, 1)}


def test_read_of_untracked_place_falls_back_to_nearest_ancestor():
    theta = DependencyContext()
    theta.set(place(1), [loc(0, 0)])
    theta.set(place(1, 0), [loc(0, 1)])
    # place(1).field(0).field(2) is untracked: the nearest tracked ancestor is
    # place(1).field(0), so its dependencies (not the root's) are used.
    assert theta.read_conflicts(place(1, 0, 2)) == {loc(0, 1)}
    # A completely untracked local reads as empty.
    assert theta.read_conflicts(place(7)) == frozenset()


def test_write_weak_updates_all_conflicts_additively():
    # The paper's update-conflicts: mutating t.1 adds to t and t.1 but not t.0.
    theta = DependencyContext()
    theta.set(place(1), [loc(0, 0)])
    theta.set(place(1, 0), [loc(0, 0)])
    theta.set(place(1, 1), [loc(0, 0)])
    theta.write_weak(place(1, 1), [loc(2, 0)])
    assert loc(2, 0) in theta.get(place(1))
    assert loc(2, 0) in theta.get(place(1, 1))
    assert loc(2, 0) not in theta.get(place(1, 0))


def test_write_strong_replaces_target_and_descendants():
    theta = DependencyContext()
    theta.set(place(1), [loc(0, 0)])
    theta.set(place(1, 0), [loc(0, 1)])
    theta.write_strong(place(1), [loc(5, 0)])
    assert theta.get(place(1)) == {loc(5, 0)}
    assert theta.get(place(1, 0)) == {loc(5, 0)}


def test_write_strong_accumulates_into_ancestors():
    theta = DependencyContext()
    theta.set(place(1), [loc(0, 0)])
    theta.set(place(1, 1), [loc(0, 0)])
    theta.write_strong(place(1, 1), [loc(3, 0)])
    assert theta.get(place(1, 1)) == {loc(3, 0)}
    assert theta.get(place(1)) == {loc(0, 0), loc(3, 0)}


def test_join_is_keywise_union():
    a = DependencyContext()
    a.set(place(1), [loc(0, 0)])
    b = DependencyContext()
    b.set(place(1), [loc(1, 0)])
    b.set(place(2), [loc(2, 0)])
    joined = a.join(b)
    assert joined.get(place(1)) == {loc(0, 0), loc(1, 0)}
    assert joined.get(place(2)) == {loc(2, 0)}
    # Inputs are not mutated.
    assert a.get(place(1)) == {loc(0, 0)}


def test_join_identity_and_idempotence():
    lattice = ThetaLattice()
    a = DependencyContext()
    a.set(place(1), [loc(0, 0)])
    bottom = lattice.bottom()
    assert lattice.equals(lattice.join(a, bottom), a)
    assert lattice.equals(lattice.join(a, a), a)


def test_copy_is_independent():
    a = DependencyContext()
    a.set(place(1), [loc(0, 0)])
    b = a.copy()
    b.add(place(1), [loc(1, 1)])
    assert a.get(place(1)) == {loc(0, 0)}


def test_equals_compares_contents():
    a = DependencyContext()
    a.set(place(1), [loc(0, 0)])
    b = DependencyContext()
    b.set(place(1), [loc(0, 0)])
    assert a.equals(b)
    b.add(place(1), [loc(0, 1)])
    assert not a.equals(b)


def test_restrict_to_locals_filters_keys():
    theta = DependencyContext()
    theta.set(place(1), [loc(0, 0)])
    theta.set(place(2, 0), [loc(0, 1)])
    restricted = theta.restrict_to_locals([1])
    assert place(1) in restricted
    assert place(2, 0) not in restricted


def test_total_size_counts_all_locations():
    theta = DependencyContext()
    theta.set(place(1), [loc(0, 0), loc(0, 1)])
    theta.set(place(2), [loc(0, 0)])
    assert theta.total_size() == 3


def test_arg_locations_are_distinguishable():
    tag = arg_location(3)
    assert is_arg_location(tag)
    assert not is_arg_location(loc(0, 0))
    assert tag.statement == 3


def test_read_many_unions_over_targets():
    theta = DependencyContext()
    theta.set(place(1), [loc(0, 0)])
    theta.set(place(2), [loc(1, 0)])
    assert theta.read_many([place(1), place(2)]) == {loc(0, 0), loc(1, 0)}


def test_pretty_renders_sorted_entries():
    theta = DependencyContext()
    theta.set(place(2), [loc(0, 0)])
    theta.set(place(1), [arg_location(0)])
    rendered = theta.pretty()
    assert rendered.index("_1") < rendered.index("_2")
    assert "arg0" in rendered
