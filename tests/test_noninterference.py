"""Empirical noninterference tests (Theorem 3.1).

The theorem states: if two stacks agree on the places whose dependencies are
contained in an expression's dependency set κ, then evaluating the expression
under either stack yields the same value (and the same final values for every
place whose Θ′ entry is contained in the initial agreement).

We cannot mechanise the proof, so we test it: generate programs (both a fixed
set of tricky ones and random ones via hypothesis), compute κ for the return
value with the AST-level analysis of Section 2, and check that varying only
the parameters *outside* κ never changes the function's result.  Any
counterexample would be a soundness bug in the analysis.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.oxide import analyze_function_oxide
from repro.lang.interp import Interpreter, VBool, VInt
from repro.lang.typeck import CheckedProgram

from helpers import checked_from


def run_twice_varying(
    checked: CheckedProgram,
    fn_name: str,
    base_args: dict,
    varied: dict,
):
    """Run ``fn_name`` with ``base_args`` and with ``varied`` overrides."""
    interp1 = Interpreter(checked)
    interp2 = Interpreter(checked)
    decl = checked.program.function(fn_name)
    order = [p.name for p in decl.params]
    args1 = [base_args[name] for name in order]
    args2 = [dict(base_args, **varied)[name] for name in order]
    return interp1.call_function(fn_name, args1), interp2.call_function(fn_name, args2)


def assert_noninterference(source: str, fn_name: str, base_args: dict, trials: int = 8):
    """Check Theorem 3.1(a) on concrete runs: varying parameters that are NOT
    in the return value's dependency set never changes the result."""
    checked = checked_from(source)
    flow = analyze_function_oxide(checked, fn_name)
    relevant = flow.params_in_deps(flow.return_deps)
    irrelevant = [name for name in base_args if name not in relevant]
    rng = random.Random(1234)

    baseline, _ = run_twice_varying(checked, fn_name, base_args, {})
    for _ in range(trials):
        varied = {}
        for name in irrelevant:
            value = base_args[name]
            if isinstance(value, VInt):
                varied[name] = VInt(rng.randrange(0, 50))
            elif isinstance(value, VBool):
                varied[name] = VBool(rng.random() < 0.5)
        if not varied:
            return
        result1, result2 = run_twice_varying(checked, fn_name, base_args, varied)
        assert result1 == baseline
        assert result2 == baseline, (
            f"noninterference violated: varying {sorted(varied)} (not in κ) "
            f"changed the result from {baseline} to {result2}"
        )


# ---------------------------------------------------------------------------
# Hand-written adversarial cases
# ---------------------------------------------------------------------------


def test_unused_parameter_cannot_influence_result():
    assert_noninterference(
        "fn f(a: u32, b: u32) -> u32 { a * 3 }",
        "f",
        {"a": VInt(4), "b": VInt(9)},
    )


def test_field_sensitive_independence():
    assert_noninterference(
        """
        fn f(a: u32, b: u32) -> u32 {
            let mut t = (a, 0);
            t.1 = b;
            t.0
        }
        """,
        "f",
        {"a": VInt(5), "b": VInt(11)},
    )


def test_reference_mutation_independence():
    assert_noninterference(
        """
        fn f(a: u32, b: u32) -> u32 {
            let mut x = (0, 0);
            let r = &mut x.0;
            *r = a;
            x.1 + 1
        }
        """,
        "f",
        {"a": VInt(5), "b": VInt(3)},
    )


def test_branch_on_relevant_data_only():
    assert_noninterference(
        """
        fn f(c: bool, v: u32, noise: u32) -> u32 {
            let mut x = 0;
            if c {
                x = v;
            }
            x
        }
        """,
        "f",
        {"c": VBool(True), "v": VInt(7), "noise": VInt(100)},
    )


def test_call_to_pure_helper_independence():
    assert_noninterference(
        """
        fn double(x: u32) -> u32 { x * 2 }
        fn f(a: u32, b: u32) -> u32 {
            let unused = double(b);
            a + 1
        }
        """,
        "f",
        {"a": VInt(2), "b": VInt(30)},
    )


def test_loop_independence():
    assert_noninterference(
        """
        fn f(n: u32, seed: u32, noise: u32) -> u32 {
            let mut acc = seed;
            let mut i = 0;
            while i < n % 8 {
                acc = acc + i;
                i = i + 1;
            }
            acc
        }
        """,
        "f",
        {"n": VInt(5), "seed": VInt(2), "noise": VInt(77)},
    )


def test_mutation_through_callee_independence():
    assert_noninterference(
        """
        fn bump(x: &mut u32, by: u32) { *x = *x + by; }
        fn f(a: u32, by: u32, noise: u32) -> u32 {
            let mut x = a;
            bump(&mut x, by);
            x
        }
        """,
        "f",
        {"a": VInt(1), "by": VInt(2), "noise": VInt(3)},
    )


# ---------------------------------------------------------------------------
# Theorem 3.1(b): final stack values of mutated references
# ---------------------------------------------------------------------------


def test_final_value_of_mutable_argument_respects_deps():
    source = """
    fn write_first(dst: &mut (u32, u32), v: u32, noise: u32) {
        dst.0 = v;
    }
    """
    checked = checked_from(source)
    flow = analyze_function_oxide(checked, "write_first")
    # The final value of *dst must not depend on `noise`.
    dst_deps = flow.theta.read_conflicts(("*dst", ()))
    assert flow.param_labels["noise"] not in dst_deps

    from repro.lang.interp import VTuple

    def run(noise):
        interp = Interpreter(checked)
        frame = interp.stack.push("caller")
        frame.slots["buffer"] = VTuple([VInt(0), VInt(0)])
        from repro.lang.interp import VRef

        interp.call_function(
            "write_first",
            [VRef(frame.frame_id, "buffer", (), True), VInt(9), VInt(noise)],
        )
        return frame.slots["buffer"]

    assert run(1) == run(42)


# ---------------------------------------------------------------------------
# Property-based: random straight-line programs
# ---------------------------------------------------------------------------


@st.composite
def straightline_program(draw):
    """Generate a small well-typed function over u32 parameters a, b, c."""
    params = ["a", "b", "c"]
    lines = []
    available = list(params)
    n_lines = draw(st.integers(min_value=1, max_value=6))
    for index in range(n_lines):
        kind = draw(st.sampled_from(["arith", "branch", "tuple"]))
        new_var = f"v{index}"
        x = draw(st.sampled_from(available))
        y = draw(st.sampled_from(available))
        if kind == "arith":
            op = draw(st.sampled_from(["+", "*", "-"]))
            lines.append(f"    let {new_var} = {x} {op} {y};")
        elif kind == "branch":
            threshold = draw(st.integers(min_value=0, max_value=20))
            lines.append(
                f"    let {new_var} = if {x} > {threshold} {{ {y} }} else {{ {x} + 1 }};"
            )
        else:
            lines.append(f"    let {new_var} = ({x}, {y}).0;")
        available.append(new_var)
    result = draw(st.sampled_from(available))
    body = "\n".join(lines)
    source = f"fn f(a: u32, b: u32, c: u32) -> u32 {{\n{body}\n    {result}\n}}"
    return source


@settings(max_examples=40, deadline=None)
@given(
    source=straightline_program(),
    values=st.tuples(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=40),
    ),
)
def test_noninterference_on_random_programs(source, values):
    base_args = {"a": VInt(values[0]), "b": VInt(values[1]), "c": VInt(values[2])}
    assert_noninterference(source, "f", base_args, trials=4)
