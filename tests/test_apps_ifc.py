"""Tests for the IFC checker application (Figure 5b)."""

import pytest

from repro.apps.ifc import IfcChecker, IfcPolicy, SecurityLabel


SOURCE = """
struct Password { value: u32 }
struct Session { user: u32 }

extern fn insecure_print(x: u32);
extern fn secure_log(x: u32);
extern fn hash(x: u32) -> u32;
extern fn declassify_and_print(x: u32);

fn leak_direct(p: &Password) {
    let h = hash(p.value);
    insecure_print(h);
}

fn leak_implicit(p: &Password, guess: u32) {
    if guess == p.value {
        insecure_print(1);
    }
}

fn no_leak(s: &Session, p: &Password) {
    insecure_print(s.user);
    secure_log(p.value);
}

fn leak_variable(secret_token: u32, noise: u32) {
    insecure_print(secret_token + noise);
}

fn leak_via_declassify(p: &Password) {
    declassify_and_print(p.value);
}
"""


def make_checker(**policy_kwargs):
    policy = IfcPolicy(**policy_kwargs)
    policy.mark_type_secret("Password")
    policy.mark_function_insecure("insecure_print")
    return IfcChecker(SOURCE, policy)


@pytest.fixture(scope="module")
def checker():
    return make_checker()


def test_direct_leak_is_detected(checker):
    violations = checker.check_function("leak_direct")
    assert len(violations) == 1
    assert not violations[0].via_control_flow
    assert violations[0].sink_function == "insecure_print"
    assert "Password" in violations[0].source_description


def test_implicit_leak_via_control_flow_is_detected(checker):
    violations = checker.check_function("leak_implicit")
    assert len(violations) == 1
    assert violations[0].via_control_flow


def test_clean_function_has_no_violations(checker):
    assert checker.check_function("no_leak") == []


def test_secret_variable_policy_by_name():
    checker = make_checker()
    checker.policy.mark_variable_secret("leak_variable", "secret_token")
    violations = checker.check_function("leak_variable")
    assert len(violations) == 1
    assert "secret_token" in violations[0].source_description


def test_wildcard_variable_policy():
    policy = IfcPolicy()
    policy.mark_function_insecure("insecure_print")
    policy.secret_variables.add(("*", "secret_token"))
    checker = IfcChecker(SOURCE, policy)
    assert checker.check_function("leak_variable")


def test_declassified_function_is_not_reported():
    checker = make_checker()
    checker.policy.mark_function_insecure("declassify_and_print")
    checker.policy.declassified_functions.add("declassify_and_print")
    assert checker.check_function("leak_via_declassify") == []


def test_non_declassified_extra_sink_is_reported():
    checker = make_checker()
    checker.policy.mark_function_insecure("declassify_and_print")
    violations = checker.check_function("leak_via_declassify")
    assert len(violations) == 1


def test_check_all_aggregates_program_violations(checker):
    violations = checker.check_all()
    functions = {v.fn_name for v in violations}
    assert {"leak_direct", "leak_implicit"} <= functions
    assert "no_leak" not in functions


def test_report_renders_human_readable_text(checker):
    report = checker.report()
    assert "insecure flow" in report
    assert "leak_direct" in report
    assert "implicit (control) flow" in report


def test_report_for_clean_program():
    policy = IfcPolicy()
    policy.mark_function_insecure("insecure_print")
    clean_source = """
    extern fn insecure_print(x: u32);
    fn hello(x: u32) { insecure_print(x); }
    """
    checker = IfcChecker(clean_source, policy)
    assert "no insecure flows" in checker.report()


def test_policy_type_secrecy_traverses_references():
    policy = IfcPolicy()
    policy.mark_type_secret("Password")
    from repro.lang.types import RefType, StructType, Mutability

    password = StructType("Password", (("value",),))  # fields unused for the check
    assert policy.type_is_secret(password)
    assert policy.type_is_secret(RefType(password, Mutability.SHARED))
    assert not policy.type_is_secret(None)


def test_security_label_enum_values():
    assert SecurityLabel.PUBLIC.value == "public"
    assert SecurityLabel.SECRET.value == "secret"
