"""Property-based tests (hypothesis) on core data structures and invariants.

Three groups:

* algebraic laws of the place/conflict relation (Section 2.1),
* join-semilattice laws of the dependency context Θ (needed for the dataflow
  fixpoint to be well-defined),
* cross-condition invariants of the analysis itself on randomly generated
  programs: determinism, and the precision ordering
  ``Whole-program ⊆ Modular ⊆ Mut-blind`` on every variable's dependency set.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.config import AnalysisConfig
from repro.core.engine import FlowEngine
from repro.core.theta import DependencyContext, ThetaLattice
from repro.mir.ir import Location, Place, PlaceElem


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


def places(max_local=3, max_depth=3):
    elem = st.one_of(
        st.builds(PlaceElem.fld, st.integers(min_value=0, max_value=2)),
        st.just(PlaceElem.deref()),
    )
    return st.builds(
        Place,
        st.integers(min_value=0, max_value=max_local),
        st.lists(elem, max_size=max_depth).map(tuple),
    )


def locations():
    return st.builds(
        Location,
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5),
    )


def dependency_contexts():
    return st.dictionaries(
        places(), st.frozensets(locations(), max_size=4), max_size=6
    ).map(lambda d: DependencyContext(dict(d)))


# ---------------------------------------------------------------------------
# Conflict relation laws
# ---------------------------------------------------------------------------


@given(places())
def test_conflict_is_reflexive(place):
    assert place.conflicts_with(place)


@given(places(), places())
def test_conflict_is_symmetric(a, b):
    assert a.conflicts_with(b) == b.conflicts_with(a)


@given(places(), places())
def test_prefix_implies_conflict(a, b):
    if a.is_prefix_of(b):
        assert a.conflicts_with(b)


@given(places(), places())
def test_different_locals_never_conflict(a, b):
    if a.local != b.local:
        assert not a.conflicts_with(b)
        assert not a.is_prefix_of(b)


@given(places(), st.integers(min_value=0, max_value=3))
def test_projection_extends_prefix(place, index):
    extended = place.project_field(index)
    assert place.is_prefix_of(extended)
    assert extended.conflicts_with(place)
    assert extended.base_local() == Place.from_local(place.local)


# ---------------------------------------------------------------------------
# Θ join-semilattice laws
# ---------------------------------------------------------------------------


@given(dependency_contexts(), dependency_contexts())
def test_join_is_commutative(a, b):
    lattice = ThetaLattice()
    assert lattice.equals(lattice.join(a, b), lattice.join(b, a))


@given(dependency_contexts(), dependency_contexts(), dependency_contexts())
def test_join_is_associative(a, b, c):
    lattice = ThetaLattice()
    left = lattice.join(lattice.join(a, b), c)
    right = lattice.join(a, lattice.join(b, c))
    assert lattice.equals(left, right)


@given(dependency_contexts())
def test_join_is_idempotent_with_bottom_identity(a):
    lattice = ThetaLattice()
    assert lattice.equals(lattice.join(a, a), a)
    assert lattice.equals(lattice.join(a, lattice.bottom()), a)


@given(dependency_contexts(), dependency_contexts())
def test_join_is_an_upper_bound(a, b):
    joined = a.join(b)
    for place, deps in a.items():
        assert deps <= joined.get(place)
    for place, deps in b.items():
        assert deps <= joined.get(place)


@given(dependency_contexts(), places(), st.frozensets(locations(), max_size=3))
def test_weak_write_only_grows_the_context(theta, place, new_deps):
    before = theta.copy()
    theta.write_weak(place, new_deps)
    for tracked, deps in before.items():
        assert deps <= theta.get(tracked)
    assert new_deps <= theta.get(place)


@given(dependency_contexts(), places())
def test_read_conflicts_subset_of_all_locations(theta, place):
    everything = set()
    for _tracked, deps in theta.items():
        everything |= deps
    assert set(theta.read_conflicts(place)) <= everything


# ---------------------------------------------------------------------------
# Analysis invariants on generated programs
# ---------------------------------------------------------------------------


@st.composite
def small_programs(draw):
    """Generate a caller + two helpers exercising calls, branches, and refs."""
    mutates = draw(st.booleans())
    uses_y = draw(st.booleans())
    branch_threshold = draw(st.integers(min_value=0, max_value=9))
    extra_call = draw(st.booleans())

    helper_body = []
    if mutates:
        helper_body.append("    *x = *x + y;")
    result = "y + 1" if uses_y else "*x"
    helper = "fn helper(x: &mut u32, y: u32) -> u32 {\n" + "\n".join(helper_body) + f"\n    {result}\n}}"

    caller_lines = [
        "fn caller(a: u32, b: u32, c: u32) -> u32 {",
        "    let mut x = a;",
        "    let mut acc = 0;",
        f"    if c > {branch_threshold} {{",
        "        acc = helper(&mut x, b);",
        "    }",
    ]
    if extra_call:
        caller_lines.append("    acc = acc + peek(&x);")
    caller_lines.append("    x + acc")
    caller_lines.append("}")

    source = "extern fn peek(v: &u32) -> u32;\n" + helper + "\n" + "\n".join(caller_lines)
    return source


def sizes_under(source, config):
    engine = FlowEngine.from_source(source, config=config)
    return engine.analyze_function("caller").dependency_sizes()


@settings(max_examples=25, deadline=None)
@given(source=small_programs())
def test_analysis_is_deterministic(source):
    first = sizes_under(source, AnalysisConfig())
    second = sizes_under(source, AnalysisConfig())
    assert first == second


@settings(max_examples=25, deadline=None)
@given(source=small_programs())
def test_whole_program_is_at_least_as_precise_as_modular(source):
    modular = sizes_under(source, AnalysisConfig())
    whole = sizes_under(source, AnalysisConfig(whole_program=True))
    for variable, size in whole.items():
        assert size <= modular[variable], variable


@settings(max_examples=25, deadline=None)
@given(source=small_programs())
def test_mut_blind_is_never_more_precise_than_modular(source):
    modular = sizes_under(source, AnalysisConfig())
    blind = sizes_under(source, AnalysisConfig(mut_blind=True))
    for variable, size in modular.items():
        assert blind[variable] >= size, variable


@settings(max_examples=15, deadline=None)
@given(source=small_programs())
def test_disabling_strong_updates_is_never_more_precise(source):
    strong = sizes_under(source, AnalysisConfig())
    additive = sizes_under(source, AnalysisConfig(strong_updates=False))
    for variable, size in strong.items():
        assert additive[variable] >= size, variable
