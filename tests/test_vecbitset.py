"""Tests for the vectorized word-matrix substrate (the tier-3 engine's core).

Three layers:

* unit tests of :class:`~repro.dataflow.vecbitset.VecMatrix` — dirty-bit
  semantics, growth, equality across capacities, and both strategies of the
  batched gather/scatter kernels (the small-row loop and the fancy-index
  path);
* a seeded property sweep pinning :meth:`VecMatrix.fingerprint` byte-identical
  to :meth:`~repro.dataflow.bitset.IndexMatrix.fingerprint` on random
  matrices driven through the same mutation sequence — cache keys must never
  diverge by engine tier;
* the missing-numpy degrade paths: every guarded entry point must raise the
  one clear :class:`RuntimeError`, not an ``AttributeError`` deep in a kernel.
"""

import dataclasses
import random

import pytest

from repro.dataflow import vecbitset
from repro.dataflow.bitset import IndexMatrix
from repro.dataflow.vecbitset import (
    HAVE_NUMPY,
    VecMatrix,
    WORD_BITS,
    int_to_words,
    iter_mask,
    mask_rows,
    matrix_from_int_rows,
    require_numpy,
    words_for,
    words_to_int,
)

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


class TestWordHelpers:
    def test_words_for(self):
        assert words_for(0) == 1
        assert words_for(1) == 1
        assert words_for(64) == 1
        assert words_for(65) == 2
        assert words_for(128) == 2
        assert words_for(129) == 3

    def test_mask_iteration(self):
        assert list(iter_mask(0)) == []
        assert list(iter_mask(0b1011)) == [0, 1, 3]
        assert mask_rows((1 << 70) | 1) == [0, 70]

    @needs_numpy
    @pytest.mark.parametrize("num_words", [1, 2, 3, 4, 5, 9])
    def test_int_words_roundtrip(self, num_words):
        rng = random.Random(num_words)
        for _ in range(20):
            bits = rng.getrandbits(num_words * WORD_BITS)
            row = int_to_words(bits, num_words)
            assert row.shape == (num_words,)
            assert words_to_int(row) == bits

    @needs_numpy
    @pytest.mark.parametrize("num_words", [1, 2, 4, 6])
    def test_int_too_wide_overflows(self, num_words):
        with pytest.raises(OverflowError):
            int_to_words(1 << (num_words * WORD_BITS), num_words)


@needs_numpy
class TestVecMatrixRows:
    def test_absent_rows_read_empty(self):
        matrix = VecMatrix(num_words=2)
        assert len(matrix) == 0
        assert 3 not in matrix
        assert matrix.row(3) == 0
        assert matrix.to_rows_dict() == {}

    def test_set_row_and_growth(self):
        matrix = VecMatrix(num_words=2, capacity=1)
        matrix.set_row(0, 0b101)
        matrix.set_row(40, (1 << 100) | 1)  # forces _ensure doubling
        assert matrix.words.shape[0] >= 41
        assert matrix.row(0) == 0b101
        assert matrix.row(40) == (1 << 100) | 1
        assert matrix.row_indices() == [0, 40]
        assert len(matrix) == 2

    def test_or_row_dirty_bits(self):
        matrix = VecMatrix(num_words=1)
        # Materialising an absent row is dirty even with empty bits: a
        # tracked place with no dependencies differs from an untracked one.
        assert matrix.or_row(2, 0) is True
        assert 2 in matrix and matrix.row(2) == 0
        assert matrix.or_row(2, 0b11) is True
        assert matrix.or_row(2, 0b01) is False  # subset: no new bits
        assert matrix.row(2) == 0b11

    def test_popcount_and_density(self):
        matrix = VecMatrix(num_words=2)
        matrix.set_row(0, 0b111)
        matrix.set_row(5, 1 << 70)
        assert matrix.popcount_total() == 4
        assert matrix.density(2, 2) == 1.0
        assert matrix.density(0, 10) == 0.0


@needs_numpy
class TestVecMatrixWholeOps:
    def test_equals_across_capacities(self):
        small = VecMatrix(num_words=1, capacity=2)
        big = VecMatrix(num_words=1, capacity=64)
        for matrix in (small, big):
            matrix.set_row(1, 0b1010)
        assert small.equals(big) and big.equals(small)
        assert small == big
        big.set_row(1, 0b1011)
        assert not small.equals(big)
        # Same rows, different key masks: not equal.
        other = VecMatrix(num_words=1)
        other.set_row(1, 0b1010)
        other.set_row(2, 0)
        assert not small.equals(other)

    def test_matrices_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(VecMatrix(num_words=1))

    def test_union_into_dirty_semantics(self):
        dst = VecMatrix(num_words=2)
        src = VecMatrix(num_words=2)
        assert dst.union_into(src) is False  # empty source: nothing to do
        src.set_row(0, 0b1)
        src.set_row(9, 0)  # materialised-but-empty row
        assert dst.union_into(src) is True
        assert dst.to_rows_dict() == {0: 0b1, 9: 0}
        assert dst.union_into(src) is False  # subset: clean
        src.set_row(0, 0b11)
        assert dst.union_into(src) is True  # new bit in an existing row
        assert dst.row(0) == 0b11

    def test_union_matches_copy_then_union_into(self):
        rng = random.Random(7)
        for _ in range(10):
            a = matrix_from_int_rows(
                {rng.randrange(30): rng.getrandbits(90) for _ in range(6)}, 90
            )
            b = matrix_from_int_rows(
                {rng.randrange(50): rng.getrandbits(90) for _ in range(6)}, 90
            )
            expected = a.copy()
            expected.union_into(b)
            merged = a.union(b)
            assert merged.equals(expected)
            assert merged.fingerprint() == expected.fingerprint()
            # Out-of-place: neither operand moved.
            assert a.equals(a.copy()) and b.equals(b.copy())

    def test_copy_is_independent(self):
        matrix = VecMatrix(num_words=1)
        matrix.set_row(0, 0b1)
        clone = matrix.copy()
        clone.set_row(0, 0b111)
        assert matrix.row(0) == 0b1


@needs_numpy
class TestBatchedKernels:
    """Both row-count strategies of the gather/scatter kernels."""

    @pytest.mark.parametrize("num_rows", [0, 1, 3, 20])
    def test_gather_or(self, num_rows):
        rng = random.Random(num_rows)
        rows = {i: rng.getrandbits(128) for i in range(max(num_rows, 1))}
        matrix = matrix_from_int_rows(rows, 128)
        picked = list(range(num_rows))
        expected = 0
        for index in picked:
            expected |= rows[index]
        assert words_to_int(matrix.gather_or(picked)) == expected

    @pytest.mark.parametrize("num_rows", [1, 3, 20])
    def test_or_rows_words(self, num_rows):
        rng = random.Random(100 + num_rows)
        rows = {i: rng.getrandbits(128) for i in range(num_rows)}
        matrix = matrix_from_int_rows(rows, 128)
        addend = rng.getrandbits(128)
        matrix.or_rows_words(list(range(num_rows)), int_to_words(addend, 2))
        for index in range(num_rows):
            assert matrix.row(index) == rows[index] | addend

    def test_row_words_set_row_words_roundtrip(self):
        matrix = VecMatrix(num_words=3, capacity=1)
        bits = (1 << 150) | (1 << 64) | 1
        matrix.set_row_words(12, int_to_words(bits, 3))  # beyond capacity
        assert 12 in matrix
        assert words_to_int(matrix.row_words(12)) == bits


@needs_numpy
class TestFingerprintParity:
    """IndexMatrix and VecMatrix must digest identical content identically."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_matrices_fingerprint_identically(self, seed):
        rng = random.Random(seed)
        num_bits = rng.randrange(1, 300)
        rows = {
            rng.randrange(64): rng.getrandbits(num_bits) for _ in range(rng.randrange(24))
        }
        indexed = IndexMatrix(dict(rows))
        vec = matrix_from_int_rows(rows, num_bits)
        assert vec.fingerprint() == indexed.fingerprint()
        assert vec.popcount_total() == indexed.popcount_total()
        assert vec.to_rows_dict() == dict(indexed.items())

    @pytest.mark.parametrize("seed", range(4))
    def test_parity_survives_mutation_sequences(self, seed):
        rng = random.Random(1000 + seed)
        num_bits = rng.randrange(1, 200)
        num_words = words_for(num_bits)
        indexed, vec = IndexMatrix(), VecMatrix(num_words)
        for _ in range(60):
            op = rng.randrange(3)
            index = rng.randrange(40)
            bits = rng.getrandbits(num_bits)
            if op == 0:
                indexed.set_row(index, bits)
                vec.set_row(index, bits)
            elif op == 1:
                assert indexed.or_row(index, bits) == vec.or_row(index, bits)
            else:
                other_rows = {rng.randrange(40): rng.getrandbits(num_bits)}
                assert indexed.union_into(
                    IndexMatrix(dict(other_rows))
                ) == vec.union_into(matrix_from_int_rows(other_rows, num_bits))
            assert vec.keys_mask == indexed.keys_mask
        assert vec.fingerprint() == indexed.fingerprint()
        assert vec.to_rows_dict() == dict(indexed.items())


class TestMissingNumpyDegrade:
    """Every numpy-gated entry point raises the one clear RuntimeError."""

    def test_require_numpy_error_names_the_feature(self, monkeypatch):
        monkeypatch.setattr(vecbitset, "HAVE_NUMPY", False)
        with pytest.raises(RuntimeError) as excinfo:
            require_numpy("the frobnicator")
        message = str(excinfo.value)
        assert "the frobnicator requires numpy" in message
        assert "engine='bitset'" in message and "engine='object'" in message

    def test_vecmatrix_requires_numpy(self, monkeypatch):
        monkeypatch.setattr(vecbitset, "HAVE_NUMPY", False)
        with pytest.raises(RuntimeError, match="requires numpy"):
            VecMatrix(num_words=1)

    def test_vector_engine_requires_numpy(self, monkeypatch):
        from repro.core.config import MODULAR
        from repro.core.engine import FlowEngine

        monkeypatch.setattr(vecbitset, "HAVE_NUMPY", False)
        engine = FlowEngine.from_source(
            "fn f(x: u32) -> u32 { x + 1 }",
            config=dataclasses.replace(MODULAR, engine="vector"),
        )
        with pytest.raises(RuntimeError, match="requires numpy"):
            engine.analyze_function("f")

    def test_interaction_regression_requires_numpy(self, monkeypatch):
        from repro.eval import stats

        monkeypatch.setattr(stats, "HAVE_NUMPY", False)
        with pytest.raises(RuntimeError, match="requires numpy and scipy"):
            stats.interaction_regression({(False, False): {("c", "f", "x"): 1}})
