"""Tests for the program slicer application (Figure 5a)."""

import pytest

from repro.apps.slicer import ProgramSlicer, SliceDirection
from repro.errors import AnalysisError


SOURCE = """
struct File;
struct Stats { bytes: u32, elapsed: u32 }

extern fn read_chunk(f: &mut File) -> u32;
extern fn now() -> u32;
extern fn log_progress(code: u32);

fn process(f: &mut File, limit: u32) -> u32 {
    let start = now();
    let mut checksum = 0;
    let mut stats = Stats { bytes: 0, elapsed: 0 };
    let mut count = 0;
    while count < limit {
        let chunk = read_chunk(f);
        checksum = checksum + chunk;
        stats.bytes = stats.bytes + chunk;
        log_progress(count);
        count = count + 1;
    }
    stats.elapsed = now() - start;
    checksum
}
"""


@pytest.fixture(scope="module")
def slicer():
    return ProgramSlicer(SOURCE)


def line_containing(text):
    for index, line in enumerate(SOURCE.splitlines(), start=1):
        if text in line:
            return index
    raise AssertionError(f"no line containing {text!r}")


def test_backward_slice_includes_data_dependencies(slicer):
    result = slicer.backward_slice("process", "checksum")
    assert result.direction is SliceDirection.BACKWARD
    assert result.contains_line(line_containing("let chunk = read_chunk(f);"))
    assert result.contains_line(line_containing("checksum = checksum + chunk;"))


def test_backward_slice_includes_loop_condition(slicer):
    result = slicer.backward_slice("process", "checksum")
    assert result.contains_line(line_containing("while count < limit"))


def test_backward_slice_excludes_unrelated_concerns(slicer):
    result = slicer.backward_slice("process", "checksum")
    assert not result.contains_line(line_containing("stats.elapsed = now() - start;"))
    assert not result.contains_line(line_containing("log_progress(count);"))


def test_backward_slice_on_stats_includes_timing(slicer):
    result = slicer.backward_slice("process", "stats")
    assert result.contains_line(line_containing("stats.elapsed = now() - start;"))
    assert result.contains_line(line_containing("let start = now();"))


def test_forward_slice_of_start_reaches_elapsed_only(slicer):
    result = slicer.forward_slice("process", "start")
    assert result.direction is SliceDirection.FORWARD
    assert result.contains_line(line_containing("stats.elapsed = now() - start;"))
    assert not result.contains_line(line_containing("checksum = checksum + chunk;"))


def test_forward_slice_of_chunk_reaches_checksum_and_stats(slicer):
    result = slicer.forward_slice("process", "chunk")
    assert result.contains_line(line_containing("checksum = checksum + chunk;"))
    assert result.contains_line(line_containing("stats.bytes = stats.bytes + chunk;"))


def test_render_fades_non_slice_lines(slicer):
    result = slicer.backward_slice("process", "checksum")
    rendered = slicer.render(result)
    lines = rendered.splitlines()
    elapsed_line = lines[line_containing("stats.elapsed") - 1]
    checksum_line = lines[line_containing("checksum = checksum + chunk;") - 1]
    assert elapsed_line.startswith("  ~ ")
    assert not checksum_line.startswith("  ~ ")


def test_render_marks_criterion_definition(slicer):
    result = slicer.backward_slice("process", "checksum")
    rendered = slicer.render(result)
    criterion_line = rendered.splitlines()[line_containing("let mut checksum = 0;") - 1]
    assert criterion_line.startswith(">>> ")


def test_removable_lines_are_outside_the_slice(slicer):
    removable = slicer.removable_lines("process", "checksum")
    assert line_containing("log_progress(count);") in removable
    assert line_containing("checksum = checksum + chunk;") not in removable


def test_unknown_variable_raises(slicer):
    with pytest.raises((AnalysisError, KeyError)):
        slicer.backward_slice("process", "nope")


def test_slice_size_reported(slicer):
    result = slicer.backward_slice("process", "checksum")
    assert result.size() == len(result.locations)
    assert result.size() > 0
