"""Tests for call graph construction."""

from repro.mir.callgraph import build_call_graph, calls_in_body

from helpers import lowered_from


SOURCE = """
extern fn ext(x: u32) -> u32;

fn leaf(x: u32) -> u32 { x + 1 }

fn middle(x: u32) -> u32 { leaf(x) + leaf(x) }

fn top(x: u32) -> u32 { middle(ext(x)) }

fn looper(x: u32) -> u32 {
    if x == 0 { 0 } else { looper(x - 1) }
}
"""


def graph():
    _checked, lowered = lowered_from(SOURCE)
    return build_call_graph(lowered), lowered


def test_edges_and_multiplicity():
    cg, _ = graph()
    assert cg.callees("middle") == ["leaf", "leaf"]
    assert cg.unique_callees("middle") == ["leaf"]


def test_extern_functions_are_leaf_nodes():
    cg, _ = graph()
    assert "ext" in cg.nodes
    assert cg.callees("ext") == []


def test_callers():
    cg, _ = graph()
    assert cg.callers("leaf") == ["middle"]
    assert "top" in cg.callers("middle")


def test_reachability_and_transitive_count():
    cg, _ = graph()
    reachable = cg.reachable_from("top")
    assert {"top", "middle", "leaf", "ext"} == reachable
    assert cg.transitive_call_count("top") == 3
    assert cg.transitive_call_count("leaf") == 0


def test_cycle_detection_for_recursion():
    cg, _ = graph()
    assert cg.in_cycle("looper")
    assert not cg.in_cycle("top")


def test_topological_order_places_callees_first():
    cg, _ = graph()
    order = cg.topological_order()
    assert order.index("leaf") < order.index("middle") < order.index("top")


def test_calls_in_body_lists_terminator_targets():
    _, lowered = graph()
    assert sorted(calls_in_body(lowered.body("top"))) == ["ext", "middle"]
