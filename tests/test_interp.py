"""Tests for the MiniRust reference interpreter."""

import pytest

from repro.errors import EvalError
from repro.lang.interp import Interpreter, VBool, VInt, VStruct, VTuple, VUnit, evaluate_function

from helpers import checked_from


def run(source, fn_name, *args, externs=None):
    checked = checked_from(source)
    return evaluate_function(checked, fn_name, list(args), extern_impls=externs)


# ---------------------------------------------------------------------------
# Arithmetic and control flow
# ---------------------------------------------------------------------------


def test_simple_arithmetic():
    assert run("fn f() -> u32 { 2 + 3 * 4 }", "f") == VInt(14)


def test_u32_wrapping_subtraction():
    result = run("fn f() -> u32 { 0 - 1 }", "f")
    assert result == VInt(2 ** 32 - 1)


def test_division_and_remainder():
    assert run("fn f() -> u32 { 17 / 5 }", "f") == VInt(3)
    assert run("fn f() -> u32 { 17 % 5 }", "f") == VInt(2)


def test_division_by_zero_panics():
    with pytest.raises(EvalError):
        run("fn f(x: u32) -> u32 { 1 / x }", "f", VInt(0))


def test_comparisons_and_booleans():
    assert run("fn f(a: u32, b: u32) -> bool { a < b && !(a == b) }", "f", VInt(1), VInt(2)) == VBool(True)
    assert run("fn f(a: u32) -> bool { a >= 5 || a == 0 }", "f", VInt(0)) == VBool(True)


def test_short_circuit_and_does_not_evaluate_rhs():
    # The right operand would panic (division by zero) if evaluated.
    source = "fn f(a: u32) -> bool { a > 0 && 1 / a > 0 }"
    assert run(source, "f", VInt(0)) == VBool(False)


def test_if_else_expression_value():
    source = "fn f(c: bool) -> u32 { if c { 10 } else { 20 } }"
    assert run(source, "f", VBool(True)) == VInt(10)
    assert run(source, "f", VBool(False)) == VInt(20)


def test_while_loop_accumulates():
    source = """
    fn f(n: u32) -> u32 {
        let mut total = 0;
        let mut i = 0;
        while i < n {
            total = total + i;
            i = i + 1;
        }
        total
    }
    """
    assert run(source, "f", VInt(5)) == VInt(10)


def test_break_exits_loop():
    source = """
    fn f() -> u32 {
        let mut i = 0;
        while true {
            if i == 7 { break; }
            i = i + 1;
        }
        i
    }
    """
    assert run(source, "f") == VInt(7)


def test_continue_skips_iteration():
    source = """
    fn f() -> u32 {
        let mut i = 0;
        let mut evens = 0;
        while i < 10 {
            i = i + 1;
            if i % 2 == 1 { continue; }
            evens = evens + 1;
        }
        evens
    }
    """
    assert run(source, "f") == VInt(5)


def test_early_return():
    source = """
    fn f(x: u32) -> u32 {
        if x == 0 { return 99; }
        x
    }
    """
    assert run(source, "f", VInt(0)) == VInt(99)
    assert run(source, "f", VInt(3)) == VInt(3)


# ---------------------------------------------------------------------------
# Data structures and references
# ---------------------------------------------------------------------------


def test_tuple_construction_and_access():
    source = "fn f() -> u32 { let t = (1, (2, 3)); t.1.0 + t.0 }"
    assert run(source, "f") == VInt(3)


def test_struct_construction_and_field_access():
    source = """
    struct Point { x: u32, y: u32 }
    fn f() -> u32 { let p = Point { x: 3, y: 4 }; p.x * p.y }
    """
    assert run(source, "f") == VInt(12)


def test_mutation_through_mutable_reference():
    source = """
    fn bump(x: &mut u32) { *x = *x + 1; }
    fn f() -> u32 {
        let mut v = 10;
        bump(&mut v);
        bump(&mut v);
        v
    }
    """
    assert run(source, "f") == VInt(12)


def test_mutation_of_struct_field_through_reference():
    source = """
    struct Counter { hits: u32 }
    fn inc(c: &mut Counter) { c.hits = c.hits + 1; }
    fn f() -> u32 {
        let mut c = Counter { hits: 0 };
        inc(&mut c);
        inc(&mut c);
        c.hits
    }
    """
    assert run(source, "f") == VInt(2)


def test_reference_to_tuple_field():
    source = """
    fn f() -> u32 {
        let mut t = (1, 2);
        let r = &mut t.1;
        *r = 42;
        t.1
    }
    """
    assert run(source, "f") == VInt(42)


def test_values_are_copied_not_aliased():
    source = """
    struct S { v: u32 }
    fn f() -> u32 {
        let mut a = S { v: 1 };
        let b = a;
        a.v = 99;
        b.v
    }
    """
    assert run(source, "f") == VInt(1)


def test_shared_reference_read():
    source = """
    struct S { v: u32 }
    fn get(s: &S) -> u32 { s.v }
    fn f() -> u32 { let s = S { v: 7 }; get(&s) }
    """
    assert run(source, "f") == VInt(7)


def test_nested_function_calls():
    source = """
    fn double(x: u32) -> u32 { x * 2 }
    fn quad(x: u32) -> u32 { double(double(x)) }
    fn f() -> u32 { quad(3) }
    """
    assert run(source, "f") == VInt(12)


def test_recursive_function():
    source = """
    fn fact(n: u32) -> u32 {
        if n == 0 { 1 } else { n * fact(n - 1) }
    }
    """
    assert run(source, "fact", VInt(5)) == VInt(120)


# ---------------------------------------------------------------------------
# Extern functions and error handling
# ---------------------------------------------------------------------------


def test_extern_function_with_python_implementation():
    source = """
    extern fn magic(x: u32) -> u32;
    fn f() -> u32 { magic(10) }
    """
    checked = checked_from(source)
    result = evaluate_function(
        checked, "f", [], extern_impls={"magic": lambda interp, args: VInt(args[0].value + 32)}
    )
    assert result == VInt(42)


def test_extern_without_implementation_raises():
    source = """
    extern fn mystery(x: u32) -> u32;
    fn f() -> u32 { mystery(1) }
    """
    with pytest.raises(EvalError):
        run(source, "f")


def test_calling_undefined_function_raises():
    checked = checked_from("fn f() -> u32 { 1 }")
    interp = Interpreter(checked)
    with pytest.raises(EvalError):
        interp.call_function("nope", [])


def test_fuel_limit_stops_infinite_loop():
    source = "fn f() { while true { } }"
    checked = checked_from(source)
    interp = Interpreter(checked, fuel=1000)
    with pytest.raises(EvalError):
        interp.call_function("f", [])


def test_run_with_env_exposes_final_frame():
    source = """
    fn f(x: u32) -> u32 {
        let mut y = x + 1;
        y = y * 2;
        y
    }
    """
    checked = checked_from(source)
    interp = Interpreter(checked)
    result, frame = interp.run_with_env("f", {"x": VInt(4)})
    assert result == VInt(10)
    assert frame["x"] == VInt(4)


def test_default_value_construction():
    source = """
    struct P { a: u32, b: bool }
    fn f() { }
    """
    checked = checked_from(source)
    interp = Interpreter(checked)
    struct_ty = checked.registry.lookup("P")
    value = interp.default_value(struct_ty)
    assert value == VStruct("P", [VInt(0), VBool(False)])
    assert interp.default_value(checked.signatures["f"].ret_type) == VUnit()
