"""Tests for the MiniRust lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind is not TokenKind.EOF]


def test_empty_source_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.EOF


def test_integer_literal_value():
    tokens = tokenize("42")
    assert tokens[0].kind is TokenKind.INT
    assert tokens[0].value == 42


def test_integer_with_underscores():
    tokens = tokenize("1_000_000")
    assert tokens[0].value == 1000000


def test_identifier_and_keywords():
    assert kinds("fn foo let mut while") == [
        TokenKind.KW_FN,
        TokenKind.IDENT,
        TokenKind.KW_LET,
        TokenKind.KW_MUT,
        TokenKind.KW_WHILE,
    ]


def test_keyword_prefix_is_identifier():
    tokens = tokenize("letter")
    assert tokens[0].kind is TokenKind.IDENT
    assert tokens[0].value == "letter"


def test_lifetime_token():
    tokens = tokenize("&'a mut u32")
    assert tokens[0].kind is TokenKind.AMP
    assert tokens[1].kind is TokenKind.LIFETIME
    assert tokens[1].value == "a"
    assert tokens[2].kind is TokenKind.KW_MUT


def test_two_char_operators():
    assert kinds("-> == != <= >= && ||") == [
        TokenKind.ARROW,
        TokenKind.EQEQ,
        TokenKind.NE,
        TokenKind.LE,
        TokenKind.GE,
        TokenKind.ANDAND,
        TokenKind.OROR,
    ]


def test_single_char_operators():
    assert kinds("+ - * / % ! < > = & . , ; :") == [
        TokenKind.PLUS,
        TokenKind.MINUS,
        TokenKind.STAR,
        TokenKind.SLASH,
        TokenKind.PERCENT,
        TokenKind.BANG,
        TokenKind.LT,
        TokenKind.GT,
        TokenKind.EQ,
        TokenKind.AMP,
        TokenKind.DOT,
        TokenKind.COMMA,
        TokenKind.SEMI,
        TokenKind.COLON,
    ]


def test_delimiters():
    assert kinds("( ) { }") == [
        TokenKind.LPAREN,
        TokenKind.RPAREN,
        TokenKind.LBRACE,
        TokenKind.RBRACE,
    ]


def test_line_comments_are_skipped():
    tokens = tokenize("1 // a comment with symbols !@#\n2")
    values = [t.value for t in tokens if t.kind is TokenKind.INT]
    assert values == [1, 2]


def test_comment_at_end_of_file():
    tokens = tokenize("x // trailing")
    assert tokens[0].kind is TokenKind.IDENT
    assert tokens[1].kind is TokenKind.EOF


def test_span_line_and_column_tracking():
    tokens = tokenize("let x\n  = 1")
    let_token, x_token, eq_token, one_token = tokens[:4]
    assert let_token.span.start_line == 1
    assert x_token.span.start_col == 5
    assert eq_token.span.start_line == 2
    assert eq_token.span.start_col == 3
    assert one_token.span.start_line == 2


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("let x = #")


def test_bare_quote_raises():
    with pytest.raises(LexError):
        tokenize("' ")


def test_booleans_are_keywords():
    assert kinds("true false") == [TokenKind.KW_TRUE, TokenKind.KW_FALSE]


def test_tokenizes_full_function():
    source = "fn add(a: u32, b: u32) -> u32 { a + b }"
    token_kinds = kinds(source)
    assert token_kinds[0] is TokenKind.KW_FN
    assert TokenKind.ARROW in token_kinds
    assert token_kinds.count(TokenKind.KW_U32) == 3
