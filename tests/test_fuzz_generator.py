"""Generator properties: determinism, well-typedness, feature coverage."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.fuzz.generator import (
    SIZE_PROFILES,
    GeneratorConfig,
    generate_program,
    generate_source,
    profile,
)
from repro.fuzz.oracles import prepare


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("size", sorted(SIZE_PROFILES))
def test_same_seed_is_byte_identical(size):
    config = SIZE_PROFILES[size]
    for seed in (0, 1, 7, 1234):
        first = generate_source(seed, config)
        second = generate_source(seed, config)
        assert first == second
        assert first.encode("utf-8") == second.encode("utf-8")


def test_program_object_is_reproducible_too():
    a = generate_program(42)
    b = generate_program(42)
    assert a.source == b.source
    assert a.features == b.features


def test_distinct_seeds_differ():
    sources = {generate_source(seed) for seed in range(10)}
    assert len(sources) == 10


def test_seed_is_recorded_in_the_header():
    program = generate_program(99)
    assert "seed=99" in program.source.splitlines()[0]


# ---------------------------------------------------------------------------
# Well-typedness (the seed sweep)
# ---------------------------------------------------------------------------


def test_seed_sweep_stays_well_typed_small():
    for seed in range(30):
        program = generate_program(seed)
        prep = prepare(program.source, program.crate_name)
        assert prep.lowered.local_bodies(), f"seed {seed} lowered no local bodies"


@pytest.mark.parametrize("size", ["medium", "large"])
def test_seed_sweep_stays_well_typed_other_profiles(size):
    for seed in range(4):
        program = generate_program(seed, SIZE_PROFILES[size])
        prepare(program.source, program.crate_name)


def test_generated_entries_exist_and_loc_is_positive():
    program = generate_program(3)
    prep = prepare(program.source, program.crate_name)
    names = [body.fn_name for body in prep.lowered.local_bodies()]
    assert any(name.startswith("entry_") for name in names)
    assert program.loc() > 20


# ---------------------------------------------------------------------------
# Feature histogram
# ---------------------------------------------------------------------------


def test_feature_histogram_is_populated_and_positive():
    program = generate_program(0)
    assert program.features
    assert all(count > 0 for count in program.features.values())
    assert "entry" in program.features


def test_seed_sweep_covers_the_major_features():
    """Across a modest sweep every headline feature class must appear —
    diversity is a measured property, not an assertion."""
    seen = set()
    for seed in range(20):
        seen.update(generate_program(seed).features)
    for feature in (
        "branch", "loop", "call_local", "call_extern", "borrow_mut",
        "borrow_shared", "deref_write", "field_read", "field_write",
        "struct_literal", "tuple", "early_return",
    ):
        assert feature in seen, f"feature {feature!r} never generated in 20 seeds"


# ---------------------------------------------------------------------------
# Configuration plumbing
# ---------------------------------------------------------------------------


def test_generator_config_json_round_trip():
    config = SIZE_PROFILES["medium"]
    data = config.to_json_dict()
    assert GeneratorConfig.from_json_dict(data) == config


def test_profile_lookup_and_rebinding():
    config = profile("small", crate_name="other")
    assert config.crate_name == "other"
    with pytest.raises(KeyError):
        profile("gigantic")


def test_crate_name_flows_into_the_source():
    source = generate_source(0, profile("small", crate_name="mycrate"))
    assert "crate mycrate {" in source
