"""Tests for the AST-level (Section 2) information flow judgment."""

import pytest

from repro.core.oxide import OxideFlowAnalysis, analyze_function_oxide, place_conflicts
from repro.errors import AnalysisError

from helpers import checked_from


def analyze(source, fn_name="f"):
    return analyze_function_oxide(checked_from(source), fn_name)


def test_place_conflicts_relation():
    assert place_conflicts(("x", ()), ("x", (1,)))
    assert place_conflicts(("x", (1,)), ("x", ()))
    assert not place_conflicts(("x", (0,)), ("x", (1,)))
    assert not place_conflicts(("x", ()), ("y", ()))


def test_constant_return_has_no_param_deps():
    result = analyze("fn f(a: u32) -> u32 { 42 }")
    assert result.params_in_deps(result.return_deps) == set()


def test_return_depends_on_read_parameter():
    result = analyze("fn f(a: u32, b: u32) -> u32 { a + 1 }")
    assert result.return_depends_on("a")
    assert not result.return_depends_on("b")


def test_let_binding_propagates_dependencies():
    result = analyze("fn f(a: u32) -> u32 { let x = a * 2; x + 1 }")
    assert result.return_depends_on("a")


def test_tuple_field_assignment_is_field_sensitive():
    # The §2.1 example: after `t.1 := b`, t.0 does not depend on b.
    result = analyze(
        """
        fn f(a: u32, b: u32) -> u32 {
            let mut t = (a, a);
            t.1 = b;
            t.0
        }
        """
    )
    assert result.return_depends_on("a")
    assert not result.return_depends_on("b")


def test_assignment_updates_root_but_not_sibling():
    result = analyze(
        """
        fn f(a: u32, b: u32) -> (u32, u32) {
            let mut t = (a, a);
            t.1 = b;
            t
        }
        """
    )
    # Reading the whole tuple sees both fields.
    assert result.return_depends_on("a")
    assert result.return_depends_on("b")


def test_mutation_through_reference_reaches_target():
    # The §2.2 reborrowing example.
    result = analyze(
        """
        fn f(a: u32) -> u32 {
            let mut x = (0, 0);
            let y = &mut x;
            let z = &mut y.1;
            *z = a;
            x.1
        }
        """
    )
    assert result.return_depends_on("a")


def test_mutation_through_reference_is_field_sensitive():
    result = analyze(
        """
        fn f(a: u32) -> u32 {
            let mut x = (0, 0);
            let y = &mut x;
            let z = &mut y.1;
            *z = a;
            x.0
        }
        """
    )
    assert not result.return_depends_on("a")


def test_branch_adds_condition_to_mutated_places():
    result = analyze(
        """
        fn f(c: bool, v: u32) -> u32 {
            let mut x = 0;
            if c {
                x = v;
            }
            x
        }
        """
    )
    assert result.return_depends_on("c")
    assert result.return_depends_on("v")


def test_branch_condition_not_added_to_untouched_places():
    result = analyze(
        """
        fn f(c: bool, v: u32) -> u32 {
            let mut x = v;
            let mut y = 0;
            if c {
                y = 1;
            }
            x
        }
        """
    )
    assert not result.return_depends_on("c")


def test_while_loop_reaches_fixpoint_and_tracks_condition():
    result = analyze(
        """
        fn f(n: u32, seed: u32) -> u32 {
            let mut acc = seed;
            let mut i = 0;
            while i < n {
                acc = acc + i;
                i = i + 1;
            }
            acc
        }
        """
    )
    assert result.return_depends_on("n")
    assert result.return_depends_on("seed")


def test_call_modular_rule_mutates_mut_ref_args():
    result = analyze(
        """
        extern fn store(dst: &mut u32, value: u32);
        fn f(a: u32, b: u32) -> u32 {
            let mut x = a;
            store(&mut x, b);
            x
        }
        """
    )
    assert result.return_depends_on("a")
    assert result.return_depends_on("b")


def test_call_does_not_mutate_shared_ref_args():
    result = analyze(
        """
        extern fn peek(src: &u32) -> u32;
        fn f(a: u32, b: u32) -> u32 {
            let x = a;
            peek(&x);
            x
        }
        """
    )
    assert result.return_depends_on("a")
    assert not result.return_depends_on("b")


def test_call_return_depends_on_all_readable_args():
    result = analyze(
        """
        extern fn mix(a: &u32, b: u32) -> u32;
        fn f(p: u32, q: u32) -> u32 { mix(&p, q) }
        """
    )
    assert result.return_depends_on("p")
    assert result.return_depends_on("q")


def test_early_return_contributes_to_return_deps():
    result = analyze(
        """
        fn f(a: u32, b: u32) -> u32 {
            if a == 0 { return b; }
            a
        }
        """
    )
    assert result.return_depends_on("a")
    assert result.return_depends_on("b")


def test_final_deps_of_variable():
    result = analyze(
        """
        fn f(a: u32, b: u32) -> u32 {
            let mut x = a;
            x = x + b;
            x
        }
        """
    )
    x_deps = result.final_deps_of("x")
    assert result.param_labels["a"] in x_deps
    assert result.param_labels["b"] in x_deps


def test_analyzing_extern_function_raises():
    checked = checked_from("extern fn g(x: u32) -> u32;")
    with pytest.raises(AnalysisError):
        OxideFlowAnalysis(checked, "g")
