"""Tests for the topological batch scheduler."""

from __future__ import annotations

from helpers import lowered_from

from repro.core.config import MODULAR, WHOLE_PROGRAM
from repro.core.engine import FlowEngine
from repro.mir.callgraph import build_call_graph
from repro.service.cache import FingerprintIndex, SummaryStore
from repro.service.scheduler import (
    BatchScheduler,
    corpus_waves,
    run_waves,
    schedule_waves,
)


CHAIN_SOURCE = """
fn leaf(x: u32) -> u32 {
    x + 1
}

fn mid(x: u32) -> u32 {
    leaf(x) + 2
}

fn root(x: u32) -> u32 {
    mid(x) + 3
}

fn lone(x: u32) -> u32 {
    x * 5
}
"""

CYCLE_SOURCE = """
fn ping(x: u32) -> u32 {
    if x > 0 { pong(x - 1) } else { 0 }
}

fn pong(x: u32) -> u32 {
    ping(x)
}

fn top(x: u32) -> u32 {
    ping(x)
}
"""


def engine_for(source, config=MODULAR):
    checked, lowered = lowered_from(source)
    engine = FlowEngine(checked, lowered=lowered, config=config)
    fingerprints = FingerprintIndex(
        lowered, checked.signatures, checked.program.local_crate, build_call_graph(lowered)
    )
    return engine, fingerprints


class TestScheduleWaves:
    def test_callees_come_before_callers(self):
        engine, _ = engine_for(CHAIN_SOURCE)
        waves = schedule_waves(engine.call_graph, ["root", "mid", "leaf", "lone"])
        assert waves == [["leaf", "lone"], ["mid"], ["root"]]

    def test_cycle_collapses_into_one_wave(self):
        engine, _ = engine_for(CYCLE_SOURCE)
        waves = schedule_waves(engine.call_graph, ["top", "ping", "pong"])
        assert waves == [["ping", "pong"], ["top"]]

    def test_subset_only_constrained_by_in_batch_deps(self):
        engine, _ = engine_for(CHAIN_SOURCE)
        # leaf is not in the batch, so mid has no in-batch dependency.
        assert schedule_waves(engine.call_graph, ["root", "mid"]) == [["mid"], ["root"]]


class TestSerialRuns:
    def test_serial_run_fills_store_and_second_run_is_cached(self):
        engine, fingerprints = engine_for(CHAIN_SOURCE)
        store = SummaryStore()
        scheduler = BatchScheduler()

        first = scheduler.run(engine, store=store, fingerprints=fingerprints)
        assert first.mode == "serial"
        assert sorted(first.records) == ["leaf", "lone", "mid", "root"]
        assert first.cached == []

        second = scheduler.run(engine, store=store, fingerprints=fingerprints)
        assert second.computed() == 0
        assert sorted(second.cached) == ["leaf", "lone", "mid", "root"]

    def test_whole_program_serial_run(self):
        engine, fingerprints = engine_for(CHAIN_SOURCE, config=WHOLE_PROGRAM)
        store = SummaryStore()
        result = BatchScheduler().run(engine, store=store, fingerprints=fingerprints)
        assert result.computed() == 4
        sizes = result.records["root"].dependency_sizes
        assert sizes == engine.analyze_function("root").dependency_sizes()


def _double_chunk(chunk):
    """Module-level (picklable) chunk worker for the pool path."""
    return [2 * item for item in chunk]


_INIT_FLAG = []


def _flag_initializer(value):
    _INIT_FLAG.append(value)


class TestRunWaves:
    WAVES = [[1, 2, 3], [4], [5, 6]]

    def test_serial_preserves_wave_structure_and_order(self):
        mode, results, error = run_waves(_double_chunk, self.WAVES, parallel=False)
        assert mode == "serial"
        assert error is None
        assert results == [[2, 4, 6], [8], [10, 12]]

    def test_parallel_matches_serial(self):
        mode, results, error = run_waves(
            _double_chunk, self.WAVES, max_workers=2, chunk_size=2
        )
        # Environments without working process pools degrade; results are
        # identical either way — that is the contract under test.
        assert mode in ("parallel", "serial-fallback")
        assert results == [[2, 4, 6], [8], [10, 12]]

    def test_unpicklable_worker_degrades_with_error(self):
        mode, results, error = run_waves(
            lambda chunk: [item + 1 for item in chunk],
            [[1, 2]],
            max_workers=2,
            parallel=True,
        )
        assert mode == "serial-fallback"
        assert error is not None
        assert results == [[2, 3]]

    def test_serial_path_runs_initializer_in_process(self):
        _INIT_FLAG.clear()
        mode, results, _ = run_waves(
            _double_chunk,
            [[7]],
            parallel=False,
            initializer=_flag_initializer,
            initargs=("ready",),
        )
        assert mode == "serial"
        assert _INIT_FLAG == ["ready"]
        assert results == [[14]]

    def test_empty_waves(self):
        mode, results, error = run_waves(_double_chunk, [])
        assert (mode, results, error) == ("serial", [], None)


class TestCorpusWaves:
    def test_waves_merge_position_wise_across_crates(self):
        chain_engine, _ = engine_for(CHAIN_SOURCE)
        cycle_engine, _ = engine_for(CYCLE_SOURCE)
        waves = corpus_waves([chain_engine, cycle_engine])
        # Wave i holds wave i of every crate: crates are independent, so only
        # the intra-crate callees-first order constrains scheduling.
        assert waves == [
            [(0, "leaf"), (0, "lone"), (1, "ping"), (1, "pong")],
            [(0, "mid"), (1, "top")],
            [(0, "root")],
        ]

    def test_empty_corpus(self):
        assert corpus_waves([]) == []


class TestParallelPath:
    def test_parallel_results_match_serial(self):
        serial_engine, serial_fp = engine_for(CHAIN_SOURCE)
        serial = BatchScheduler().run(
            serial_engine, store=SummaryStore(), fingerprints=serial_fp
        )

        parallel_engine, parallel_fp = engine_for(CHAIN_SOURCE)
        scheduler = BatchScheduler(max_workers=2, chunk_size=1)
        result = scheduler.run(
            parallel_engine,
            store=SummaryStore(),
            fingerprints=parallel_fp,
            source=CHAIN_SOURCE,
            parallel=True,
        )
        # Environments without working process pools degrade to the serial
        # fallback; either way the records must be identical.
        assert result.mode in ("parallel", "serial-fallback")
        assert sorted(result.records) == sorted(serial.records)
        for name, record in serial.records.items():
            assert result.records[name] == record

    def test_forced_parallel_without_source_reports_fallback(self):
        engine, fingerprints = engine_for(CHAIN_SOURCE)
        result = BatchScheduler().run(
            engine, store=SummaryStore(), fingerprints=fingerprints, parallel=True
        )
        assert result.mode == "serial-fallback"
        assert "no source provided" in result.error
        assert result.computed() == 4

    def test_small_batch_defaults_to_serial(self):
        engine, fingerprints = engine_for(CHAIN_SOURCE)
        result = BatchScheduler(parallel_threshold=100).run(
            engine,
            store=SummaryStore(),
            fingerprints=fingerprints,
            source=CHAIN_SOURCE,
        )
        assert result.mode == "serial"
