"""Tests for AST→MIR lowering."""

import pytest

from repro.errors import LoweringError
from repro.mir.ir import (
    Aggregate,
    CallTerminator,
    Goto,
    Place,
    Ref,
    Return,
    StatementKind,
    SwitchBool,
    Use,
)
from repro.mir.lower import lower_function, lower_program
from repro.mir.pretty import pretty_body
from repro.mir.validate import assert_valid, validate_body

from helpers import checked_from, lowered_from, GET_COUNT_SOURCE


def body_for(source, fn_name):
    checked = checked_from(source)
    return lower_function(checked, fn_name)


def statements_of(body):
    out = []
    for block in body.blocks:
        out.extend(block.statements)
    return out


def terminators_of(body):
    return [block.terminator for block in body.blocks]


# ---------------------------------------------------------------------------
# Basic shapes
# ---------------------------------------------------------------------------


def test_straightline_function_lowers_to_two_blocks():
    body = body_for("fn f(a: u32, b: u32) -> u32 { a + b }", "f")
    assert validate_body(body) == []
    # One working block plus the shared return block.
    assert sum(isinstance(t, Return) for t in terminators_of(body)) == 1
    assert body.arg_count == 2


def test_return_place_receives_tail_value():
    body = body_for("fn f(a: u32) -> u32 { a }", "f")
    assigns = [s for s in statements_of(body) if s.kind is StatementKind.ASSIGN]
    assert any(s.place == Place.from_local(0) for s in assigns)


def test_if_expression_lowered_to_switch_with_join():
    body = body_for("fn f(c: bool) -> u32 { if c { 1 } else { 2 } }", "f")
    switches = [t for t in terminators_of(body) if isinstance(t, SwitchBool)]
    assert len(switches) == 1
    assert validate_body(body) == []


def test_while_loop_produces_back_edge():
    body = body_for(
        """
        fn f(n: u32) -> u32 {
            let mut i = 0;
            while i < n { i = i + 1; }
            i
        }
        """,
        "f",
    )
    assert validate_body(body) == []
    # There must be a block whose successor index is not greater than itself
    # (the loop back edge).
    has_back_edge = any(
        successor <= index
        for index, block in enumerate(body.blocks)
        for successor in block.terminator.successors()
    )
    assert has_back_edge


def test_break_jumps_to_loop_exit():
    body = body_for(
        """
        fn f() -> u32 {
            let mut i = 0;
            while true {
                if i == 3 { break; }
                i = i + 1;
            }
            i
        }
        """,
        "f",
    )
    assert validate_body(body) == []


def test_call_becomes_terminator_with_destination():
    body = body_for(
        """
        extern fn g(x: u32) -> u32;
        fn f(a: u32) -> u32 { g(a) + 1 }
        """,
        "f",
    )
    calls = [t for t in terminators_of(body) if isinstance(t, CallTerminator)]
    assert len(calls) == 1
    assert calls[0].func == "g"
    assert len(calls[0].args) == 1
    assert validate_body(body) == []


def test_nested_calls_produce_two_call_terminators():
    body = body_for(
        """
        extern fn g(x: u32) -> u32;
        fn f(a: u32) -> u32 { g(g(a)) }
        """,
        "f",
    )
    calls = [t for t in terminators_of(body) if isinstance(t, CallTerminator)]
    assert len(calls) == 2


def test_borrow_lowered_to_ref_rvalue():
    body = body_for("fn f() { let mut x = 1; let r = &mut x; }", "f")
    refs = [s.rvalue for s in statements_of(body) if isinstance(s.rvalue, Ref)]
    assert len(refs) == 1
    assert refs[0].referent == Place.from_local(body.local_by_name("x").index)


def test_struct_literal_lowered_to_aggregate_in_field_order():
    body = body_for(
        """
        struct Point { x: u32, y: u32 }
        fn f(a: u32) -> Point { Point { y: a, x: 1 } }
        """,
        "f",
    )
    aggregates = [s.rvalue for s in statements_of(body) if isinstance(s.rvalue, Aggregate)]
    assert len(aggregates) == 1
    # Operands must follow declaration order (x first), not literal order.
    first_operand = aggregates[0].ops[0]
    assert first_operand.pretty(body) == "1"


def test_tuple_expression_lowered_to_aggregate():
    body = body_for("fn f(a: u32) -> (u32, u32) { (a, 2) }", "f")
    aggregates = [s.rvalue for s in statements_of(body) if isinstance(s.rvalue, Aggregate)]
    assert len(aggregates) == 1
    assert len(aggregates[0].ops) == 2


def test_field_access_through_reference_inserts_deref():
    body = body_for(
        """
        struct S { v: u32 }
        fn f(s: &mut S) -> u32 { s.v }
        """,
        "f",
    )
    reads = [
        s.rvalue.operand.src
        for s in statements_of(body)
        if isinstance(s.rvalue, Use) and s.rvalue.operand.place() is not None
    ]
    assert any(p.has_deref() for p in reads)


def test_assignment_through_deref_keeps_deref_projection():
    body = body_for("fn f(p: &mut u32) { *p = 5; }", "f")
    assigns = [s for s in statements_of(body) if s.kind is StatementKind.ASSIGN]
    assert any(s.place.has_deref() for s in assigns)


def test_early_return_assigns_return_place_and_is_pruned():
    body = body_for(
        """
        fn f(x: u32) -> u32 {
            if x == 0 { return 1; }
            x + 2
        }
        """,
        "f",
    )
    assert validate_body(body) == []
    # All blocks must be reachable (unreachable blocks pruned).
    reachable = {0}
    stack = [0]
    while stack:
        index = stack.pop()
        for successor in body.blocks[index].terminator.successors():
            if successor not in reachable:
                reachable.add(successor)
                stack.append(successor)
    assert reachable == set(range(len(body.blocks)))


def test_shadowed_let_creates_second_local():
    body = body_for("fn f() -> u32 { let x = 1; let x = 2; x }", "f")
    named = [local for local in body.locals if local.name == "x"]
    assert len(named) == 2


def test_get_count_matches_figure1_shape():
    checked = checked_from(GET_COUNT_SOURCE)
    body = lower_function(checked, "get_count")
    calls = [t.func for t in terminators_of(body) if isinstance(t, CallTerminator)]
    assert sorted(calls) == ["contains_key", "get", "insert"]
    switches = [t for t in terminators_of(body) if isinstance(t, SwitchBool)]
    assert len(switches) == 1
    assert validate_body(body) == []


def test_lowering_extern_function_raises():
    checked = checked_from("extern fn g(x: u32) -> u32;")
    with pytest.raises(LoweringError):
        lower_function(checked, "g")


def test_lower_unknown_function_raises():
    checked = checked_from("fn f() { }")
    with pytest.raises(LoweringError):
        lower_function(checked, "missing")


def test_lower_program_lowers_all_crates():
    checked, lowered = lowered_from(
        """
        crate deps { fn dep_helper() -> u32 { 1 } }
        crate app { fn app_fn() -> u32 { dep_helper() } }
        """
    )
    assert set(lowered.bodies) == {"dep_helper", "app_fn"}
    assert lowered.body("dep_helper").crate == "deps"
    assert [b.fn_name for b in lowered.bodies_in_crate("app")] == ["app_fn"]


def test_pretty_body_renders_blocks_and_annotations():
    body = body_for("fn f(a: u32) -> u32 { a + 1 }", "f")
    from repro.mir.ir import Location

    text = pretty_body(body, {Location(0, 0): "note"})
    assert "bb0:" in text
    assert "// note" in text
    assert "fn f" in text


def test_assert_valid_accepts_good_body():
    body = body_for("fn f(a: u32) -> u32 { a }", "f")
    assert_valid(body)


def test_validator_catches_bad_block_target():
    body = body_for("fn f(a: u32) -> u32 { a }", "f")
    body.blocks[0].terminator = Goto(target=99)
    problems = validate_body(body)
    assert any("unknown block" in problem for problem in problems)
