"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.dataflow.vecbitset import HAVE_NUMPY

from helpers import GET_COUNT_SOURCE


IFC_SOURCE = """
struct Password { value: u32 }
extern fn insecure_print(x: u32);

fn leak(p: &Password) {
    insecure_print(p.value);
}

fn fine(x: u32) {
    insecure_print(x);
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "program.mrs"
    path.write_text(GET_COUNT_SOURCE, encoding="utf-8")
    return str(path)


@pytest.fixture
def ifc_file(tmp_path):
    path = tmp_path / "ifc.mrs"
    path.write_text(IFC_SOURCE, encoding="utf-8")
    return str(path)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_parser_requires_a_subcommand():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_mir_command_prints_blocks(source_file):
    code, output = run_cli("mir", source_file)
    assert code == 0
    assert "bb0:" in output
    assert "get_count" in output


def test_mir_command_with_function_filter(source_file):
    code, output = run_cli("mir", source_file, "--function", "get_count")
    assert code == 0
    assert output.count("fn get_count") == 1


def test_mir_command_unknown_function_is_an_error(source_file):
    code, output = run_cli("mir", source_file, "--function", "nope")
    assert code == 2
    assert "error" in output


def test_analyze_command_prints_theta_and_sizes(source_file):
    code, output = run_cli("analyze", source_file)
    assert code == 0
    assert "Θ(" in output
    assert "dependency-set sizes" in output
    assert "condition: Modular" in output


def test_analyze_command_honours_condition_flags(source_file):
    code, output = run_cli("analyze", source_file, "--mut-blind")
    assert code == 0
    assert "condition: Mut-blind" in output


def test_slice_command_backward(source_file):
    code, output = run_cli(
        "slice", source_file, "--function", "get_count", "--variable", "h"
    )
    assert code == 0
    assert "backward slice" in output
    assert "insert" in output


def test_slice_command_forward(source_file):
    code, output = run_cli(
        "slice", source_file, "--function", "get_count", "--variable", "k", "--forward"
    )
    assert code == 0
    assert "forward slice" in output


def test_stats_command_prints_substrate_table(source_file):
    code, output = run_cli("stats", source_file)
    assert code == 0
    assert "interned" in output or "places" in output
    assert "get_count" in output
    assert "// condition: Modular" in output


def test_stats_command_json_output(source_file):
    import json

    code, output = run_cli("stats", source_file, "--json", "--whole-program")
    assert code == 0
    data = json.loads(output)
    assert data["condition"] == "Whole-program"
    for row in data["functions"]:
        assert row["interned_places"] > 0
        assert row["interned_locations"] >= row["instructions"]
        assert row["fixpoint_iterations"] >= 1
        assert 0.0 <= row["exit_density"] <= 1.0


def test_stats_command_unknown_function_is_an_error(source_file):
    code, output = run_cli("stats", source_file, "--function", "nope")
    assert code == 2
    assert "error" in output


def test_stats_command_rejects_object_engine(source_file):
    code, output = run_cli("stats", source_file, "--engine", "object")
    assert code == 2
    assert "bitset" in output


def test_analyze_engine_flag_object_matches_bitset(source_file):
    code_obj, out_obj = run_cli("analyze", source_file, "--engine", "object")
    code_bit, out_bit = run_cli("analyze", source_file, "--engine", "bitset")
    assert code_obj == code_bit == 0
    assert out_obj == out_bit


def test_ifc_command_reports_violation_with_nonzero_exit(ifc_file):
    code, output = run_cli(
        "ifc", ifc_file, "--secret-type", "Password", "--sink", "insecure_print"
    )
    assert code == 1
    assert "leak" in output
    assert "insecure_print" in output


def test_ifc_command_clean_policy_exits_zero(ifc_file):
    code, output = run_cli("ifc", ifc_file, "--sink", "insecure_print")
    assert code == 0
    assert "no insecure flows" in output


def test_ifc_command_secret_variable_spec(ifc_file):
    code, output = run_cli(
        "ifc", ifc_file, "--secret-variable", "fine:x", "--sink", "insecure_print"
    )
    assert code == 1
    assert "fine" in output


def test_corpus_command_prints_table(tmp_path):
    code, output = run_cli("corpus", "--scale", "0.1")
    assert code == 0
    assert "Table 1" in output
    assert "rustpython" in output


def test_corpus_command_single_crate_source():
    code, output = run_cli("corpus", "--scale", "0.1", "--crate", "hyper")
    assert code == 0
    assert "crate hyper {" in output


def test_corpus_command_unknown_crate_errors():
    code, output = run_cli("corpus", "--scale", "0.1", "--crate", "nonexistent")
    assert code == 2
    assert "error" in output


def test_missing_file_is_a_clean_error():
    code, output = run_cli("mir", "/does/not/exist.mrs")
    assert code == 2
    assert "error" in output


def test_experiment_command_small_scale():
    code, output = run_cli("experiment", "--scale", "0.06")
    assert code == 0
    assert "measured vs paper" in output
    assert "crate boundary" in output


# ---------------------------------------------------------------------------
# --help / exit codes for every subcommand
# ---------------------------------------------------------------------------


ALL_SUBCOMMANDS = [
    "mir", "analyze", "slice", "focus", "stats", "ifc", "fuzz", "corpus",
    "experiment", "serve", "workspace", "version", "query", "trace", "metrics",
    "profile", "bench",
]


def test_top_level_help_lists_every_subcommand(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    output = capsys.readouterr().out
    for name in ALL_SUBCOMMANDS:
        assert name in output


@pytest.mark.parametrize("name", [s for s in ALL_SUBCOMMANDS if s != "version"])
def test_subcommand_help_exits_zero(name, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([name, "--help"])
    assert excinfo.value.code == 0
    assert f"repro {name}" in capsys.readouterr().out


def test_unknown_subcommand_exits_two(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["frobnicate"])
    assert excinfo.value.code == 2


def test_serve_help_documents_the_concurrency_flags(capsys):
    with pytest.raises(SystemExit):
        main(["serve", "--help"])
    output = capsys.readouterr().out
    for flag in ("--port", "--host", "--workers", "--persist-dir",
                 "--workspace", "--jsonrpc", "--cache-dir", "--input"):
        assert flag in output


def test_workspace_help_lists_actions(capsys):
    with pytest.raises(SystemExit):
        main(["workspace", "--help"])
    output = capsys.readouterr().out
    for action in ("save", "load", "list"):
        assert action in output


# ---------------------------------------------------------------------------
# version
# ---------------------------------------------------------------------------


def _pyproject_version():
    import re
    from pathlib import Path

    text = (Path(__file__).resolve().parents[1] / "pyproject.toml").read_text(
        encoding="utf-8"
    )
    return re.search(r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE).group(1)


def test_version_subcommand_matches_pyproject():
    code, output = run_cli("version")
    assert code == 0
    assert output.strip() == f"repro-flowistry {_pyproject_version()}"


def test_version_flag_matches_pyproject(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert _pyproject_version() in capsys.readouterr().out


def test_dunder_version_matches_pyproject():
    import repro

    assert repro.__version__ == _pyproject_version()


# ---------------------------------------------------------------------------
# serve / workspace persistence round trips
# ---------------------------------------------------------------------------


def test_serve_with_input_file_and_persist_dir(tmp_path, source_file):
    import json

    requests = tmp_path / "requests.ndjson"
    requests.write_text(
        json.dumps({"id": 1, "method": "analyze", "params": {"function": "get_count"}})
        + "\n",
        encoding="utf-8",
    )
    persist = str(tmp_path / "persist")

    code, output = run_cli(
        "serve", source_file, "--input", str(requests), "--persist-dir", persist
    )
    assert code == 0
    first = json.loads(output.splitlines()[0])
    assert first["ok"]
    assert first["result"]["functions"]["get_count"]["cache"] == "miss"

    # Restarted server over the same persist dir: first answer is warm.
    code, output = run_cli(
        "serve", "--input", str(requests), "--persist-dir", persist
    )
    assert code == 0
    second = json.loads(output.splitlines()[0])
    assert second["result"]["functions"]["get_count"]["cache"] == "hit"


def test_workspace_save_load_list_round_trip(tmp_path, source_file):
    import json

    persist = str(tmp_path / "ws")
    code, output = run_cli(
        "workspace", "save", source_file, "--persist-dir", persist, "--warm"
    )
    assert code == 0
    summary = json.loads(output)
    assert summary["workspace"] == "default" and summary["cache_entries"] >= 1

    code, output = run_cli(
        "workspace", "load", "--persist-dir", persist, "--analyze"
    )
    assert code == 0
    report = json.loads(output)
    assert report["analyze"]["cache_misses"] == 0
    assert report["analyze"]["cache_hits"] >= 1

    code, output = run_cli("workspace", "list", "--persist-dir", persist)
    assert code == 0
    assert json.loads(output)[0]["workspace"] == "default"


def test_serve_port_rejects_stdio_only_flags(tmp_path):
    for extra in (["--jsonrpc"], ["--cache-dir", str(tmp_path)],
                  ["--input", str(tmp_path / "x")]):
        code, output = run_cli("serve", "--port", "0", *extra)
        assert code == 2
        assert "stdio-mode flag" in output


def test_workspace_load_missing_is_clean_error(tmp_path):
    code, output = run_cli(
        "workspace", "load", "--persist-dir", str(tmp_path), "--workspace", "nope"
    )
    assert code == 2
    assert "error" in output


def test_serve_stdio_rejects_socket_only_flags(tmp_path):
    for extra in (["--log-level", "info"], ["--trace-dir", str(tmp_path)]):
        code, output = run_cli("serve", *extra)
        assert code == 2
        assert "socket-mode flag" in output


# ---------------------------------------------------------------------------
# trace / metrics (observability surfaces)
# ---------------------------------------------------------------------------


def test_trace_command_prints_span_tree(source_file):
    code, output = run_cli("trace", source_file)
    assert code == 0
    assert output.startswith("trace ")
    for span_name in ("analyze", "parse", "fixpoint"):
        assert span_name in output
    assert "spans," in output and "ms total" in output


def test_trace_command_json_and_chrome_export(tmp_path, source_file):
    import json

    chrome_path = tmp_path / "chrome.json"
    code, output = run_cli(
        "trace", source_file, "--json", "--chrome", str(chrome_path)
    )
    assert code == 0
    tree = json.loads(output.splitlines()[0])
    assert tree["root"]["name"] == "analyze"
    assert tree["root"]["children"], "trace has no child spans"

    document = json.loads(chrome_path.read_text(encoding="utf-8"))
    events = document["traceEvents"]
    assert any(event["name"] == "fixpoint" for event in events)
    assert all(event["ph"] == "X" for event in events)


def test_trace_command_honours_condition_flags(source_file):
    import json

    code, output = run_cli("trace", source_file, "--whole-program", "--json")
    assert code == 0
    tree = json.loads(output.splitlines()[0])
    fixpoints = [
        node for node in _walk(tree["root"]) if node["name"] == "fixpoint"
    ]
    assert fixpoints, "no fixpoint span recorded"


def _walk(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk(child)


def test_metrics_command_without_server_is_clean_error():
    code, output = run_cli("metrics", "--port", "1")  # nothing listens there
    assert code == 2
    assert "error" in output and "cannot connect" in output


# ---------------------------------------------------------------------------
# profile / bench (the performance observatory surfaces)
# ---------------------------------------------------------------------------


@pytest.fixture
def big_source_file(tmp_path):
    """A corpus large enough that one-shot analysis outlives a few sampler
    ticks at 1000hz (the tiny Figure-1 program analyses in ~4ms)."""
    functions = "\n".join(
        f"""
fn work_{i}(a: u32, b: u32) -> u32 {{
    let x = a + b;
    let y = x + a;
    let z = y + b;
    let w = z + x;
    w + y + work_helper_{i}(x, z)
}}

fn work_helper_{i}(p: u32, q: u32) -> u32 {{
    let m = p + q;
    let n = m + p;
    n + q
}}
"""
        for i in range(40)
    )
    path = tmp_path / "big.mrs"
    path.write_text(functions, encoding="utf-8")
    return str(path)


def test_profile_command_text_and_artifacts(tmp_path, big_source_file):
    import json

    source_file = big_source_file
    flame = tmp_path / "flame.svg"
    collapsed = tmp_path / "stacks.txt"
    chrome = tmp_path / "chrome.json"
    code, output = run_cli(
        "profile", source_file, "--hz", "1000",
        "--flame", str(flame), "--collapsed", str(collapsed),
        "--chrome", str(chrome),
    )
    assert code == 0
    assert "profiled" in output and "samples" in output
    assert "%" in output  # root attribution table

    svg = flame.read_text(encoding="utf-8")
    assert svg.startswith("<svg ") and "samples" in svg

    for line in collapsed.read_text(encoding="utf-8").splitlines():
        frames, _, count = line.rpartition(" ")
        assert frames and count.isdigit()

    document = json.loads(chrome.read_text(encoding="utf-8"))
    assert "traceEvents" in document
    assert "stackFrames" in document and "samples" in document
    # Merged samples reference interned stack frames on the trace's clock.
    for sample in document["samples"]:
        assert sample["sf"] in document["stackFrames"]


def test_profile_command_html_flame_and_json(tmp_path, source_file):
    import json

    flame = tmp_path / "flame.html"
    code, output = run_cli(
        "profile", source_file, "--json", "--flame", str(flame)
    )
    assert code == 0
    profile = json.loads(output.splitlines()[0])
    assert profile["total_samples"] >= 0
    assert "root_attribution" in profile and "stacks" in profile
    html = flame.read_text(encoding="utf-8")
    assert html.startswith("<!DOCTYPE html>") and "<svg " in html


def test_bench_run_twice_then_report_trends(tmp_path):
    import json

    ledger_dir = str(tmp_path / "history")
    for _ in range(2):
        code, output = run_cli(
            "bench", "--ledger-dir", ledger_dir, "--scale", "0.02",
            "--only", "theta_join",
        )
        assert code == 0
        summary = json.loads(output)
        assert summary["suite"] == ["theta_join"]
        # 3 object/bitset metrics, plus 2 vector metrics when numpy is there.
        assert summary["records"] == (5 if HAVE_NUMPY else 3)
        assert summary["metrics"]["theta_join.speedup"] > 0

    code, output = run_cli("bench", "--ledger-dir", ledger_dir, "report")
    assert code == 0
    assert "theta_join.speedup" in output
    assert "gate:" in output

    code, output = run_cli(
        "bench", "--ledger-dir", ledger_dir, "report", "--json"
    )
    assert code == 0
    report = json.loads(output)
    by_metric = {row["metric"]: row for row in report["metrics"]}
    assert by_metric["theta_join.speedup"]["runs"] == 2
    # Two real timing runs on a possibly-loaded machine: the verdict is
    # whatever the measurements say (deterministic-verdict coverage lives
    # in test_bench_history.py and the injected-regression test below) —
    # but the gate exit code must agree with the report's own gate block.
    assert by_metric["theta_join.speedup"]["verdict"] in {
        "ok", "improved", "regressed"
    }
    code, _output = run_cli("bench", "--ledger-dir", ledger_dir, "report", "--gate")
    assert code == (0 if report["gate"]["ok"] else 1)


def test_bench_gate_fails_on_injected_regression(tmp_path):
    import json
    import time as time_module

    from repro.eval.bench import record_run
    from repro.obs.history import HistoryLedger

    ledger_dir = tmp_path / "history"
    ledger = HistoryLedger(ledger_dir)
    config = {"suite": ["fig2"], "scale": 0.1}
    base = time_module.time()
    for offset, speedup in ((0, 3.0), (10, 3.0), (20, 1.4)):  # 2x slowdown
        record_run(
            ledger, {"fig2.engine_speedup": speedup},
            timestamp=base + offset, config=config,
        )

    code, output = run_cli(
        "bench", "--ledger-dir", str(ledger_dir), "report", "--gate"
    )
    assert code == 1
    assert "regressed" in output and "fig2.engine_speedup" in output

    # Without --gate the same report exits zero (report-only mode).
    code, output = run_cli("bench", "--ledger-dir", str(ledger_dir), "report")
    assert code == 0
    assert "gate: FAILED" in output


def test_bench_unknown_only_name_is_clean_error(tmp_path):
    code, output = run_cli(
        "bench", "--ledger-dir", str(tmp_path), "--only", "nope"
    )
    assert code == 2
    assert "error" in output and "nope" in output


def test_bench_backfill_ingests_report_dir(tmp_path):
    import json

    report_dir = tmp_path / "reports"
    report_dir.mkdir()
    (report_dir / "obs_overhead.json").write_text(
        json.dumps({"ratio": 1.01, "run_meta": {"duration_seconds": 2.0}}),
        encoding="utf-8",
    )
    ledger_dir = tmp_path / "history"
    code, output = run_cli(
        "bench", "--ledger-dir", str(ledger_dir),
        "backfill", "--report-dir", str(report_dir),
    )
    assert code == 0
    assert json.loads(output)["backfilled"] == 1

    code, output = run_cli(
        "bench", "--ledger-dir", str(ledger_dir), "report", "--json"
    )
    assert code == 0
    (row,) = json.loads(output)["metrics"]
    assert row["metric"] == "obs_overhead.ratio"
    assert row["verdict"] == "insufficient"  # one point is never judged


def test_metrics_slowlog_and_health_flags_are_exclusive():
    code, output = run_cli("metrics", "--port", "1", "--slowlog", "--health")
    assert code == 2
    assert "mutually exclusive" in output


def test_serve_stdio_rejects_slowlog_flags(tmp_path):
    for extra in (["--slowlog-threshold-ms", "5"], ["--no-slowlog"]):
        code, output = run_cli("serve", *extra)
        assert code == 2
        assert "socket-mode flag" in output


def test_profile_and_bench_help(capsys):
    for name, flags in (
        ("profile", ("--hz", "--flame", "--collapsed", "--chrome")),
        ("bench", ("--ledger-dir", "--scale", "--only", "report", "backfill")),
        ("metrics", ("--slowlog", "--health", "--limit", "--no-traces")),
        ("serve", ("--slowlog-threshold-ms", "--slowlog-capacity", "--no-slowlog")),
    ):
        with pytest.raises(SystemExit) as excinfo:
            main([name, "--help"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        for flag in flags:
            assert flag in output, f"{name} --help missing {flag}"
