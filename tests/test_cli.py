"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main

from helpers import GET_COUNT_SOURCE


IFC_SOURCE = """
struct Password { value: u32 }
extern fn insecure_print(x: u32);

fn leak(p: &Password) {
    insecure_print(p.value);
}

fn fine(x: u32) {
    insecure_print(x);
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "program.mrs"
    path.write_text(GET_COUNT_SOURCE, encoding="utf-8")
    return str(path)


@pytest.fixture
def ifc_file(tmp_path):
    path = tmp_path / "ifc.mrs"
    path.write_text(IFC_SOURCE, encoding="utf-8")
    return str(path)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_parser_requires_a_subcommand():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_mir_command_prints_blocks(source_file):
    code, output = run_cli("mir", source_file)
    assert code == 0
    assert "bb0:" in output
    assert "get_count" in output


def test_mir_command_with_function_filter(source_file):
    code, output = run_cli("mir", source_file, "--function", "get_count")
    assert code == 0
    assert output.count("fn get_count") == 1


def test_mir_command_unknown_function_is_an_error(source_file):
    code, output = run_cli("mir", source_file, "--function", "nope")
    assert code == 2
    assert "error" in output


def test_analyze_command_prints_theta_and_sizes(source_file):
    code, output = run_cli("analyze", source_file)
    assert code == 0
    assert "Θ(" in output
    assert "dependency-set sizes" in output
    assert "condition: Modular" in output


def test_analyze_command_honours_condition_flags(source_file):
    code, output = run_cli("analyze", source_file, "--mut-blind")
    assert code == 0
    assert "condition: Mut-blind" in output


def test_slice_command_backward(source_file):
    code, output = run_cli(
        "slice", source_file, "--function", "get_count", "--variable", "h"
    )
    assert code == 0
    assert "backward slice" in output
    assert "insert" in output


def test_slice_command_forward(source_file):
    code, output = run_cli(
        "slice", source_file, "--function", "get_count", "--variable", "k", "--forward"
    )
    assert code == 0
    assert "forward slice" in output


def test_ifc_command_reports_violation_with_nonzero_exit(ifc_file):
    code, output = run_cli(
        "ifc", ifc_file, "--secret-type", "Password", "--sink", "insecure_print"
    )
    assert code == 1
    assert "leak" in output
    assert "insecure_print" in output


def test_ifc_command_clean_policy_exits_zero(ifc_file):
    code, output = run_cli("ifc", ifc_file, "--sink", "insecure_print")
    assert code == 0
    assert "no insecure flows" in output


def test_ifc_command_secret_variable_spec(ifc_file):
    code, output = run_cli(
        "ifc", ifc_file, "--secret-variable", "fine:x", "--sink", "insecure_print"
    )
    assert code == 1
    assert "fine" in output


def test_corpus_command_prints_table(tmp_path):
    code, output = run_cli("corpus", "--scale", "0.1")
    assert code == 0
    assert "Table 1" in output
    assert "rustpython" in output


def test_corpus_command_single_crate_source():
    code, output = run_cli("corpus", "--scale", "0.1", "--crate", "hyper")
    assert code == 0
    assert "crate hyper {" in output


def test_corpus_command_unknown_crate_errors():
    code, output = run_cli("corpus", "--scale", "0.1", "--crate", "nonexistent")
    assert code == 2
    assert "error" in output


def test_missing_file_is_a_clean_error():
    code, output = run_cli("mir", "/does/not/exist.mrs")
    assert code == 2
    assert "error" in output


def test_experiment_command_small_scale():
    code, output = run_cli("experiment", "--scale", "0.06")
    assert code == 0
    assert "measured vs paper" in output
    assert "crate boundary" in output
