"""End-to-end CLI coverage for `repro fuzz` and its satellites."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.fuzz.campaign import CampaignConfig, run_campaign


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


# ---------------------------------------------------------------------------
# Campaign mode
# ---------------------------------------------------------------------------


def test_fuzz_campaign_all_oracles_pass(tmp_path):
    code, output = run_cli(
        "fuzz", "--seed", "0", "--count", "4", "--report-dir", str(tmp_path)
    )
    assert code == 0
    assert "fuzz campaign: 4 programs" in output
    for oracle in ("validate", "engine_equivalence", "cache_equality",
                   "noninterference", "focus_agreement"):
        assert oracle in output
    report = json.loads((tmp_path / "fuzz_campaign.json").read_text())
    assert report["generated"] == 4
    assert report["failures"] == []
    assert report["feature_histogram"]


def test_fuzz_campaign_json_output(tmp_path):
    code, output = run_cli(
        "fuzz", "--seed", "0", "--count", "2", "--report-dir", str(tmp_path),
        "--json",
    )
    assert code == 0
    data = json.loads(output)
    assert data["kind"] == "repro-fuzz-campaign"
    assert data["oracle_counts"]["validate"]["pass"] == 2


def test_fuzz_report_dir_is_created_idempotently(tmp_path):
    nested = tmp_path / "a" / "b" / "reports"
    for _ in range(2):  # second run re-writes into the existing directory
        code, _ = run_cli(
            "fuzz", "--seed", "0", "--count", "1", "--report-dir", str(nested)
        )
        assert code == 0
    assert (nested / "fuzz_campaign.json").exists()


def test_fuzz_export_corpus_writes_mrs_files(tmp_path):
    corpus_dir = tmp_path / "corpus"
    code, _ = run_cli(
        "fuzz", "--seed", "5", "--count", "3",
        "--report-dir", str(tmp_path), "--export-corpus", str(corpus_dir),
    )
    assert code == 0
    files = sorted(corpus_dir.glob("*.mrs"))
    assert len(files) == 3
    assert "crate fuzzed {" in files[0].read_text()


def test_fuzz_usage_error_on_bad_positional():
    code, output = run_cli("fuzz", "banana")
    assert code == 2
    assert "repro fuzz repro" in output


# ---------------------------------------------------------------------------
# Injected violations → shrunk artifact → replay
# ---------------------------------------------------------------------------


def test_injected_violation_is_shrunk_and_replayable(tmp_path):
    code, output = run_cli(
        "fuzz", "--seed", "0", "--count", "2", "--inject", "while_loop",
        "--report-dir", str(tmp_path),
    )
    assert code == 1
    assert "injected:while_loop" in output
    artifacts = sorted(tmp_path.glob("fuzz_repro_seed*_injected_while_loop.json"))
    assert len(artifacts) == 2

    artifact = json.loads(artifacts[0].read_text())
    assert artifact["kind"] == "repro-fuzz-artifact"
    assert artifact["reduction"]["reduced_loc"] < artifact["reduction"]["original_loc"]

    replay_code, replay_output = run_cli("fuzz", "repro", str(artifacts[0]))
    assert replay_code == 0
    assert "reproduced as recorded" in replay_output
    assert "while" in replay_output  # the shrunk source is printed


def test_replay_of_fixed_artifact_exits_nonzero(tmp_path):
    path = tmp_path / "artifact.json"
    path.write_text(json.dumps({
        "kind": "repro-fuzz-artifact",
        "version": 1,
        "seed": 0,
        "crate_name": "main",
        "oracle": "injected:while_loop",
        "detail": "injected_while_loop: gone",
        "source": "fn f(a: u32) -> u32 { a + 1 }\n",
    }))
    code, output = run_cli("fuzz", "repro", str(path))
    assert code == 1
    assert "did NOT reproduce" in output


def test_replay_rejects_non_artifact_files(tmp_path):
    path = tmp_path / "not_artifact.json"
    path.write_text(json.dumps({"kind": "something-else"}))
    code, output = run_cli("fuzz", "repro", str(path))
    assert code == 2
    assert "not a repro fuzz artifact" in output


# ---------------------------------------------------------------------------
# `repro stats --campaign` (per-campaign aggregates)
# ---------------------------------------------------------------------------


@pytest.fixture()
def campaign_report(tmp_path):
    config = CampaignConfig(seed=0, count=3, report_dir=str(tmp_path))
    report = run_campaign(config)
    return report.report_path


def test_stats_campaign_renders_feature_histogram(campaign_report):
    code, output = run_cli("stats", "--campaign", campaign_report)
    assert code == 0
    assert "feature coverage over 3 generated programs" in output
    assert "entry" in output
    assert "oracle battery:" in output


def test_stats_campaign_json(campaign_report):
    code, output = run_cli("stats", "--campaign", campaign_report, "--json")
    assert code == 0
    data = json.loads(output)
    assert data["generated"] == 3
    assert data["feature_histogram"]["entry"] >= 3


def test_stats_without_file_or_campaign_is_a_clean_error():
    code, output = run_cli("stats")
    assert code == 2
    assert "--campaign" in output


# ---------------------------------------------------------------------------
# Error surfacing (line:column + excerpt) for broken inputs
# ---------------------------------------------------------------------------


def test_parse_error_shows_position_and_excerpt(tmp_path):
    bad = tmp_path / "bad.mrs"
    bad.write_text("fn f(a: u32) -> u32 {\n    let x = ;\n    x\n}\n")
    code, output = run_cli("analyze", str(bad))
    assert code == 2
    assert f"{bad}:2:" in output        # line:column of the offending token
    assert "let x = ;" in output        # the source excerpt
    assert "^" in output                # the caret underline


def test_type_error_shows_position_and_excerpt(tmp_path):
    bad = tmp_path / "bad_types.mrs"
    bad.write_text("fn f(a: u32) -> u32 {\n    a && true\n}\n")
    code, output = run_cli("analyze", str(bad))
    assert code == 2
    assert f"{bad}:2:" in output
    assert "a && true" in output
