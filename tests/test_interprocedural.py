"""Tests for the interprocedural flow graph and IFC extension (Section 6)."""

import pytest

from repro.apps.ifc import IfcPolicy
from repro.apps.interprocedural import (
    InterproceduralIfcChecker,
    build_flow_graph,
    param_node,
    return_node,
)


SOURCE = """
struct Password { value: u32 }

extern fn insecure_print(x: u32);
extern fn secure_log(x: u32);

fn hash_secret(p: &Password) -> u32 {
    p.value * 31
}

fn format_message(code: u32, salt: u32) -> u32 {
    code + salt
}

fn emit(msg: u32) {
    insecure_print(msg);
}

// Secret -> hash_secret -> format_message -> emit -> insecure_print:
// a leak that no single intraprocedural analysis would see end-to-end.
fn handle_login(p: &Password, salt: u32) {
    let h = hash_secret(p);
    let msg = format_message(h, salt);
    emit(msg);
}

// Only public data reaches the sink here.
fn show_version(version: u32) {
    emit(version);
}

// The secret only flows to the secure logger.
fn audit(p: &Password) {
    secure_log(p.value);
}
"""


@pytest.fixture(scope="module")
def flows():
    return build_flow_graph(SOURCE)


@pytest.fixture(scope="module")
def checker():
    policy = IfcPolicy()
    policy.mark_type_secret("Password")
    policy.mark_function_insecure("insecure_print")
    return InterproceduralIfcChecker(SOURCE, policy)


# ---------------------------------------------------------------------------
# Flow graph structure
# ---------------------------------------------------------------------------


def test_param_to_return_edges_within_a_function(flows):
    assert flows.flows_to_return_of("hash_secret", 0)
    assert flows.flows_to_return_of("format_message", 0)
    assert flows.flows_to_return_of("format_message", 1)


def test_call_argument_edges_connect_caller_to_callee(flows):
    # handle_login passes its password into hash_secret's parameter 0.
    assert flows.graph.reaches(
        param_node("handle_login", 0), param_node("hash_secret", 0)
    )
    # and the hashed value reaches emit's parameter.
    assert flows.graph.reaches(param_node("handle_login", 0), param_node("emit", 0))


def test_unrelated_parameters_do_not_reach_the_sink_chain(flows):
    # audit's password flows into secure_log, not insecure_print.
    assert not flows.graph.reaches(
        param_node("audit", 0), param_node("insecure_print", 0)
    )


def test_return_to_return_composition(flows):
    # hash_secret's return feeds handle_login's body; handle_login has no
    # return value, but format_message's return reaches emit's parameter via
    # the call-site edge in handle_login.
    assert flows.graph.reaches(
        param_node("format_message", 0), param_node("insecure_print", 0)
    ) or flows.graph.reaches(return_node("format_message"), param_node("emit", 0))


def test_params_reaching_lists_sources(flows):
    sources = flows.params_reaching(param_node("insecure_print", 0))
    assert param_node("handle_login", 0) in sources
    assert param_node("audit", 0) not in sources


def test_graph_statistics_are_sane(flows):
    assert flows.graph.edge_count() > 5
    assert param_node("handle_login", 0) in flows.graph.nodes


def test_reachability_is_reflexive_and_directed(flows):
    node = param_node("hash_secret", 0)
    assert flows.graph.reaches(node, node)
    assert not flows.graph.reaches(return_node("hash_secret"), node)


# ---------------------------------------------------------------------------
# Interprocedural IFC
# ---------------------------------------------------------------------------


def test_cross_function_leak_is_detected(checker):
    violations = checker.check()
    leaking_sources = {v.source for v in violations}
    assert param_node("handle_login", 0) in leaking_sources
    assert all(v.sink_function == "insecure_print" for v in violations)


def test_public_only_paths_are_not_flagged(checker):
    violations = checker.check()
    sources = {v.source[0] for v in violations}
    assert "show_version" not in sources
    assert "audit" not in sources


def test_report_is_readable(checker):
    report = checker.report()
    assert "interprocedural ifc" in report
    assert "handle_login" in report


def test_clean_program_reports_no_flows():
    policy = IfcPolicy()
    policy.mark_type_secret("Password")
    policy.mark_function_insecure("insecure_print")
    clean = """
    struct Password { value: u32 }
    extern fn insecure_print(x: u32);
    fn show(version: u32) { insecure_print(version); }
    fn stash(p: &Password) -> u32 { p.value }
    """
    checker = InterproceduralIfcChecker(clean, policy)
    assert checker.check() == []
    assert "no insecure flows" in checker.report()


def test_declassified_sinks_are_skipped():
    policy = IfcPolicy()
    policy.mark_type_secret("Password")
    policy.mark_function_insecure("insecure_print")
    policy.declassified_functions.add("insecure_print")
    checker = InterproceduralIfcChecker(SOURCE, policy)
    assert checker.check() == []
