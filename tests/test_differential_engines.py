"""Differential property test: bitset engine ≡ legacy object engine.

The indexed bitset substrate is only allowed to be *fast*; every observable
result must be identical to the legacy object domain it replaces.  For every
crate of the (scaled-down) evaluation corpus and every one of the 2³
analysis conditions of Table 2, both engines are run over every local
function and compared on:

* the tracked places and exit-Θ dependency sets (``exit_theta.items()``),
* the per-variable dependency sizes (the Figure 2 measurement),
* the Θ annotations rendered per location (Figure 1 printouts),
* the serialised :class:`~repro.service.cache.FunctionRecord` (the service's
  query answer, minus the condition string which names the engine), and
* the serialised :class:`~repro.focus.table.FocusTable` (focus/slice
  answers).

Warm-vs-cold byte-equality of service answers is covered separately by
``test_service_cache.py``; this file pins the engine axis.
"""

import dataclasses

import pytest

from repro.core.config import all_conditions
from repro.core.engine import FlowEngine
from repro.eval.corpus import generate_corpus
from repro.focus.table import FocusTable
from repro.service.cache import FunctionRecord

CORPUS = generate_corpus(scale=0.06)


@pytest.mark.parametrize(
    "condition", all_conditions(), ids=lambda c: c.name or "Modular"
)
def test_bitset_engine_matches_object_engine_on_corpus(condition):
    for crate in CORPUS:
        object_engine = FlowEngine.from_source(
            crate.source, config=dataclasses.replace(condition, engine="object")
        )
        bitset_engine = FlowEngine.from_source(
            crate.source, config=dataclasses.replace(condition, engine="bitset")
        )
        for fn_name in object_engine.local_function_names():
            obj = object_engine.analyze_function(fn_name)
            bit = bitset_engine.analyze_function(fn_name)
            context = (condition.name, crate.name, fn_name)

            assert dict(obj.exit_theta.items()) == dict(bit.exit_theta.items()), context
            assert obj.dependency_sizes() == bit.dependency_sizes(), context
            assert obj.dependency_sizes(count_arg_tags=False) == bit.dependency_sizes(
                count_arg_tags=False
            ), context
            assert obj.annotations() == bit.annotations(), context

            obj_record = FunctionRecord.from_result(obj, "fp", "cond").to_json_dict()
            bit_record = FunctionRecord.from_result(bit, "fp", "cond").to_json_dict()
            assert obj_record == bit_record, context

            obj_table = FocusTable.build(obj, fingerprint="fp").to_json_dict()
            bit_table = FocusTable.build(bit, fingerprint="fp").to_json_dict()
            assert obj_table == bit_table, context


def test_engine_field_is_validated():
    with pytest.raises(ValueError):
        dataclasses.replace(all_conditions()[0], engine="quantum")
