"""Differential property tests: indexed engines ≡ legacy object engine.

The bitset and vector substrates are only allowed to be *fast*; every
observable result must be identical to the legacy object domain they
replace.  For every crate of the (scaled-down) evaluation corpus and every
one of the 2³ analysis conditions of Table 2, each indexed tier is run over
every local function and compared against the object referee on:

* the tracked places and exit-Θ dependency sets (``exit_theta.items()``),
* the per-variable dependency sizes (the Figure 2 measurement),
* the Θ annotations rendered per location (Figure 1 printouts),
* the serialised :class:`~repro.service.cache.FunctionRecord` (the service's
  query answer, minus the condition string which names the engine), and
* the serialised :class:`~repro.focus.table.FocusTable` (focus/slice
  answers).

A wider but shallower sweep then drives 200 generated fuzz programs through
all tiers under both Modular and Whole-program, comparing exit-Θ and sizes —
the breadth axis the hand-written corpus cannot cover.

Warm-vs-cold byte-equality of service answers is covered separately by
``test_service_cache.py``; this file pins the engine axis.
"""

import dataclasses

import pytest

from repro.core.config import MODULAR, WHOLE_PROGRAM, all_conditions
from repro.core.engine import FlowEngine
from repro.dataflow.vecbitset import HAVE_NUMPY
from repro.eval.corpus import generate_corpus, generate_fuzz_corpus
from repro.focus.table import FocusTable
from repro.service.cache import FunctionRecord

CORPUS = generate_corpus(scale=0.06)

# The object engine is the referee; each indexed tier must match it exactly.
INDEXED_TIERS = ("bitset", "vector") if HAVE_NUMPY else ("bitset",)


@pytest.mark.parametrize("tier", INDEXED_TIERS)
@pytest.mark.parametrize(
    "condition", all_conditions(), ids=lambda c: c.name or "Modular"
)
def test_indexed_engines_match_object_engine_on_corpus(condition, tier):
    for crate in CORPUS:
        object_engine = FlowEngine.from_source(
            crate.source, config=dataclasses.replace(condition, engine="object")
        )
        tier_engine = FlowEngine.from_source(
            crate.source, config=dataclasses.replace(condition, engine=tier)
        )
        for fn_name in object_engine.local_function_names():
            obj = object_engine.analyze_function(fn_name)
            idx = tier_engine.analyze_function(fn_name)
            context = (tier, condition.name, crate.name, fn_name)

            assert dict(obj.exit_theta.items()) == dict(idx.exit_theta.items()), context
            assert obj.dependency_sizes() == idx.dependency_sizes(), context
            assert obj.dependency_sizes(count_arg_tags=False) == idx.dependency_sizes(
                count_arg_tags=False
            ), context
            assert obj.annotations() == idx.annotations(), context

            obj_record = FunctionRecord.from_result(obj, "fp", "cond").to_json_dict()
            idx_record = FunctionRecord.from_result(idx, "fp", "cond").to_json_dict()
            assert obj_record == idx_record, context

            obj_table = FocusTable.build(obj, fingerprint="fp").to_json_dict()
            idx_table = FocusTable.build(idx, fingerprint="fp").to_json_dict()
            assert obj_table == idx_table, context


@pytest.mark.parametrize(
    "config", [MODULAR, WHOLE_PROGRAM], ids=["Modular", "Whole-program"]
)
def test_engines_agree_on_fuzz_sweep(config):
    """200 generated programs through every tier: exit-Θ and sizes identical."""
    engines = ("object",) + INDEXED_TIERS
    for crate in generate_fuzz_corpus(count=200, seed=0, size="small"):
        results = {}
        for engine_name in engines:
            engine = FlowEngine.from_source(
                crate.source, config=dataclasses.replace(config, engine=engine_name)
            )
            results[engine_name] = {
                fn_name: (
                    dict(
                        (result := engine.analyze_function(fn_name)).exit_theta.items()
                    ),
                    result.dependency_sizes(),
                )
                for fn_name in engine.local_function_names()
            }
        referee = results["object"]
        for tier in INDEXED_TIERS:
            assert results[tier] == referee, (tier, config.name, crate.name)


def test_engine_field_is_validated():
    with pytest.raises(ValueError):
        dataclasses.replace(all_conditions()[0], engine="quantum")
