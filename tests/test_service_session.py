"""Session-level tests: cache correctness, incremental edits, query parity.

The two property-style tests encode the PR's headline guarantees over a
randomly chosen generated corpus crate:

* warm-cache results are byte-equal to cold results under all four primary
  conditions, and
* editing one function's body invalidates exactly its reverse-call-graph
  cone under the whole-program condition and only the function itself under
  the modular condition.
"""

from __future__ import annotations

import random

import pytest

from helpers import GET_COUNT_SOURCE, HELPER_CALLER_SOURCE

from repro.apps.slicer import ProgramSlicer
from repro.core.config import MODULAR, MUT_BLIND, REF_BLIND, WHOLE_PROGRAM
from repro.errors import ReproError
from repro.eval.corpus import generate_corpus
from repro.lang.parser import parse_program
from repro.lang.typeck import check_program
from repro.mir.callgraph import build_call_graph
from repro.mir.lower import lower_program
from repro.service.cache import SummaryStore
from repro.service.session import AnalysisSession


PRIMARY_CONDITIONS = [MODULAR, WHOLE_PROGRAM, MUT_BLIND, REF_BLIND]

IFC_SOURCE = """
struct Password { value: u32 }
extern fn insecure_print(x: u32);

fn leak(p: &Password) {
    insecure_print(p.value);
}

fn fine(x: u32) {
    insecure_print(x);
}
"""


@pytest.fixture(scope="module")
def small_corpus():
    return generate_corpus(scale=0.08)


def crate_lowered(crate):
    checked = check_program(parse_program(crate.source, local_crate=crate.name))
    return checked, lower_program(checked)


def insert_probe(crate, fn_name: str) -> str:
    """Insert a fresh statement at the top of ``fn_name``'s body: an edit
    that changes exactly one function's lowered body."""
    _checked, lowered = crate_lowered(crate)
    body = lowered.body(fn_name)
    lines = crate.source.splitlines()
    lines.insert(body.span.start_line, "        let edit_probe = 424242;")
    return "\n".join(lines)


class TestWarmEqualsCold:
    def test_warm_cache_results_equal_cold_under_all_conditions(self, small_corpus):
        rng = random.Random(20260728)
        crate = rng.choice(small_corpus)
        store = SummaryStore()

        for config in PRIMARY_CONDITIONS:
            cold = AnalysisSession(store=store, local_crate=crate.name)
            cold.open_unit(crate.name, crate.source)
            cold_response = cold.analyze(config=config)
            assert cold_response["cache_hits"] == 0

            warm = AnalysisSession(store=store, local_crate=crate.name)
            warm.open_unit(crate.name, crate.source)
            warm_response = warm.analyze(config=config)

            assert warm_response["cache_hits"] == len(warm_response["functions"])
            for name, cold_entry in cold_response["functions"].items():
                assert (
                    warm_response["functions"][name]["dependency_sizes"]
                    == cold_entry["dependency_sizes"]
                )


class TestEditInvalidation:
    def test_edit_invalidates_exactly_the_reverse_cone(self, small_corpus):
        rng = random.Random(20260728)
        # A crate and function with a non-trivial reverse cone.
        candidates = []
        for crate in small_corpus:
            _checked, lowered = crate_lowered(crate)
            graph = build_call_graph(lowered)
            for body in lowered.bodies.values():
                if body.crate != crate.name:
                    continue
                if graph.transitive_callers(body.fn_name):
                    candidates.append((crate, body.fn_name))
        assert candidates, "corpus generated no called local functions"
        crate, edited_fn = rng.choice(candidates)

        _checked, lowered = crate_lowered(crate)
        graph = build_call_graph(lowered)
        local = {b.fn_name for b in lowered.bodies.values() if b.crate == crate.name}
        expected_cone = ({edited_fn} | graph.transitive_callers(edited_fn)) & local

        session = AnalysisSession(local_crate=crate.name)
        session.open_unit(crate.name, crate.source)
        session.analyze(config=MODULAR)
        session.analyze(config=WHOLE_PROGRAM)

        report = session.update_unit(crate.name, insert_probe(crate, edited_fn))
        assert report["body_changed"] == [edited_fn]
        assert report["sig_changed"] == []

        modular_evict = set(report["invalidation"]["modular"]["evict"])
        whole_evict = set(report["invalidation"]["whole_program"]["evict"])
        # Modular results invalidate only the edited function — the paper's
        # modularity payoff.  Whole-program results lose the whole cone.
        assert modular_evict == {edited_fn}
        assert whole_evict == {edited_fn} | graph.transitive_callers(edited_fn)

        # Re-analysis misses exactly the cone and hits everything else.
        modular_after = session.analyze(config=MODULAR)
        modular_misses = {
            name
            for name, entry in modular_after["functions"].items()
            if entry["cache"] == "miss"
        }
        assert modular_misses == {edited_fn}

        whole_after = session.analyze(config=WHOLE_PROGRAM)
        whole_misses = {
            name
            for name, entry in whole_after["functions"].items()
            if entry["cache"] == "miss"
        }
        assert whole_misses == expected_cone

    def test_failed_open_does_not_poison_the_workspace(self):
        session = AnalysisSession()
        session.open_unit("good", "fn f(x: u32) -> u32 { x }")
        with pytest.raises(Exception):
            session.open_unit("bad", "fn broken( {")
        # The broken unit is rolled back and the session keeps working —
        # including across a later edit, which re-joins all units.
        assert session.unit_names() == ["good"]
        assert session.analyze()["functions"]["f"]["cache"] == "miss"
        session.update_unit("good", "fn f(x: u32) -> u32 { x + 1 }")
        assert session.analyze()["functions"]["f"]["cache"] == "miss"

    def test_failed_edit_keeps_previous_source(self):
        session = AnalysisSession()
        session.open_unit("main", HELPER_CALLER_SOURCE)
        generation = session.generation
        with pytest.raises(Exception):
            session.update_unit("main", "fn nope(")
        assert session.generation == generation
        assert session.analyze(function="caller")["functions"]["caller"]

    def test_unchanged_reopen_is_not_an_edit(self):
        session = AnalysisSession()
        session.open_unit("main", HELPER_CALLER_SOURCE)
        session.analyze()
        report = session.open_unit("main", HELPER_CALLER_SOURCE)
        assert report["body_changed"] == []
        assert report["evicted_entries"] == 0
        assert session.analyze()["cache_hits"] == 2


class TestSummaryDeterminism:
    """Warm answers must equal cold ones even when the whole-program
    recursion hits its depth bound or breaks a call cycle: summaries whose
    computation was truncated are context-dependent and must never be
    served from the cache to a different analysis root."""

    CHAIN = (
        "\n".join(
            f"fn f{i}(x: u32) -> u32 {{\n    f{i + 1}(x) + {i}\n}}" for i in range(3)
        )
        + "\nfn f3(x: u32) -> u32 {\n    x * 2\n}"
    )

    CYCLE = """
fn ping(x: u32) -> u32 { if x > 0 { pong(x - 1) } else { 0 } }
fn pong(x: u32) -> u32 { ping(x) + 1 }
fn via_ping(x: u32) -> u32 { ping(x) }
fn via_pong(x: u32) -> u32 { pong(x) }
"""

    @staticmethod
    def _sizes(session, function, config):
        return session.analyze(function=function, config=config)["functions"][function][
            "dependency_sizes"
        ]

    def test_depth_truncated_summaries_are_not_served_to_other_roots(self):
        from repro.core.config import AnalysisConfig

        config = AnalysisConfig(whole_program=True, max_whole_program_depth=2)
        warmed = AnalysisSession()
        warmed.open_unit("main", self.CHAIN)
        self._sizes(warmed, "f0", config)  # fills the store via f0's cone
        warm = self._sizes(warmed, "f1", config)

        fresh = AnalysisSession()
        fresh.open_unit("main", self.CHAIN)
        assert warm == self._sizes(fresh, "f1", config)

    def test_cycle_broken_summaries_are_not_served_to_other_roots(self):
        warmed = AnalysisSession()
        warmed.open_unit("main", self.CYCLE)
        self._sizes(warmed, "via_ping", WHOLE_PROGRAM)
        warm = self._sizes(warmed, "via_pong", WHOLE_PROGRAM)

        fresh = AnalysisSession()
        fresh.open_unit("main", self.CYCLE)
        assert warm == self._sizes(fresh, "via_pong", WHOLE_PROGRAM)

    def test_results_are_independent_of_query_order(self):
        """A store warmed in a different order must not change any answer:
        serving a deep callee's complete summary where a cold recursion would
        have hit the depth bound is refused (height check)."""
        from repro.core.config import AnalysisConfig

        config = AnalysisConfig(whole_program=True, max_whole_program_depth=2)
        names = ["f0", "f1", "f2", "f3"]

        baseline = {}
        for name in names:
            solo = AnalysisSession()
            solo.open_unit("main", self.CHAIN)
            baseline[name] = self._sizes(solo, name, config)

        # Bottom-up warm-up stores complete summaries for the deep functions
        # first; top-down queries must still match the cold baseline.
        shared = AnalysisSession()
        shared.open_unit("main", self.CHAIN)
        for name in reversed(names):
            assert self._sizes(shared, name, config) == baseline[name]
        for name in names:
            assert self._sizes(shared, name, config) == baseline[name]


class TestQueries:
    def test_slice_matches_program_slicer(self):
        session = AnalysisSession()
        session.open_unit("main", HELPER_CALLER_SOURCE)
        slicer = ProgramSlicer(HELPER_CALLER_SOURCE)

        for direction in ("backward", "forward"):
            response = session.slice("caller", "r", direction=direction)
            reference = (
                slicer.backward_slice("caller", "r")
                if direction == "backward"
                else slicer.forward_slice("caller", "r")
            )
            assert response["size"] == reference.size()
            assert set(response["lines"]) == set(reference.relevant_lines)

    def test_backward_slice_served_from_cache_matches_fresh(self):
        session = AnalysisSession()
        session.open_unit("main", GET_COUNT_SOURCE)
        cold = session.slice("get_count", "k")
        warm = session.slice("get_count", "k")
        assert cold["cache"] == "miss"
        assert warm["cache"] == "hit"
        assert warm["lines"] == cold["lines"]
        assert warm["size"] == cold["size"]

    def test_ifc_query_reports_violations(self):
        session = AnalysisSession()
        session.open_unit("main", IFC_SOURCE)
        response = session.ifc(secret_types=["Password"], sinks=["insecure_print"])
        assert response["count"] == 1
        assert "leak" in response["violations"][0]

    def test_analyze_unknown_function_raises(self):
        session = AnalysisSession()
        session.open_unit("main", HELPER_CALLER_SOURCE)
        with pytest.raises(ReproError):
            session.analyze(function="nope")

    def test_query_before_open_raises(self):
        with pytest.raises(ReproError):
            AnalysisSession().analyze()

    def test_warm_fills_store_for_later_queries(self):
        session = AnalysisSession()
        session.open_unit("main", HELPER_CALLER_SOURCE)
        batch = session.warm()
        assert batch["computed"] == 2
        response = session.analyze()
        assert response["cache_hits"] == 2


class TestDiskTier:
    def test_cold_process_restart_served_from_disk(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = AnalysisSession(cache_dir=cache_dir)
        first.open_unit("main", HELPER_CALLER_SOURCE)
        assert first.analyze()["cache_hits"] == 0

        # A brand-new session+store over the same directory: memory tier is
        # empty, every answer comes off disk.
        second = AnalysisSession(cache_dir=cache_dir)
        second.open_unit("main", HELPER_CALLER_SOURCE)
        response = second.analyze()
        assert response["cache_hits"] == 2
        assert second.store.stats.disk_hits == 2
