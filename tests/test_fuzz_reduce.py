"""Shrinker properties: verdict preservation, monotonicity, idempotence."""

from __future__ import annotations

import pytest

from repro.fuzz.generator import generate_program
from repro.fuzz.oracles import run_battery
from repro.fuzz.reduce import remove_lines, removable_units, shrink


def _still_fails(oracle: str, kind: str, crate_name: str = "fuzzed", seed: int = 0):
    def predicate(candidate: str) -> bool:
        verdicts = run_battery(candidate, crate_name, oracles=[oracle], seed=seed)
        return any(
            not v.ok and v.oracle == oracle and v.kind() == kind for v in verdicts
        )

    return predicate


# ---------------------------------------------------------------------------
# Unit collection and line surgery
# ---------------------------------------------------------------------------


def test_removable_units_cover_functions_items_and_statements():
    program = generate_program(0)
    units = removable_units(program.source, program.crate_name)
    kinds = {kind for _, _, kind in units}
    assert {"fn", "stmt", "struct", "extern"} <= kinds
    # Functions are offered before statements (largest-chunk-first strategy).
    first_stmt = next(i for i, unit in enumerate(units) if unit[2] == "stmt")
    last_fn = max(i for i, unit in enumerate(units) if unit[2] == "fn")
    assert last_fn < first_stmt


def test_removable_units_is_empty_for_unparsable_source():
    assert removable_units("fn f( {", "main") == []


def test_remove_lines_is_inclusive_and_preserves_the_rest():
    source = "a\nb\nc\nd\n"
    assert remove_lines(source, 2, 3) == "a\nd\n"
    assert remove_lines(source, 1, 4) == "\n"


# ---------------------------------------------------------------------------
# Shrinking injected failures
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 3])
def test_shrink_preserves_verdict_and_is_monotone(seed):
    program = generate_program(seed)
    predicate = _still_fails("injected:while_loop", "injected_while_loop", seed=seed)
    assert predicate(program.source), "sweep program unexpectedly loop-free"

    result = shrink(program.source, predicate, crate_name=program.crate_name)
    # Verdict preserved on the reduced program.
    assert predicate(result.reduced)
    # Monotone: the reduction never grows the program.
    assert result.reduced_loc <= result.original_loc
    # And it actually helps on generated programs of this size.
    assert result.reduced_loc < result.original_loc
    # The reduced program still contains the failure trigger.
    assert "while" in result.reduced


@pytest.mark.parametrize("seed", [0, 3])
def test_shrink_is_idempotent(seed):
    program = generate_program(seed)
    predicate = _still_fails("injected:while_loop", "injected_while_loop", seed=seed)
    first = shrink(program.source, predicate, crate_name=program.crate_name)
    second = shrink(first.reduced, predicate, crate_name=program.crate_name)
    assert second.reduced == first.reduced


def test_shrink_rejects_candidates_with_a_different_failure():
    """Reduction must not drift into unrelated breakage: a candidate that no
    longer parses fails with a different signature and is rejected, so the
    reduced program still typechecks."""
    from repro.fuzz.oracles import prepare

    program = generate_program(1)
    predicate = _still_fails("injected:while_loop", "injected_while_loop", seed=1)
    result = shrink(program.source, predicate, crate_name=program.crate_name)
    prepare(result.reduced, program.crate_name)  # raises if invalid


def test_shrink_respects_the_probe_budget():
    program = generate_program(2)
    predicate = _still_fails("injected:while_loop", "injected_while_loop", seed=2)
    result = shrink(
        program.source, predicate, crate_name=program.crate_name, max_probes=5
    )
    assert result.probes <= 5
    assert predicate(result.reduced)
