"""Tests for call-graph-aware invalidation.

The asymmetry asserted here *is* the paper's modularity claim, operationalised:
a body edit invalidates only the edited function under the modular condition,
but its whole reverse-call-graph cone under the whole-program condition.
"""

from __future__ import annotations

from helpers import lowered_from

from repro.core.config import MODULAR, WHOLE_PROGRAM
from repro.mir.callgraph import build_call_graph
from repro.service.cache import CacheKey, SummaryStore, config_cache_key
from repro.service.invalidate import (
    REASON_EDITED,
    REASON_SIGNATURE_CALLER,
    REASON_TRANSITIVE_CALLER,
    apply_invalidation,
    plan_both_conditions,
    plan_invalidation,
)


# Call graph:  main -> update -> compute -> helper
#              main -> render -> compute
#              audit (isolated)
DIAMOND_SOURCE = """
fn helper(x: u32) -> u32 {
    x + 1
}

fn compute(x: u32) -> u32 {
    helper(x) * 2
}

fn update(x: u32) -> u32 {
    compute(x) + 1
}

fn render(x: u32) -> u32 {
    compute(x) + 2
}

fn main_entry(x: u32) -> u32 {
    update(x) + render(x)
}

fn audit(x: u32) -> u32 {
    x * 3
}
"""


def diamond_graph():
    _checked, lowered = lowered_from(DIAMOND_SOURCE)
    return build_call_graph(lowered)


class TestReverseEdges:
    def test_reverse_edges_and_transitive_callers(self):
        graph = diamond_graph()
        reverse = graph.reverse_edges()
        assert reverse["compute"] == {"update", "render"}
        assert graph.transitive_callers("helper") == {
            "compute",
            "update",
            "render",
            "main_entry",
        }
        assert graph.transitive_callers("audit") == set()


class TestPlans:
    def test_modular_body_edit_invalidates_only_edited_function(self):
        plan = plan_invalidation(
            diamond_graph(), body_changed=["helper"], whole_program=False
        )
        assert plan.evict == {"helper": REASON_EDITED}

    def test_whole_program_body_edit_invalidates_reverse_cone(self):
        plan = plan_invalidation(
            diamond_graph(), body_changed=["helper"], whole_program=True
        )
        assert plan.evict == {
            "helper": REASON_EDITED,
            "compute": REASON_TRANSITIVE_CALLER,
            "update": REASON_TRANSITIVE_CALLER,
            "render": REASON_TRANSITIVE_CALLER,
            "main_entry": REASON_TRANSITIVE_CALLER,
        }

    def test_whole_program_edit_of_mid_function_spares_callees(self):
        plan = plan_invalidation(
            diamond_graph(), body_changed=["update"], whole_program=True
        )
        assert set(plan.evict) == {"update", "main_entry"}

    def test_modular_signature_change_reaches_direct_callers_only(self):
        plan = plan_invalidation(
            diamond_graph(), sig_changed=["compute"], whole_program=False
        )
        assert plan.evict == {
            "compute": REASON_EDITED,
            "update": REASON_SIGNATURE_CALLER,
            "render": REASON_SIGNATURE_CALLER,
        }

    def test_removed_function_treated_like_signature_change(self):
        plan = plan_invalidation(
            diamond_graph(), removed=["helper"], whole_program=False
        )
        assert plan.evict == {
            "helper": REASON_EDITED,
            "compute": REASON_SIGNATURE_CALLER,
        }

    def test_isolated_function_never_collateral(self):
        for whole_program in (False, True):
            plan = plan_invalidation(
                diamond_graph(), body_changed=["helper"], whole_program=whole_program
            )
            assert "audit" not in plan.evict


class TestApply:
    def test_apply_respects_condition_family(self):
        graph = diamond_graph()
        store = SummaryStore()
        modular_cond = config_cache_key(MODULAR)
        whole_cond = config_cache_key(WHOLE_PROGRAM)
        for fn in ("helper", "compute", "update", "render", "main_entry", "audit"):
            store.put(CacheKey("record", fn, "fp", modular_cond), {"fn": fn})
            store.put(CacheKey("record", fn, "fp", whole_cond), {"fn": fn})

        plans = plan_both_conditions(graph, body_changed=["helper"])
        removed = sum(apply_invalidation(store, plan) for plan in plans.values())

        # Modular family: helper only.  Whole-program family: the full cone.
        assert removed == 1 + 5
        assert store.get(CacheKey("record", "helper", "fp", modular_cond)) is None
        assert store.get(CacheKey("record", "compute", "fp", modular_cond)) is not None
        assert store.get(CacheKey("record", "compute", "fp", whole_cond)) is None
        assert store.get(CacheKey("record", "audit", "fp", whole_cond)) is not None
