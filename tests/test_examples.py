"""Smoke test: every script in ``examples/`` must stay executable.

The examples are the documentation's runnable walkthroughs; this test (and
the matching CI step) runs each one in a subprocess so a library change
that breaks a documented example fails tier-1 rather than rotting silently.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, (
        f"{script.name} exited {proc.returncode}\n"
        f"stdout:\n{proc.stdout[-2000:]}\nstderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
