"""Section 5.2 interaction check: Mut-blind × Ref-blind.

The paper reports that in a linear regression of dependency-set size on the
two ablation indicators, each indicator is individually significant
(p < 0.001) while their interaction is not (p = 0.337), which is why the
evaluation presents the conditions individually.  This benchmark fits the
same regression over the 2×2 (mut_blind, ref_blind) grid measured on the
corpus.
"""

from bench_utils import write_report

from repro.core.config import AnalysisConfig, MODULAR, MUT_BLIND, REF_BLIND
from repro.eval.stats import interaction_regression


def test_interaction_regression_matches_paper_conclusion(benchmark, experiment, report_dir):
    combined = AnalysisConfig(mut_blind=True, ref_blind=True)
    sizes_by_condition = {
        (False, False): experiment.sizes(MODULAR),
        (True, False): experiment.sizes(MUT_BLIND),
        (False, True): experiment.sizes(REF_BLIND),
        (True, True): experiment.sizes(combined),
    }

    regression = benchmark.pedantic(
        interaction_regression, args=(sizes_by_condition,), rounds=1, iterations=1
    )

    mut_term = regression.term("mut_blind")
    ref_term = regression.term("ref_blind")
    interaction = regression.term("mut_blind:ref_blind")

    # Both ablations individually increase dependency-set sizes...
    assert mut_term.coefficient > 0
    assert ref_term.coefficient > 0
    assert mut_term.significant(alpha=0.01)
    assert ref_term.significant(alpha=0.01)
    # ...and the interaction effect is far smaller than the main effects
    # (the paper found it not significant; with a synthetic corpus we assert
    # the magnitude relation, which is the decision-relevant part).
    assert abs(interaction.coefficient) < max(mut_term.coefficient, ref_term.coefficient)

    lines = [
        "Section 5.2 interaction regression (reproduced):",
        f"  observations: {regression.n_observations}",
    ]
    for term in regression.terms:
        lines.append(
            f"  {term.name:22} coef={term.coefficient:8.3f} "
            f"t={term.t_statistic:8.2f} p={term.p_value:.3g}"
        )
    lines.append("  [paper: main effects p < 0.001, interaction p = 0.337]")
    write_report(report_dir, "interaction_regression", "\n".join(lines))
