"""Section 5.1 performance notes: modular vs whole-program analysis cost.

The paper reports a median per-function analysis time of ~370µs and a 178×
slowdown of the naively-recursive Whole-program analysis on a function with
thousands of reachable callees (rg3d's ``GameEngine::render``).  This
benchmark reproduces both observations in shape: per-function medians for
each condition, and a super-linear slowdown of Whole-program on a deep
synthetic call graph.

It also tracks the dataflow substrate itself: the indexed bitset engine
must beat the legacy object engine ≥ 2× on the fig2 end-to-end analysis
workload over the corpus, and the Θ-join microbenchmark records the raw
primitive gap.  Both are written to ``benchmarks/reports/engine_speedup.json``
so CI archives the speedup trajectory per commit.
"""

from bench_utils import record_history, write_json_report, write_report

from repro.core.config import MODULAR, WHOLE_PROGRAM
from repro.core.engine import FlowEngine
from repro.dataflow.vecbitset import HAVE_NUMPY
from repro.eval.perf import (
    compare_deep_call_graph,
    compare_engines,
    compare_fig2_vector,
    deep_call_graph_program,
    render_engine_report,
    render_perf_report,
    theta_join_microbenchmark,
)
from repro.lang.parser import parse_program


def test_perf_median_function_time_and_deep_call_graph(benchmark, experiment, report_dir):
    comparison = benchmark.pedantic(
        compare_deep_call_graph, kwargs={"depth": 6, "fanout": 2}, rounds=1, iterations=1
    )

    # The deep call graph has >100 reachable functions and whole-program pays
    # for all of them while modular does not.
    assert comparison.call_graph_size >= 100
    assert comparison.slowdown > 3.0, (
        f"expected a clear whole-program slowdown, got {comparison.slowdown:.1f}x"
    )

    modular_median = experiment.run(MODULAR).median_function_time()
    whole_median = experiment.run(WHOLE_PROGRAM).median_function_time()
    assert modular_median > 0
    assert whole_median >= modular_median * 0.5  # whole-program is never much cheaper

    report = render_perf_report(list(experiment.runs.values()), comparison)
    write_report(report_dir, "perf_modular_vs_whole", report)


def test_perf_engine_speedup_and_theta_join(corpus, report_dir):
    """The PR-4 acceptance gate (bitset ≥ 2× object on the fig2 corpus
    workload) plus the tier-3 gates: the vector Θ-join ≥ 3× the bitset join
    at multi-word scale, and the vector engine ≥ 1.5× the object engine
    end-to-end on the vectorization-scale workload through the SCC-wave
    driver.  All reported as one JSON CI artifact."""
    engines = ("object", "bitset", "vector") if HAVE_NUMPY else ("object", "bitset")
    comparisons = [
        compare_engines(corpus=corpus, config=config, rounds=5, engines=engines)
        for config in (MODULAR, WHOLE_PROGRAM)
    ]
    join_bench = theta_join_microbenchmark()

    report = render_engine_report(comparisons)
    report += (
        f"\n\n  theta-join microbenchmark: object "
        f"{join_bench.to_json_dict()['object_us_per_join']} µs/join -> bitset "
        f"{join_bench.to_json_dict()['bitset_us_per_join']} µs/join "
        f"(speedup {join_bench.speedup:.2f}x)"
    )

    metrics = {
        "fig2.engine_speedup": comparisons[0].speedup,
        "fig2.object_seconds": comparisons[0].object_seconds,
        "fig2.bitset_seconds": comparisons[0].bitset_seconds,
        "theta_join.speedup": join_bench.speedup,
        "theta_join.object_us_per_join": join_bench.object_seconds
        / join_bench.joins
        * 1e6,
        "theta_join.bitset_us_per_join": join_bench.bitset_seconds
        / join_bench.joins
        * 1e6,
    }
    payload = {
        "fig2_workload": [cmp.to_json_dict() for cmp in comparisons],
        "theta_join": join_bench.to_json_dict(),
    }

    vector_join = wave_bench = None
    if HAVE_NUMPY:
        # The vector join is measured at multi-word row width (2 words) —
        # the matrix shape the tier targets; the default-size pair above
        # keeps the legacy trajectories comparable.
        vector_join = theta_join_microbenchmark(places=128, locations_per_place=64)
        wave_bench = compare_fig2_vector(rounds=2)
        report += (
            f"\n  vector theta-join (128x128): bitset "
            f"{vector_join.to_json_dict()['bitset_us_per_join']} µs/join -> vector "
            f"{vector_join.to_json_dict()['vector_us_per_join']} µs/join "
            f"(speedup {vector_join.vector_speedup:.2f}x)"
            f"\n  fig2 vector workload (corpus + large fuzz, SCC waves, "
            f"mode={wave_bench.mode}): object "
            f"{wave_bench.object_seconds * 1e3:.1f} ms -> vector "
            f"{wave_bench.vector_seconds * 1e3:.1f} ms "
            f"(speedup {wave_bench.vector_speedup:.2f}x)"
        )
        payload["theta_join_vector"] = vector_join.to_json_dict()
        payload["fig2_vector_workload"] = wave_bench.to_json_dict()
        metrics.update(
            {
                "theta_join.vector_speedup": vector_join.vector_speedup,
                "theta_join.vector_us_per_join": vector_join.vector_seconds
                / vector_join.joins
                * 1e6,
                "fig2.corpus_vector_speedup": comparisons[0].vector_speedup,
                "fig2.vector_speedup": wave_bench.vector_speedup,
                "fig2.vector_seconds": wave_bench.vector_seconds,
            }
        )

    write_report(report_dir, "engine_speedup", report)
    json_path = write_json_report(report_dir, "engine_speedup", payload)
    print(f"[benchmark JSON written to {json_path}]")
    record_history(metrics)

    modular = comparisons[0]
    assert modular.speedup >= 2.0, (
        f"indexed engine must be >= 2x the object engine on the fig2 "
        f"workload, got {modular.speedup:.2f}x"
    )
    # Whole-program shares the recursion machinery across engines, so its
    # ratio is structurally smaller and noisier; it must still be a clear win.
    assert comparisons[1].speedup >= 1.2
    assert join_bench.speedup >= 2.0
    if HAVE_NUMPY:
        assert vector_join.vector_speedup >= 3.0, (
            f"vector theta-join must be >= 3x the bitset join at multi-word "
            f"scale, got {vector_join.vector_speedup:.2f}x"
        )
        assert wave_bench.vector_speedup >= 1.5, (
            f"vector engine must be >= 1.5x the object engine on the "
            f"vectorization-scale fig2 workload, got "
            f"{wave_bench.vector_speedup:.2f}x"
        )


def test_perf_modular_analysis_of_single_function(benchmark):
    """Wall-clock of analysing one mid-sized function under Modular —
    the per-function unit the paper's 370µs median refers to."""
    source = deep_call_graph_program(depth=3, fanout=2)
    program = parse_program(source, local_crate="engine")
    engine = FlowEngine.from_program(program, config=MODULAR)

    def analyze_once():
        engine._results.clear()
        return engine.analyze_function("game_engine_render")

    result = benchmark(analyze_once)
    assert result.dependency_sizes()


def test_perf_whole_program_analysis_of_single_function(benchmark):
    """The same function analysed under Whole-program (recursing through the
    call tree) — directly comparable to the previous benchmark."""
    source = deep_call_graph_program(depth=3, fanout=2)
    program = parse_program(source, local_crate="engine")

    def analyze_once():
        engine = FlowEngine.from_program(program, config=WHOLE_PROGRAM)
        return engine.analyze_function("game_engine_render")

    result = benchmark(analyze_once)
    assert result.dependency_sizes()
