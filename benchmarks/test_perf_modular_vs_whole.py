"""Section 5.1 performance notes: modular vs whole-program analysis cost.

The paper reports a median per-function analysis time of ~370µs and a 178×
slowdown of the naively-recursive Whole-program analysis on a function with
thousands of reachable callees (rg3d's ``GameEngine::render``).  This
benchmark reproduces both observations in shape: per-function medians for
each condition, and a super-linear slowdown of Whole-program on a deep
synthetic call graph.
"""

from bench_utils import write_report

from repro.core.config import MODULAR, WHOLE_PROGRAM
from repro.core.engine import FlowEngine
from repro.eval.perf import compare_deep_call_graph, deep_call_graph_program, render_perf_report
from repro.lang.parser import parse_program


def test_perf_median_function_time_and_deep_call_graph(benchmark, experiment, report_dir):
    comparison = benchmark.pedantic(
        compare_deep_call_graph, kwargs={"depth": 6, "fanout": 2}, rounds=1, iterations=1
    )

    # The deep call graph has >100 reachable functions and whole-program pays
    # for all of them while modular does not.
    assert comparison.call_graph_size >= 100
    assert comparison.slowdown > 3.0, (
        f"expected a clear whole-program slowdown, got {comparison.slowdown:.1f}x"
    )

    modular_median = experiment.run(MODULAR).median_function_time()
    whole_median = experiment.run(WHOLE_PROGRAM).median_function_time()
    assert modular_median > 0
    assert whole_median >= modular_median * 0.5  # whole-program is never much cheaper

    report = render_perf_report(list(experiment.runs.values()), comparison)
    write_report(report_dir, "perf_modular_vs_whole", report)


def test_perf_modular_analysis_of_single_function(benchmark):
    """Wall-clock of analysing one mid-sized function under Modular —
    the per-function unit the paper's 370µs median refers to."""
    source = deep_call_graph_program(depth=3, fanout=2)
    program = parse_program(source, local_crate="engine")
    engine = FlowEngine.from_program(program, config=MODULAR)

    def analyze_once():
        engine._results.clear()
        return engine.analyze_function("game_engine_render")

    result = benchmark(analyze_once)
    assert result.dependency_sizes()


def test_perf_whole_program_analysis_of_single_function(benchmark):
    """The same function analysed under Whole-program (recursing through the
    call tree) — directly comparable to the previous benchmark."""
    source = deep_call_graph_program(depth=3, fanout=2)
    program = parse_program(source, local_crate="engine")

    def analyze_once():
        engine = FlowEngine.from_program(program, config=WHOLE_PROGRAM)
        return engine.analyze_function("game_engine_render")

    result = benchmark(analyze_once)
    assert result.dependency_sizes()
