"""Section 5.1 performance notes: modular vs whole-program analysis cost.

The paper reports a median per-function analysis time of ~370µs and a 178×
slowdown of the naively-recursive Whole-program analysis on a function with
thousands of reachable callees (rg3d's ``GameEngine::render``).  This
benchmark reproduces both observations in shape: per-function medians for
each condition, and a super-linear slowdown of Whole-program on a deep
synthetic call graph.

It also tracks the dataflow substrate itself: the indexed bitset engine
must beat the legacy object engine ≥ 2× on the fig2 end-to-end analysis
workload over the corpus, and the Θ-join microbenchmark records the raw
primitive gap.  Both are written to ``benchmarks/reports/engine_speedup.json``
so CI archives the speedup trajectory per commit.
"""

from bench_utils import record_history, write_json_report, write_report

from repro.core.config import MODULAR, WHOLE_PROGRAM
from repro.core.engine import FlowEngine
from repro.eval.perf import (
    compare_deep_call_graph,
    compare_engines,
    deep_call_graph_program,
    render_engine_report,
    render_perf_report,
    theta_join_microbenchmark,
)
from repro.lang.parser import parse_program


def test_perf_median_function_time_and_deep_call_graph(benchmark, experiment, report_dir):
    comparison = benchmark.pedantic(
        compare_deep_call_graph, kwargs={"depth": 6, "fanout": 2}, rounds=1, iterations=1
    )

    # The deep call graph has >100 reachable functions and whole-program pays
    # for all of them while modular does not.
    assert comparison.call_graph_size >= 100
    assert comparison.slowdown > 3.0, (
        f"expected a clear whole-program slowdown, got {comparison.slowdown:.1f}x"
    )

    modular_median = experiment.run(MODULAR).median_function_time()
    whole_median = experiment.run(WHOLE_PROGRAM).median_function_time()
    assert modular_median > 0
    assert whole_median >= modular_median * 0.5  # whole-program is never much cheaper

    report = render_perf_report(list(experiment.runs.values()), comparison)
    write_report(report_dir, "perf_modular_vs_whole", report)


def test_perf_engine_speedup_and_theta_join(corpus, report_dir):
    """The PR-4 acceptance gate: bitset engine ≥ 2× the object engine on the
    fig2 end-to-end corpus analysis, reported as a JSON CI artifact."""
    comparisons = [
        compare_engines(corpus=corpus, config=config, rounds=5)
        for config in (MODULAR, WHOLE_PROGRAM)
    ]
    join_bench = theta_join_microbenchmark()

    report = render_engine_report(comparisons)
    report += (
        f"\n\n  theta-join microbenchmark: object "
        f"{join_bench.to_json_dict()['object_us_per_join']} µs/join -> bitset "
        f"{join_bench.to_json_dict()['bitset_us_per_join']} µs/join "
        f"(speedup {join_bench.speedup:.2f}x)"
    )
    write_report(report_dir, "engine_speedup", report)

    json_path = write_json_report(
        report_dir,
        "engine_speedup",
        {
            "fig2_workload": [cmp.to_json_dict() for cmp in comparisons],
            "theta_join": join_bench.to_json_dict(),
        },
    )
    print(f"[benchmark JSON written to {json_path}]")
    record_history(
        {
            "fig2.engine_speedup": comparisons[0].speedup,
            "fig2.object_seconds": comparisons[0].object_seconds,
            "fig2.bitset_seconds": comparisons[0].bitset_seconds,
            "theta_join.speedup": join_bench.speedup,
            "theta_join.object_us_per_join": join_bench.object_seconds
            / join_bench.joins
            * 1e6,
            "theta_join.bitset_us_per_join": join_bench.bitset_seconds
            / join_bench.joins
            * 1e6,
        }
    )

    modular = comparisons[0]
    assert modular.speedup >= 2.0, (
        f"indexed engine must be >= 2x the object engine on the fig2 "
        f"workload, got {modular.speedup:.2f}x"
    )
    # Whole-program shares the recursion machinery across engines, so its
    # ratio is structurally smaller and noisier; it must still be a clear win.
    assert comparisons[1].speedup >= 1.2
    assert join_bench.speedup >= 2.0


def test_perf_modular_analysis_of_single_function(benchmark):
    """Wall-clock of analysing one mid-sized function under Modular —
    the per-function unit the paper's 370µs median refers to."""
    source = deep_call_graph_program(depth=3, fanout=2)
    program = parse_program(source, local_crate="engine")
    engine = FlowEngine.from_program(program, config=MODULAR)

    def analyze_once():
        engine._results.clear()
        return engine.analyze_function("game_engine_render")

    result = benchmark(analyze_once)
    assert result.dependency_sizes()


def test_perf_whole_program_analysis_of_single_function(benchmark):
    """The same function analysed under Whole-program (recursing through the
    call tree) — directly comparable to the previous benchmark."""
    source = deep_call_graph_program(depth=3, fanout=2)
    program = parse_program(source, local_crate="engine")

    def analyze_once():
        engine = FlowEngine.from_program(program, config=WHOLE_PROGRAM)
        return engine.analyze_function("game_engine_render")

    result = benchmark(analyze_once)
    assert result.dependency_sizes()
