"""Observability overhead gate: instrumentation must be ~free when idle.

The tracing layer is designed around a cheap disabled path (one context-var
read per ``span()``, one module-attribute read per metric mutation).  This
benchmark enforces that design with the Figure-2-style workload — fresh
engines per round, per-function modular analysis over the corpus — comparing
the default state (metrics on, no active trace: what every untraced request
pays) against the observability kill switch (``set_enabled(False)``).

Gate: default-state time ≤ 1.05× the disabled time (best-of-rounds on both
sides), with a small absolute-slack fallback so sub-second workloads cannot
flap the ratio on scheduler noise.  The measured numbers are recorded in
``benchmarks/reports/obs_overhead.json``.
"""

from __future__ import annotations

import dataclasses
import time

import pytest
from bench_utils import write_json_report

from repro.core.config import MODULAR
from repro.core.engine import FlowEngine
from repro.dataflow.vecbitset import HAVE_NUMPY
from repro.eval.corpus import generate_corpus
from repro.lang.parser import parse_program
from repro.lang.typeck import check_program
from repro.obs import SamplingProfiler, is_enabled, set_enabled
from repro.obs import trace as trace_mod

ROUNDS = 6
MAX_RATIO = 1.05
ABS_SLACK_SECONDS = 0.10  # forgives sub-tenth-of-a-second jitter outright


def _workload(corpus, config=MODULAR) -> int:
    """Parse → typecheck → lower → per-function fixpoint, fresh state."""
    functions = 0
    for crate in corpus:
        program = parse_program(crate.source, local_crate=crate.name)
        checked = check_program(program)
        engine = FlowEngine(checked, config=config)
        for name in engine.local_function_names():
            engine.analyze_function(name)
            functions += 1
    return functions


def _best_of(corpus, rounds: int, config=MODULAR) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        _workload(corpus, config=config)
        best = min(best, time.perf_counter() - start)
    return best


def test_untraced_overhead_within_five_percent(report_dir):
    corpus = generate_corpus(scale=0.15)
    assert is_enabled(), "the suite must start in the default-on state"
    _workload(corpus)  # one untimed warm-up round for both states

    # Interleave states across rounds so drift (thermal, page cache) hits
    # both sides equally; best-of keeps the least-disturbed round per state.
    enabled_best = float("inf")
    disabled_best = float("inf")
    try:
        for _ in range(ROUNDS):
            set_enabled(True)
            enabled_best = min(enabled_best, _best_of(corpus, 1))
            set_enabled(False)
            disabled_best = min(disabled_best, _best_of(corpus, 1))
    finally:
        set_enabled(True)

    ratio = enabled_best / disabled_best if disabled_best > 0 else 1.0
    report = {
        "workload": "fig2-style modular analysis, fresh engines per round",
        "rounds": ROUNDS,
        "enabled_best_seconds": round(enabled_best, 4),
        "disabled_best_seconds": round(disabled_best, 4),
        "ratio": round(ratio, 4),
        "max_ratio": MAX_RATIO,
        "abs_slack_seconds": ABS_SLACK_SECONDS,
    }
    path = write_json_report(report_dir, "obs_overhead", report)
    print(f"[obs overhead: {ratio:.3f}x; report at {path}]")

    assert (
        ratio <= MAX_RATIO or enabled_best - disabled_best <= ABS_SLACK_SECONDS
    ), (
        f"idle observability overhead too high: enabled {enabled_best:.3f}s vs "
        f"disabled {disabled_best:.3f}s ({ratio:.3f}x > {MAX_RATIO}x)"
    )


def test_untraced_overhead_within_five_percent_vector_engine(report_dir):
    """The same ≤5% gate on the vectorized uint64 engine tier.

    The vector engine's hot loop is numpy array work, not per-place Python
    — proportionally, a fixed per-span/metric cost would weigh *more*
    against it, so the disabled-path economics are gated on this tier too.
    """
    if not HAVE_NUMPY:
        pytest.skip("vector engine requires numpy")
    config = dataclasses.replace(MODULAR, engine="vector")
    corpus = generate_corpus(scale=0.15)
    assert is_enabled(), "the suite must start in the default-on state"
    _workload(corpus, config=config)  # warm-up

    enabled_best = float("inf")
    disabled_best = float("inf")
    try:
        for _ in range(ROUNDS):
            set_enabled(True)
            enabled_best = min(enabled_best, _best_of(corpus, 1, config=config))
            set_enabled(False)
            disabled_best = min(disabled_best, _best_of(corpus, 1, config=config))
    finally:
        set_enabled(True)

    ratio = enabled_best / disabled_best if disabled_best > 0 else 1.0
    report = {
        "workload": "fig2-style modular analysis, vector engine",
        "rounds": ROUNDS,
        "enabled_best_seconds": round(enabled_best, 4),
        "disabled_best_seconds": round(disabled_best, 4),
        "ratio": round(ratio, 4),
        "max_ratio": MAX_RATIO,
        "abs_slack_seconds": ABS_SLACK_SECONDS,
    }
    path = write_json_report(report_dir, "obs_overhead_vector", report)
    print(f"[obs overhead (vector): {ratio:.3f}x; report at {path}]")

    assert (
        ratio <= MAX_RATIO or enabled_best - disabled_best <= ABS_SLACK_SECONDS
    ), (
        f"idle observability overhead too high on the vector engine: "
        f"enabled {enabled_best:.3f}s vs disabled {disabled_best:.3f}s "
        f"({ratio:.3f}x > {MAX_RATIO}x)"
    )


def test_profiler_attribution_on_fanned_out_run(report_dir):
    """Profiling a traced ``--workers 2`` batch must stay well-attributed.

    The coordinator's wall time during a fan-out is pool dispatch +
    envelope absorption, all inside the traced ``analyze``/``wave`` spans —
    so ≥90% of samples must land under the trace root, same bar as the
    serial attribution gate in tests/test_profile.py.  Tolerates the
    sandboxed degrade (mode != "parallel") by skipping: attribution over a
    serial fallback is the serial gate, already tested.
    """
    from repro.obs import remote as obs_remote
    from repro.obs import start_trace
    from repro.service.scheduler import (
        _init_worker,
        _render_batch,
        run_waves,
        schedule_waves,
    )

    corpus = generate_corpus(scale=0.3)
    crate = max(corpus, key=lambda c: len(c.source))
    program = parse_program(crate.source, local_crate=crate.name)
    checked = check_program(program)
    engine = FlowEngine(checked, config=MODULAR)
    names = engine.local_function_names()
    waves = schedule_waves(engine.call_graph, names)

    telemetry = obs_remote.FanoutTelemetry(max_workers=2)
    profiler = SamplingProfiler(hz=250.0).start()
    try:
        with start_trace("analyze") as trace:
            mode, _results, _error = run_waves(
                _render_batch,
                waves,
                max_workers=2,
                parallel=True,
                initializer=_init_worker,
                initargs=(crate.source, crate.name, {}),
                telemetry=telemetry,
            )
    finally:
        profile = profiler.stop()
    assert trace is not None
    if mode != "parallel":
        pytest.skip(f"process pool unavailable here (mode={mode})")

    attributed = profile.attributed_fraction(["analyze"])
    report = {
        "workload": f"--workers 2 fan-out over {len(names)} functions",
        "mode": mode,
        "samples": profile.total_samples,
        "attributed_fraction": round(attributed, 4),
        "grafted_spans": telemetry.grafted_spans,
    }
    path = write_json_report(report_dir, "obs_fanout_attribution", report)
    print(f"[fan-out attribution: {attributed:.3f}; report at {path}]")

    assert profile.total_samples >= 10, "sampler captured too few samples"
    assert attributed >= 0.90, (
        f"fan-out coordinator attribution too low: {attributed:.3f} < 0.90"
    )


def test_detached_profiler_overhead_within_five_percent(report_dir):
    """A profiler that has come and gone must leave no residue.

    Starting a :class:`SamplingProfiler` flips the span-stack publication
    switch on (every span push/pops a per-thread stack); stopping it must
    flip the switch back off so subsequent workloads pay the original
    zero-publication path.  Interleaved best-of rounds as above.
    """
    corpus = generate_corpus(scale=0.15)
    _workload(corpus)  # warm-up

    # Exercise a full attach/detach cycle, then verify the switch is off.
    profiler = SamplingProfiler(hz=50.0).start()
    _workload(corpus)
    profiler.stop()
    assert profiler.profile.counts, "profiler attached but captured nothing"
    assert not trace_mod._PUBLISH_STACKS, "profiler detach left publication on"

    never_best = float("inf")
    after_best = float("inf")
    for _ in range(ROUNDS):
        never_best = min(never_best, _best_of(corpus, 1))
        after_best = min(after_best, _best_of(corpus, 1))

    ratio = after_best / never_best if never_best > 0 else 1.0
    report = {
        "workload": "fig2-style modular analysis after profiler detach",
        "rounds": ROUNDS,
        "never_profiled_best_seconds": round(never_best, 4),
        "after_detach_best_seconds": round(after_best, 4),
        "ratio": round(ratio, 4),
        "max_ratio": MAX_RATIO,
        "abs_slack_seconds": ABS_SLACK_SECONDS,
    }
    path = write_json_report(report_dir, "profiler_overhead", report)
    print(f"[profiler-detached overhead: {ratio:.3f}x; report at {path}]")

    assert (
        ratio <= MAX_RATIO or after_best - never_best <= ABS_SLACK_SECONDS
    ), (
        f"detached-profiler overhead too high: after {after_best:.3f}s vs "
        f"never {never_best:.3f}s ({ratio:.3f}x > {MAX_RATIO}x)"
    )
