"""Observability overhead gate: instrumentation must be ~free when idle.

The tracing layer is designed around a cheap disabled path (one context-var
read per ``span()``, one module-attribute read per metric mutation).  This
benchmark enforces that design with the Figure-2-style workload — fresh
engines per round, per-function modular analysis over the corpus — comparing
the default state (metrics on, no active trace: what every untraced request
pays) against the observability kill switch (``set_enabled(False)``).

Gate: default-state time ≤ 1.05× the disabled time (best-of-rounds on both
sides), with a small absolute-slack fallback so sub-second workloads cannot
flap the ratio on scheduler noise.  The measured numbers are recorded in
``benchmarks/reports/obs_overhead.json``.
"""

from __future__ import annotations

import time

from bench_utils import write_json_report

from repro.core.config import MODULAR
from repro.core.engine import FlowEngine
from repro.eval.corpus import generate_corpus
from repro.lang.parser import parse_program
from repro.lang.typeck import check_program
from repro.obs import is_enabled, set_enabled

ROUNDS = 6
MAX_RATIO = 1.05
ABS_SLACK_SECONDS = 0.10  # forgives sub-tenth-of-a-second jitter outright


def _workload(corpus) -> int:
    """Parse → typecheck → lower → per-function fixpoint, fresh state."""
    functions = 0
    for crate in corpus:
        program = parse_program(crate.source, local_crate=crate.name)
        checked = check_program(program)
        engine = FlowEngine(checked, config=MODULAR)
        for name in engine.local_function_names():
            engine.analyze_function(name)
            functions += 1
    return functions


def _best_of(corpus, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        _workload(corpus)
        best = min(best, time.perf_counter() - start)
    return best


def test_untraced_overhead_within_five_percent(report_dir):
    corpus = generate_corpus(scale=0.15)
    assert is_enabled(), "the suite must start in the default-on state"
    _workload(corpus)  # one untimed warm-up round for both states

    # Interleave states across rounds so drift (thermal, page cache) hits
    # both sides equally; best-of keeps the least-disturbed round per state.
    enabled_best = float("inf")
    disabled_best = float("inf")
    try:
        for _ in range(ROUNDS):
            set_enabled(True)
            enabled_best = min(enabled_best, _best_of(corpus, 1))
            set_enabled(False)
            disabled_best = min(disabled_best, _best_of(corpus, 1))
    finally:
        set_enabled(True)

    ratio = enabled_best / disabled_best if disabled_best > 0 else 1.0
    report = {
        "workload": "fig2-style modular analysis, fresh engines per round",
        "rounds": ROUNDS,
        "enabled_best_seconds": round(enabled_best, 4),
        "disabled_best_seconds": round(disabled_best, 4),
        "ratio": round(ratio, 4),
        "max_ratio": MAX_RATIO,
        "abs_slack_seconds": ABS_SLACK_SECONDS,
    }
    path = write_json_report(report_dir, "obs_overhead", report)
    print(f"[obs overhead: {ratio:.3f}x; report at {path}]")

    assert (
        ratio <= MAX_RATIO or enabled_best - disabled_best <= ABS_SLACK_SECONDS
    ), (
        f"idle observability overhead too high: enabled {enabled_best:.3f}s vs "
        f"disabled {disabled_best:.3f}s ({ratio:.3f}x > {MAX_RATIO}x)"
    )
