"""Concurrent server benchmark: client swarms and restart-warm persistence.

Two claims from the service roadmap are asserted here against a *real*
socket server (thread pool, shared RW-locked sessions):

1. **Concurrency never changes answers.**  The same deterministic query plan
   is walked by swarms of 1, 4 and 16 clients; every response's
   canonicalised result must be digest-identical to the single-client
   baseline at every plan position.
2. **Persistence makes restarts warm.**  A server booted on a ``persist-dir``
   that a previous server populated must answer its first corpus query as a
   cache hit — zero re-analysis of unchanged functions.

The measured throughput / p50/p95/p99 latency table is written to
``benchmarks/reports/server_load.txt`` and, machine-readably, to
``benchmarks/reports/server_load.json`` (archived as a CI artifact).
"""

from __future__ import annotations

import json
import socket

from bench_utils import record_history, write_json_report, write_report

from repro.eval.load import (
    render_load_report,
    run_load_study,
    start_corpus_server,
)


def _request(rfile, wfile, payload: dict) -> dict:
    wfile.write(json.dumps(payload, sort_keys=True) + "\n")
    wfile.flush()
    return json.loads(rfile.readline())


def test_server_load_swarm(corpus, report_dir):
    report = run_load_study(corpus=corpus, client_counts=(1, 4, 16), workers=16)
    write_report(report_dir, "server_load", render_load_report(report))

    json_path = write_json_report(report_dir, "server_load", report.to_json_dict())
    print(f"[benchmark JSON written to {json_path}]")
    top = report.runs[-1]
    record_history(
        {
            "load.throughput_rps": top.throughput_rps,
            "load.p50_ms": top.latency_ms(0.50),
            "load.p99_ms": top.latency_ms(0.99),
            "load.errors": float(sum(run.errors for run in report.runs)),
        }
    )

    assert report.plan_size > 0
    assert [run.clients for run in report.runs] == [1, 4, 16]
    for run in report.runs:
        assert run.errors == 0, f"{run.clients}-client swarm saw errors"
        assert run.requests == report.plan_size * run.clients
        # Within one swarm every client saw the same answers...
        assert run.consistent, f"{run.clients}-client swarm disagreed internally"
    # ...and across swarm sizes the answers match the single-client baseline.
    assert report.cross_run_consistent, "16-client results differ from single-client"
    # Server-side telemetry reconciles with the clients: the server counted
    # exactly the requests the swarm sent, method for method.
    assert report.telemetry_consistent, [run.server for run in report.runs]
    for run in report.runs:
        assert run.server["request_ms"], "no server-side request latency recorded"


def test_server_restart_answers_first_query_warm(corpus, tmp_path):
    persist_dir = str(tmp_path / "persist")
    crate = corpus[0]

    # First life: open + fully analyse the crate, then drain and persist.
    first = start_corpus_server([crate], workers=4, persist_dir=persist_dir, warm=True)
    try:
        functions = first.registry.handle(crate.name).session.function_names()
        assert functions
    finally:
        saved = first.shutdown()
    assert any(entry["workspace"] == crate.name for entry in saved)

    # Second life: a fresh server over the same persist dir. Its first
    # workspace-wide analyze must be all cache hits — nothing re-analysed.
    second = start_corpus_server([], workers=4, persist_dir=persist_dir)
    try:
        sock = socket.create_connection(second.address)
        rfile = sock.makefile("r", encoding="utf-8", newline="\n")
        wfile = sock.makefile("w", encoding="utf-8", newline="\n")
        hello = json.loads(rfile.readline())
        assert hello["hello"] == "repro-flowistry" and hello["version"]

        switched = _request(
            rfile, wfile,
            {"id": 1, "method": "workspace", "params": {"name": crate.name}},
        )
        assert switched["ok"] and switched["result"]["units"] == [crate.name]

        response = _request(rfile, wfile, {"id": 2, "method": "analyze", "params": {}})
        assert response["ok"]
        result = response["result"]
        assert result["cache_misses"] == 0, "restarted server re-analysed functions"
        assert result["cache_hits"] == len(result["functions"]) == len(functions)
        assert all(
            entry["cache"] == "hit" for entry in result["functions"].values()
        )
        assert result["stats"]["disk_hits"] > 0  # served from the persisted tier
        sock.close()
    finally:
        second.shutdown()
