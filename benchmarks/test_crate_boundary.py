"""Section 5.4.2: how often do flows cross a crate boundary?

The paper finds that 96% of analysed variables have flows reaching at least
one call across a crate boundary (where even Whole-program must fall back to
the modular rule), and that the Modular-vs-Whole-program differences are far
more common among those variables (6.6% vs 0.6%).  This benchmark reproduces
the study over the synthetic corpus, where dependency-crate externs play the
role of pre-compiled crates.
"""

from bench_utils import write_report

from repro.eval.experiments import crate_boundary_study
from repro.eval.report import render_boundary_study


def test_crate_boundary_study(benchmark, experiment, report_dir):
    study = benchmark.pedantic(crate_boundary_study, args=(experiment,), rounds=1, iterations=1)

    assert study.total_variables > 0
    # A substantial share of flows reach the dependency crate.
    assert study.fraction_boundary > 0.15
    # Modular-vs-Whole-program differences are concentrated on (or at least
    # not absent from) boundary-crossing variables, as in the paper.
    assert study.nonzero_rate_with_boundary >= study.nonzero_rate_without_boundary * 0.9
    assert study.nonzero_with_boundary + study.nonzero_without_boundary > 0

    write_report(report_dir, "crate_boundary_study", render_boundary_study(experiment))
