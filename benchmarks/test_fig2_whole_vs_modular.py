"""Figure 2: Whole-program vs Modular dependency-set size distribution.

Paper headline numbers: the two conditions agree on 94% of variables, and
among the disagreements the median increase is 7%.  The reproduction checks
the *shape*: the overwhelming majority of variables agree, Whole-program is
never less precise, and the non-zero differences form a right-tailed
distribution.  Exact percentages differ because the corpus functions are ~10×
smaller than the paper's crates; EXPERIMENTS.md records the measured values.
"""

from bench_utils import write_report

from repro.core.config import MODULAR, WHOLE_PROGRAM
from repro.eval.report import render_figure2
from repro.eval.stats import histogram, summarize_differences


def test_fig2_distribution_of_differences(benchmark, experiment, report_dir):
    def compute():
        diffs = experiment.comparison(WHOLE_PROGRAM, MODULAR)
        return diffs, summarize_differences(diffs, "Modular vs Whole-program")

    diffs, summary = benchmark.pedantic(compute, rounds=1, iterations=1)

    # Shape checks mirroring the paper's claims.
    assert summary.total > 500, "corpus too small to be meaningful"
    assert summary.fraction_zero >= 0.80, (
        f"expected the vast majority of variables to agree, got "
        f"{100 * summary.fraction_zero:.1f}%"
    )
    assert all(value >= -1e-9 for value in diffs.values()), (
        "Whole-program must never be less precise than Modular"
    )
    assert summary.median_nonzero_percent > 0

    # The histogram is dominated by the zero bin (Figure 2 left panel).
    bins = histogram(diffs, num_bins=14)
    zero_count = bins[0][1]
    assert zero_count == summary.num_zero
    assert zero_count > max(count for _label, count in bins[1:])

    write_report(report_dir, "figure2_whole_vs_modular", render_figure2(experiment))


def test_fig2_modular_analysis_throughput(benchmark, experiment):
    """Median per-function analysis time under the Modular condition.

    The paper reports a median of ~370µs per function for its optimised Rust
    implementation; the pure-Python reproduction is expected to be slower but
    of the same order of magnitude per MIR instruction.
    """
    run = experiment.run(MODULAR)

    def median_time():
        return run.median_function_time()

    median = benchmark(median_time)
    assert median > 0
