"""Shared fixtures for the benchmark/reproduction harness.

Every benchmark regenerates one of the paper's tables or figures over the
synthetic corpus and writes the rendered artefact to
``benchmarks/reports/<name>.txt`` so the reproduction can be inspected after
a run (EXPERIMENTS.md summarises paper-vs-measured from these files).

The corpus scale can be adjusted with the ``REPRO_BENCH_SCALE`` environment
variable (default 0.35 ≈ a few thousand analysed variables, which keeps the
full benchmark suite in the minutes range on a laptop).  The reusable
helpers (``write_report``, ``bench_scale``) live in ``bench_utils.py``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from bench_utils import REPORT_DIR, bench_scale

from repro.eval.corpus import generate_corpus
from repro.eval.experiments import primary_experiment_conditions, run_conditions


@pytest.fixture(scope="session")
def corpus():
    """The generated 10-crate corpus (scaled for benchmarking)."""
    return generate_corpus(scale=bench_scale())


@pytest.fixture(scope="session")
def experiment(corpus):
    """Dependency-set sizes for every variable under the primary conditions."""
    return run_conditions(corpus, primary_experiment_conditions())


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORT_DIR.mkdir(parents=True, exist_ok=True)
    return REPORT_DIR
