"""Shared fixtures for the benchmark/reproduction harness.

Every benchmark regenerates one of the paper's tables or figures over the
synthetic corpus and writes the rendered artefact to
``benchmarks/reports/<name>.txt`` so the reproduction can be inspected after
a run (EXPERIMENTS.md summarises paper-vs-measured from these files).

The corpus scale can be adjusted with the ``REPRO_BENCH_SCALE`` environment
variable (default 0.35 ≈ a few thousand analysed variables, which keeps the
full benchmark suite in the minutes range on a laptop).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.corpus import generate_corpus
from repro.eval.experiments import primary_experiment_conditions, run_conditions


REPORT_DIR = Path(__file__).parent / "reports"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))


@pytest.fixture(scope="session")
def corpus():
    """The generated 10-crate corpus (scaled for benchmarking)."""
    return generate_corpus(scale=bench_scale())


@pytest.fixture(scope="session")
def experiment(corpus):
    """Dependency-set sizes for every variable under the primary conditions."""
    return run_conditions(corpus, primary_experiment_conditions())


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORT_DIR.mkdir(parents=True, exist_ok=True)
    return REPORT_DIR


def write_report(report_dir: Path, name: str, text: str) -> Path:
    """Persist a rendered table/figure and echo it to stdout."""
    path = report_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[report written to {path}]")
    return path
