"""Table 1: dataset statistics of the (substituted) evaluation corpus.

The paper reports LOC, number of variables, number of functions, and average
MIR instructions per function for each of the ten crates.  This benchmark
regenerates the same rows over the synthetic corpus and measures the cost of
the front-end pipeline (parse + type check + lower) that produces them.
"""

from bench_utils import write_report

from repro.eval.corpus import PAPER_CRATE_SPECS, generate_crate
from repro.eval.metrics import collect_metrics, dataset_table
from repro.eval.report import render_table1


def test_table1_dataset_statistics(benchmark, corpus, report_dir):
    metrics = benchmark.pedantic(collect_metrics, args=(corpus,), rounds=1, iterations=1)

    # Structural checks: ten crates, ordered by variable count, totals add up.
    assert len(metrics.crates) == len(corpus)
    ordered = metrics.sorted_by_variables()
    assert [c.num_variables for c in ordered] == sorted(c.num_variables for c in ordered)
    totals = metrics.totals()
    assert totals["funcs"] == sum(c.num_functions for c in metrics.crates)
    assert totals["vars"] == sum(c.num_variables for c in metrics.crates)

    # Every crate averages multiple MIR instructions per function, like the
    # paper's 16.6–115.4 range (absolute values differ at reduced scale).
    for crate_metrics in metrics.crates:
        assert crate_metrics.avg_instrs_per_fn >= 5.0

    write_report(report_dir, "table1_dataset", render_table1(corpus))


def test_table1_single_crate_frontend_cost(benchmark):
    """Cost of generating + checking + lowering one mid-sized crate."""
    spec = PAPER_CRATE_SPECS[0].scaled(0.35)

    def pipeline():
        generated = generate_crate(spec)
        return dataset_table([generated])

    rows = benchmark(pipeline)
    assert rows[0]["crate"] == spec.name
