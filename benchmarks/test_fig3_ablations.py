"""Figure 3: precision loss of the Mut-blind and Ref-blind ablations.

Paper headline numbers: Mut-blind changes 39% of variables (median +50%) and
Ref-blind changes 17% (median +56%), both far more than the 6% / 7% gap
between Modular and Whole-program.  The reproduced shape claims checked here:

* each ablation changes strictly more variables than Modular loses against
  Whole-program (ownership information is what precision comes from), and
* neither ablation is ever *more* precise than Modular on any variable.
"""

from bench_utils import write_report

from repro.core.config import MODULAR, MUT_BLIND, REF_BLIND, WHOLE_PROGRAM
from repro.eval.report import render_figure3
from repro.eval.stats import summarize_differences


def test_fig3_ablation_distributions(benchmark, experiment, report_dir):
    def compute():
        return {
            "wp_vs_modular": summarize_differences(
                experiment.comparison(WHOLE_PROGRAM, MODULAR)
            ),
            "mut_blind": summarize_differences(experiment.comparison(MODULAR, MUT_BLIND)),
            "ref_blind": summarize_differences(experiment.comparison(MODULAR, REF_BLIND)),
        }

    summaries = benchmark.pedantic(compute, rounds=1, iterations=1)

    baseline_gap = summaries["wp_vs_modular"].fraction_nonzero
    assert summaries["mut_blind"].fraction_nonzero > baseline_gap
    assert summaries["ref_blind"].fraction_nonzero > baseline_gap
    assert summaries["mut_blind"].median_nonzero_percent > 0
    assert summaries["ref_blind"].median_nonzero_percent > 0

    # Monotonicity: the ablations only ever add dependencies.
    for condition in (MUT_BLIND, REF_BLIND):
        diffs = experiment.comparison(MODULAR, condition)
        assert all(value >= -1e-9 for value in diffs.values())

    write_report(report_dir, "figure3_ablations", render_figure3(experiment))


def test_fig3_mut_blind_analysis_cost(benchmark, experiment):
    """The ablations should not be dramatically slower than Modular —
    precision, not performance, is what they trade away."""
    modular = experiment.run(MODULAR)
    mut_blind = experiment.run(MUT_BLIND)

    def ratio():
        return mut_blind.total_seconds / max(modular.total_seconds, 1e-9)

    value = benchmark(ratio)
    assert value < 25
