"""Service benchmark: cold vs warm corpus analysis through the summary cache.

The incremental service's pitch is that repeated analysis of unchanged code
is a cache lookup.  This benchmark measures a full cold pass over the
generated corpus (fresh sessions, empty store) against a warm pass (fresh
sessions, shared store) under both the Modular and Whole-program conditions,
and records the speedup so the bench trajectory starts populating.

The warm pass still re-parses, type checks, and lowers every crate — the
reported speedup is a *lower bound* on what a resident session achieves.
"""

from __future__ import annotations

from bench_utils import write_report

from repro.core.config import MODULAR, WHOLE_PROGRAM
from repro.eval.perf import compare_warm_cold, render_warm_cold_report


def test_service_cache_speedup(corpus, report_dir):
    comparisons = [
        compare_warm_cold(corpus=corpus, config=config)
        for config in (MODULAR, WHOLE_PROGRAM)
    ]
    write_report(report_dir, "service_cache", render_warm_cold_report(comparisons))

    for cmp in comparisons:
        # Every function of the warm pass must be served from the store...
        assert cmp.cold_hits == 0
        assert cmp.warm_hits == cmp.functions
        # ...and skipping analysis must be measurably faster than doing it.
        # The residual warm cost is parse+check+lower; 1.1x is far below the
        # observed ~2.3x but keeps the assertion robust on loaded CI boxes.
        assert cmp.speedup > 1.1, (
            f"{cmp.condition}: warm pass not faster than cold "
            f"({cmp.cold_seconds:.3f}s -> {cmp.warm_seconds:.3f}s)"
        )
