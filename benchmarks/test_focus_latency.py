"""Focus engine benchmark: cold vs warm cursor-query latency.

The focus engine's contract is interactive: a cursor query against an
unchanged function must be a cache lookup, not a dataflow pass.  This
benchmark drives every named variable of the generated corpus through
``AnalysisSession.focus`` twice — cold (empty store, tables computed) and
warm (fresh sessions over the same store, tables deserialised) — and records
p50/p95 per-query latency for both passes.

Besides the human-readable report, the raw numbers are written to
``benchmarks/reports/focus_latency.json`` so CI can archive the benchmark
as a machine-readable artifact and trend it across commits.
"""

from __future__ import annotations

from bench_utils import record_history, write_json_report, write_report

from repro.core.config import MODULAR, WHOLE_PROGRAM
from repro.eval.perf import measure_focus_latency, render_focus_latency_report
from repro.eval.stats import latency_summary_ms


def test_focus_latency_cold_vs_warm(corpus, report_dir):
    latencies = [
        measure_focus_latency(corpus=corpus, config=config)
        for config in (MODULAR, WHOLE_PROGRAM)
    ]
    write_report(report_dir, "focus_latency", render_focus_latency_report(latencies))

    json_path = write_json_report(
        report_dir,
        "focus_latency",
        {"conditions": [lat.to_json_dict() for lat in latencies]},
    )
    print(f"[benchmark JSON written to {json_path}]")
    modular = latencies[0]
    cold = latency_summary_ms(modular.cold_seconds, fractions=(0.50,))
    warm = latency_summary_ms(modular.warm_seconds, fractions=(0.50,))
    record_history(
        {
            "focus.warm_speedup": modular.speedup,
            "focus.cold_p50_ms": cold["p50"],
            "focus.warm_p50_ms": warm["p50"],
        }
    )

    for lat in latencies:
        assert lat.queries > 0
        # Warm queries skip the dataflow pass entirely; aggregate totals are
        # robust to scheduler noise where single-query percentiles are not.
        assert lat.warm_total < lat.cold_total, (
            f"{lat.condition}: warm focus queries not faster than cold "
            f"({lat.cold_total:.3f}s -> {lat.warm_total:.3f}s)"
        )
