"""Shared helpers for the benchmark/reproduction harness.

Kept out of ``conftest.py`` so benchmark modules can import them explicitly
(``from bench_utils import write_report``) without relying on the ambiguous
``import conftest`` resolution that broke test collection when both
``tests/`` and ``benchmarks/`` were on ``sys.path``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path


REPORT_DIR = Path(__file__).parent / "reports"
HISTORY_DIR = REPORT_DIR / "history"

# Module-load wall-clock origin: write_json_report stamps how long after
# import the report landed, a cheap monotonic "duration" that needs no
# cooperation from the benchmark code.
_IMPORTED_AT = time.perf_counter()


def bench_scale() -> float:
    """Corpus scale factor, adjustable via ``REPRO_BENCH_SCALE`` (default 0.35)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))


def latency_row(samples_seconds, fractions=(0.50, 0.95, 0.99)) -> dict:
    """Percentile row for a benchmark table; delegates to the one shared
    implementation in :func:`repro.eval.stats.latency_summary_ms`."""
    from repro.eval.stats import latency_summary_ms

    return latency_summary_ms(samples_seconds, fractions=fractions)


def write_report(report_dir: Path, name: str, text: str) -> Path:
    """Persist a rendered table/figure and echo it to stdout.

    Creates the report directory idempotently so callers can write without
    going through the ``report_dir`` fixture (CLI runs, fuzz campaigns).
    """
    report_dir.mkdir(parents=True, exist_ok=True)
    path = report_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[report written to {path}]")
    return path


def write_json_report(report_dir: Path, name: str, data) -> Path:
    """Persist a machine-readable report next to its rendered twin.

    Dict payloads are stamped with a ``run_meta`` block (git sha, python
    version, hostname, monotonic duration since harness import) so every
    report carries the provenance the history ledger records — and the
    backfill adapter (``repro bench backfill``) can ingest them.
    """
    import json

    from repro.obs.history import run_metadata

    if isinstance(data, dict) and "run_meta" not in data:
        data = dict(
            data,
            run_meta=run_metadata(
                duration_seconds=time.perf_counter() - _IMPORTED_AT
            ),
        )
    report_dir.mkdir(parents=True, exist_ok=True)
    path = report_dir / f"{name}.json"
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def record_history(metrics: dict, history_dir: Path = HISTORY_DIR) -> str:
    """Append one benchmark run's flat ``metric -> value`` dict to the ledger.

    The bridge between the pytest-driven benchmark files and the `repro
    bench` history: each benchmark calls this once with its headline
    numbers, so CI runs and local runs accumulate in the same trajectory.
    Returns the run id.
    """
    from repro.eval.bench import record_run
    from repro.obs.history import HistoryLedger

    run_id, _count = record_run(
        HistoryLedger(history_dir),
        {name: float(value) for name, value in metrics.items()},
        timestamp=time.time(),
        config={"source": "benchmarks", "scale": bench_scale()},
    )
    return run_id
