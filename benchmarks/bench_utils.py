"""Shared helpers for the benchmark/reproduction harness.

Kept out of ``conftest.py`` so benchmark modules can import them explicitly
(``from bench_utils import write_report``) without relying on the ambiguous
``import conftest`` resolution that broke test collection when both
``tests/`` and ``benchmarks/`` were on ``sys.path``.
"""

from __future__ import annotations

import os
from pathlib import Path


REPORT_DIR = Path(__file__).parent / "reports"


def bench_scale() -> float:
    """Corpus scale factor, adjustable via ``REPRO_BENCH_SCALE`` (default 0.35)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))


def latency_row(samples_seconds, fractions=(0.50, 0.95, 0.99)) -> dict:
    """Percentile row for a benchmark table; delegates to the one shared
    implementation in :func:`repro.eval.stats.latency_summary_ms`."""
    from repro.eval.stats import latency_summary_ms

    return latency_summary_ms(samples_seconds, fractions=fractions)


def write_report(report_dir: Path, name: str, text: str) -> Path:
    """Persist a rendered table/figure and echo it to stdout.

    Creates the report directory idempotently so callers can write without
    going through the ``report_dir`` fixture (CLI runs, fuzz campaigns).
    """
    report_dir.mkdir(parents=True, exist_ok=True)
    path = report_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[report written to {path}]")
    return path


def write_json_report(report_dir: Path, name: str, data) -> Path:
    """Persist a machine-readable report next to its rendered twin."""
    import json

    report_dir.mkdir(parents=True, exist_ok=True)
    path = report_dir / f"{name}.json"
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
