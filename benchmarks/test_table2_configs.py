"""Table 2: per-crate build/generation configuration.

The paper's Table 2 pins each crate to a git commit and feature flags so the
evaluation is reproducible.  The substituted analogue is the generator
configuration (seed + function mix) of each synthetic crate; this benchmark
renders that table and checks the generation is deterministic (same seed ⇒
byte-identical source), which is the property Table 2 exists to guarantee.
"""

from bench_utils import write_report

from repro.eval.corpus import PAPER_CRATE_SPECS, generate_crate_source
from repro.eval.report import render_table2


def test_table2_generation_configuration(benchmark, corpus, report_dir):
    text = benchmark.pedantic(render_table2, args=(corpus,), rounds=1, iterations=1)
    for spec in PAPER_CRATE_SPECS:
        assert spec.name in text
    write_report(report_dir, "table2_configs", text)


def test_table2_determinism_of_pinned_configuration(benchmark):
    spec = PAPER_CRATE_SPECS[3].scaled(0.2)
    first = generate_crate_source(spec)

    def regenerate():
        return generate_crate_source(spec)

    second = benchmark(regenerate)
    assert first == second
