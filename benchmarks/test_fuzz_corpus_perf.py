"""The fig2 engine comparison over the fuzz-generated corpus.

The template corpus (``repro.eval.corpus``) mirrors the paper's ten crates;
the fuzz corpus (``repro.eval.corpus.generate_fuzz_corpus``) reaches program
shapes the templates never produce — generated call graphs, borrow/deref
chains, dense branching — at whatever scale the seed range allows.  This
benchmark runs the same measurement protocol as the engine-speedup gate on
that workload and archives ``fuzz_engine_speedup.json`` as a CI artifact, so
the substrate's behaviour on adversarial program shapes is trended per
commit alongside the template numbers.

``compare_engines`` asserts bitset/object dependency-size equality while it
measures, so this is also a differential-engine pass over the fuzz corpus.
"""

import os

from bench_utils import write_json_report, write_report

from repro.core.config import MODULAR, WHOLE_PROGRAM
from repro.dataflow.vecbitset import HAVE_NUMPY
from repro.eval.perf import compare_engines_on_fuzz_corpus, render_engine_report


def _fuzz_bench_count() -> int:
    return int(os.environ.get("REPRO_FUZZ_BENCH_COUNT", "6"))


def _engines() -> tuple:
    return ("object", "bitset", "vector") if HAVE_NUMPY else ("object", "bitset")


def test_fuzz_corpus_engine_comparison(report_dir):
    comparisons = [
        compare_engines_on_fuzz_corpus(
            count=_fuzz_bench_count(), seed=0, size="medium", config=config,
            rounds=2, engines=_engines(),
        )
        for config in (MODULAR, WHOLE_PROGRAM)
    ]

    for comparison in comparisons:
        assert comparison.functions > 0
        # The indexed substrate must not regress on generated shapes; the
        # hard ≥2× gate lives with the template corpus, this one guards
        # against the fuzz workload finding a pathological slowdown.
        assert comparison.speedup >= 1.0, (
            f"bitset engine slower than object on the fuzz corpus "
            f"({comparison.condition}: {comparison.speedup:.2f}x)"
        )
        if comparison.vector_speedup is not None:
            # Medium fuzz bodies straddle the vectorization crossover:
            # require no pathological slowdown, not the large-body win.
            assert comparison.vector_speedup >= 1.0, (
                f"vector engine slower than object on the fuzz corpus "
                f"({comparison.condition}: {comparison.vector_speedup:.2f}x)"
            )

    report = "Fuzz-generated corpus (generate_fuzz_corpus):\n\n"
    report += render_engine_report(comparisons)
    write_report(report_dir, "fuzz_engine_speedup", report)
    write_json_report(
        report_dir,
        "fuzz_engine_speedup",
        {"fuzz_corpus": [cmp.to_json_dict() for cmp in comparisons]},
    )


def test_fuzz_corpus_large_bodies_vector_win(report_dir):
    """On large fuzz bodies (multi-word rows) the vector tier must beat the
    object engine clearly — the workload it exists for."""
    if not HAVE_NUMPY:
        import pytest

        pytest.skip("vector engine requires numpy")
    comparison = compare_engines_on_fuzz_corpus(
        count=3, seed=7, size="large", rounds=2, engines=_engines()
    )
    assert comparison.vector_speedup >= 1.5, (
        f"vector engine must be >= 1.5x the object engine on large fuzz "
        f"bodies, got {comparison.vector_speedup:.2f}x"
    )
    write_json_report(
        report_dir,
        "fuzz_vector_large",
        {"fuzz_large": comparison.to_json_dict()},
    )
