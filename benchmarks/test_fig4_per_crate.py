"""Figure 4: per-crate breakdown of the Mut-blind vs Modular differences.

The paper shows that non-zero differences appear in every crate, scale with
crate size (R² ≈ 0.79 against the number of analysed variables), and vary
with code style (hyper's immutable-reference-heavy API shows more differences
than image at similar size).  This benchmark reproduces the per-crate counts
and the correlation.
"""

from bench_utils import write_report

from repro.core.config import MODULAR, MUT_BLIND
from repro.eval.report import render_figure4
from repro.eval.stats import (
    crate_correlation,
    per_crate_nonzero_counts,
    per_crate_variable_counts,
)


def test_fig4_per_crate_breakdown(benchmark, experiment, report_dir):
    def compute():
        diffs = experiment.comparison(MODULAR, MUT_BLIND)
        return (
            per_crate_nonzero_counts(diffs),
            per_crate_variable_counts(diffs.keys()),
            crate_correlation(diffs),
        )

    nonzero, totals, r_squared = benchmark.pedantic(compute, rounds=1, iterations=1)

    # Every crate is represented and most crates show at least one difference.
    assert len(totals) == len(experiment.corpus)
    crates_with_differences = [crate for crate, count in nonzero.items() if count > 0]
    assert len(crates_with_differences) >= len(totals) - 2

    # Differences scale (positively) with crate size.
    assert 0.0 <= r_squared <= 1.0
    largest = max(totals, key=totals.get)
    smallest = min(totals, key=totals.get)
    assert nonzero.get(largest, 0) >= nonzero.get(smallest, 0)

    write_report(report_dir, "figure4_per_crate", render_figure4(experiment))


def test_fig4_code_style_effect_of_immutable_apis(experiment):
    """hyper-style crates (high shared-reference usage) should show a higher
    *rate* of Mut-blind differences than the corpus median, mirroring the
    paper's qualitative observation in Section 5.4.1."""
    diffs = experiment.comparison(MODULAR, MUT_BLIND)
    nonzero = per_crate_nonzero_counts(diffs)
    totals = per_crate_variable_counts(diffs.keys())
    rates = {crate: nonzero.get(crate, 0) / max(totals[crate], 1) for crate in totals}
    if "hyper" not in rates:
        return  # scaled-down corpora may rename; skip gracefully
    median_rate = sorted(rates.values())[len(rates) // 2]
    assert rates["hyper"] >= median_rate * 0.8
