"""Figure 5: the two applications built on the analysis.

Figure 5a is a program slicer, Figure 5b an IFC checker.  There is no table
of numbers to match; the reproduction checks the behaviours the figure
depicts (write_all-style mutating calls are in the slice, metadata-style
read-only calls are not; the password-guarded print is flagged as an implicit
flow) and measures the cost of running each tool, since "fast enough to run
interactively in an IDE" is the implicit claim of the figure.
"""

from bench_utils import write_report

from repro.apps.ifc import IfcChecker, IfcPolicy
from repro.apps.slicer import ProgramSlicer


SLICER_SOURCE = """
struct File;
struct Timer;

extern fn open_file(path: u32) -> File;
extern fn write_all(f: &mut File, data: u32);
extern fn metadata(f: &File) -> u32;
extern fn timer_start() -> Timer;
extern fn timer_elapsed(t: &Timer) -> u32;
extern fn log_line(x: u32);

fn save_report(path: u32, data: u32, verbose: bool) -> u32 {
    let t = timer_start();
    let mut f = open_file(path);
    write_all(&mut f, data);
    let size = metadata(&f);
    let elapsed = timer_elapsed(&t);
    if verbose {
        log_line(elapsed);
    }
    size
}
"""

IFC_SOURCE = """
struct Password { value: u32 }

extern fn insecure_print(x: u32);
extern fn hash(x: u32) -> u32;

fn check_login(p: &Password, guess: u32) -> bool {
    let ok = guess == p.value;
    if ok {
        insecure_print(1);
    }
    ok
}

fn show_banner(version: u32) {
    insecure_print(version);
}
"""


def test_fig5a_program_slicer(benchmark, report_dir):
    slicer = ProgramSlicer(SLICER_SOURCE)

    def slice_f():
        return slicer.backward_slice("save_report", "f")

    result = benchmark(slice_f)

    lines = SLICER_SOURCE.splitlines()

    def line_of(text):
        return next(i for i, line in enumerate(lines, start=1) if text in line)

    # write_all mutates the file so it is in the slice of `f`; metadata only
    # reads it and timer_elapsed never touches it (Figure 5a's example).
    assert result.contains_line(line_of("write_all(&mut f, data);"))
    assert not result.contains_line(line_of("let elapsed = timer_elapsed(&t);"))

    write_report(report_dir, "figure5a_slicer", slicer.render(result))


def test_fig5b_ifc_checker(benchmark, report_dir):
    policy = IfcPolicy()
    policy.mark_type_secret("Password")
    policy.mark_function_insecure("insecure_print")

    def check():
        checker = IfcChecker(IFC_SOURCE, policy)
        return checker, checker.check_all()

    checker, violations = benchmark.pedantic(check, rounds=1, iterations=1)

    flagged = {v.fn_name for v in violations}
    # The conditional print leaks one bit of the password (implicit flow);
    # the version banner is fine.
    assert "check_login" in flagged
    assert "show_banner" not in flagged
    assert any(v.via_control_flow for v in violations)

    write_report(report_dir, "figure5b_ifc", checker.report())
