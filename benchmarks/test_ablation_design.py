"""Design-choice ablations (beyond the paper's own conditions).

DESIGN.md calls out three implementation choices worth ablating:

* strong updates for unambiguous assignments vs the paper's purely additive
  ``update-conflicts`` rule,
* tracking control dependence vs ignoring indirect flows,
* the loan-set fixpoint (lifetime-based aliasing) vs type-based aliasing.

Each benchmark measures the precision (total dependency-set size) and cost of
turning one choice off over a slice of the corpus, so a user adopting the
library can see what each mechanism buys.
"""

import pytest

from bench_utils import write_report

from repro.core.config import AnalysisConfig
from repro.core.engine import FlowEngine
from repro.lang.typeck import check_program
from repro.mir.lower import lower_program


@pytest.fixture(scope="module")
def prepared_crate(corpus):
    generated = corpus[0]
    checked = check_program(generated.program)
    lowered = lower_program(checked)
    return generated, checked, lowered


def total_dependency_size(checked, lowered, config):
    engine = FlowEngine(checked, lowered=lowered, config=config)
    total = 0
    for fn_name in engine.local_function_names():
        result = engine.analyze_function(fn_name)
        total += sum(result.dependency_sizes().values())
    return total


def test_ablation_strong_updates(benchmark, prepared_crate, report_dir):
    _generated, checked, lowered = prepared_crate
    with_strong = total_dependency_size(checked, lowered, AnalysisConfig())

    def without_strong():
        return total_dependency_size(checked, lowered, AnalysisConfig(strong_updates=False))

    additive = benchmark.pedantic(without_strong, rounds=1, iterations=1)
    assert additive >= with_strong
    write_report(
        report_dir,
        "ablation_strong_updates",
        "Design ablation: strong updates for unambiguous assignments\n"
        f"  total dependency-set size with strong updates:    {with_strong}\n"
        f"  total dependency-set size additive-only (T-Assign): {additive}\n"
        f"  precision cost of the purely additive rule: "
        f"{100.0 * (additive - with_strong) / max(with_strong, 1):.1f}% larger sets",
    )


def test_ablation_control_dependence(benchmark, prepared_crate, report_dir):
    _generated, checked, lowered = prepared_crate
    with_control = total_dependency_size(checked, lowered, AnalysisConfig())

    def without_control():
        return total_dependency_size(
            checked, lowered, AnalysisConfig(track_control_deps=False)
        )

    without = benchmark.pedantic(without_control, rounds=1, iterations=1)
    # Dropping indirect flows is unsound but strictly smaller — the benchmark
    # quantifies how much of the dependency volume is control-induced.
    assert without <= with_control
    write_report(
        report_dir,
        "ablation_control_dependence",
        "Design ablation: control-dependence tracking (indirect flows)\n"
        f"  total dependency-set size with control deps:    {with_control}\n"
        f"  total dependency-set size without control deps: {without}\n"
        f"  share of dependencies that are control-induced: "
        f"{100.0 * (with_control - without) / max(with_control, 1):.1f}%",
    )


def test_ablation_lifetime_aliasing(benchmark, prepared_crate, report_dir):
    _generated, checked, lowered = prepared_crate
    precise = total_dependency_size(checked, lowered, AnalysisConfig())

    def type_based():
        return total_dependency_size(checked, lowered, AnalysisConfig(ref_blind=True))

    blind = benchmark.pedantic(type_based, rounds=1, iterations=1)
    assert blind >= precise
    write_report(
        report_dir,
        "ablation_lifetime_aliasing",
        "Design ablation: lifetime-based loan sets vs type-based aliasing\n"
        f"  total dependency-set size with loan sets:      {precise}\n"
        f"  total dependency-set size with type aliasing:  {blind}\n"
        f"  precision provided by lifetimes: "
        f"{100.0 * (blind - precise) / max(precise, 1):.1f}% smaller sets",
    )
